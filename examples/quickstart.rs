//! Quickstart: specify a small data-driven Web service and verify
//! temporal properties of *all* its runs over *all* databases.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wave::core::ServiceBuilder;
use wave::logic::parser::parse_property;
use wave::verifier::symbolic::{is_error_free, verify_ltl, SymbolicOptions};

fn main() {
    // A login service in the paper's style (Example 2.2, miniaturized):
    // the home page solicits a name and password, looks them up in the
    // `user` table, and routes to the customer page on success.
    let mut b = ServiceBuilder::new("HP");
    b.database_relation("user", 2)
        .input_relation("button", 1)
        .state_prop("logged_in")
        .input_constant("name")
        .input_constant("password")
        .page("HP")
        .solicit_constant("name")
        .solicit_constant("password")
        .input_rule("button", &["x"], r#"x = "login" | x = "clear""#)
        .insert_rule(
            "logged_in",
            &[],
            r#"user(name, password) & button("login")"#,
        )
        .target("CP", r#"user(name, password) & button("login")"#)
        .page("CP");
    let service = b.build().expect("valid specification");
    println!(
        "service: {} pages, home = {}",
        service.pages.len(),
        service.home
    );

    let opts = SymbolicOptions::default();

    // Property: reaching the customer page implies a successful login —
    // for EVERY database and EVERY user behaviour (Theorem 3.5; no
    // database enumeration happens).
    let p = parse_property("G (!CP | logged_in)").unwrap();
    let out = verify_ltl(&service, &p, &opts).unwrap();
    println!("G (CP -> logged_in): {:?}", out.holds());
    assert!(out.holds());

    // Property: the customer page is unreachable — refuted by a symbolic
    // counterexample (some database contains the user's credentials).
    let q = parse_property("G !CP").unwrap();
    let out = verify_ltl(&service, &q, &opts).unwrap();
    println!("G !CP: violated = {}", out.violated());
    if let wave::verifier::symbolic::Verdict::Violated { stem, cycle } = &out.verdict {
        println!("  counterexample stem:");
        for s in stem {
            println!("    {s}");
        }
        println!("  cycle: {} configuration(s)", cycle.len());
    }

    // Error-freeness (Theorem 3.5(i)): idling on HP re-requests the
    // constants — error condition (ii) — so the service is NOT error-free.
    let ef = is_error_free(&service, &opts).unwrap();
    println!("error-free: {}", ef.holds());
    assert!(!ef.holds());
}
