//! Audit the paper's running example: the Figure 2 e-commerce site.
//!
//! Classifies the specification, replays the purchase scenario of
//! Example 2.2 on a synthetic catalog, and verifies the payment-safety
//! property on the input-bounded checkout core with the symbolic engine.
//!
//! ```sh
//! cargo run --example ecommerce_audit
//! ```

use wave::core::classify;
use wave::core::run::{InputChoice, Runner};
use wave::demo::{catalog, properties, site};
use wave::logic::parser::parse_property;
use wave::logic::tuple;
use wave::verifier::symbolic::{verify_ltl, SymbolicOptions};

fn main() {
    // ---- the full 19-page site ----
    let full = site::full_site();
    println!("Figure 2 site: {} pages", full.pages.len());
    let class = classify::classify(&full);
    println!(
        "classification: {} (violations: {})",
        class.class(),
        class.bounded_violations.len()
    );

    // ---- replay the running example on a generated catalog ----
    let mut rng = wave_rng::SplitMix64::seed_from_u64(2004);
    let db = catalog::generate(&catalog::CatalogSpec::default(), &mut rng);
    println!(
        "catalog: {} products, {} users",
        db.cardinality("prod_prices"),
        db.cardinality("user")
    );
    let tiny = catalog::tiny();
    let r = Runner::new(&full, &tiny);
    let c = r
        .initial(
            &InputChoice::empty()
                .with_constant("name", "alice")
                .with_constant("password", "pw1")
                .with_tuple("button", tuple!["login"]),
        )
        .unwrap();
    let c = r
        .step(
            &c,
            &InputChoice::empty().with_tuple("button", tuple!["laptop"]),
        )
        .unwrap();
    let c = r
        .step(
            &c,
            &InputChoice::empty()
                .with_tuple("laptopsearch", tuple!["8gb", "1tb", "13in"])
                .with_tuple("button", tuple!["search"]),
        )
        .unwrap();
    let c = r
        .step(
            &c,
            &InputChoice::empty().with_tuple("pickprod", tuple!["p1", 999]),
        )
        .unwrap();
    println!("scenario: {} after searching and picking p1", c.page);
    assert_eq!(c.page, "PIP");

    // ---- the paper's properties, checked where tractable ----
    // Property (4), Example 3.4 — well-formed and input-bounded on the
    // full site:
    let p4 = properties::paid_before_ship();
    p4.check_input_bounded(&full.schema)
        .expect("input-bounded rewrite");
    println!("property (4) parses and is input-bounded: {p4}");

    // The checkout core (same skeleton, small symbol set) is verified
    // symbolically over ALL databases:
    let core = site::checkout_core();
    let opts = SymbolicOptions::default();

    // Reaching the confirmation page implies payment was authorized.
    let p = parse_property("G (!COP | paid)").unwrap();
    let out = verify_ltl(&core, &p, &opts).unwrap();
    println!("checkout core ⊨ G (COP -> paid): {}", out.holds());
    assert!(out.holds());

    // Nothing ships unpaid: ∀p G (ship(p) → paid).
    let q = parse_property("forall p . G (!ship(p) | paid)").unwrap();
    let out = verify_ltl(&core, &q, &opts).unwrap();
    println!("checkout core ⊨ ∀p G (ship(p) → paid): {}", out.holds());
    assert!(out.holds());

    // And the negative control: G ¬COP must be violated.
    let neg = parse_property("G !COP").unwrap();
    let out = verify_ltl(&core, &neg, &opts).unwrap();
    println!("checkout core ⊨ G !COP: violated = {}", out.violated());
    assert!(out.violated());
}
