//! The decidability frontier, executed: the paper's hardness and
//! undecidability reductions as running code.
//!
//! ```sh
//! cargo run --example boundary_reductions
//! ```

use wave::core::classify;
use wave::reductions::deps::{chase_implies, Dep};
use wave::reductions::qbf::{encode as qbf_encode, random_qbf};
use wave::reductions::tm::{encode as tm_encode, sample_halting, sample_looping, SimOutcome};
use wave::verifier::symbolic::{is_error_free, SymbolicOptions};

fn main() {
    // ---- Lemma A.6: QBF → error-freeness (PSPACE-hardness) ----
    // The encoding is input-bounded, so our Theorem 3.5 engine decides
    // the QBF through it.
    println!("== Lemma A.6: QBF via error-freeness ==");
    for seed in 0..4 {
        let phi = random_qbf(2, 3, seed);
        let truth = phi.truth();
        let w = qbf_encode(&phi);
        let out = is_error_free(&w, &SymbolicOptions::default()).unwrap();
        println!(
            "  seed {seed}: QBF = {truth}, service errs = {}",
            !out.holds()
        );
        assert_eq!(!out.holds(), truth);
    }

    // ---- Theorem 3.7: Turing machines behind one tiny relaxation ----
    println!("== Theorem 3.7: TM encoding ==");
    let halting = sample_halting();
    println!("  halting TM simulation: {:?}", halting.simulate(100));
    let looping = sample_looping();
    assert_eq!(looping.simulate(100), SimOutcome::Running);
    let w = tm_encode(&halting);
    let violations = classify::input_bounded_violations(&w);
    println!(
        "  encoded service: {} pages, {} input-boundedness violations (state \
         atoms with variables in Options rules)",
        w.pages.len(),
        violations.len()
    );
    assert!(!violations.is_empty());

    // ---- Theorem 3.8: FD/IND implication via state projections ----
    println!("== Theorem 3.8: dependency implication ==");
    let d1 = Dep::Fd {
        lhs: vec![0],
        rhs: 1,
    };
    let d2 = Dep::Fd {
        lhs: vec![1],
        rhs: 2,
    };
    let goal = Dep::Fd {
        lhs: vec![0],
        rhs: 2,
    };
    println!(
        "  {{0→1, 1→2}} ⊨ 0→2: {:?}",
        chase_implies(&[d1.clone(), d2], &goal, 3, 100)
    );
    println!("  {{0→1}} ⊨ 0→2: {:?}", chase_implies(&[d1], &goal, 3, 100));
    // A diverging chase (the budget runs out — undecidability in spirit):
    let ind = Dep::Ind {
        lhs: vec![0],
        rhs: vec![1],
    };
    let fd = Dep::Fd {
        lhs: vec![0],
        rhs: 1,
    };
    println!(
        "  {{R[0]⊆R[1]}} ⊨ 0→1 within 10 chase steps: {:?} (budget exhausted)",
        chase_implies(std::slice::from_ref(&ind), &fd, 2, 10)
    );
    let w = wave::reductions::deps::encode(&[ind], &fd, 2);
    println!(
        "  Theorem 3.8 service: {} state relations incl. projections, input-bounded: {}",
        w.schema
            .relations_of(wave::logic::schema::RelKind::State)
            .count(),
        classify::input_bounded_violations(&w).is_empty()
    );
}
