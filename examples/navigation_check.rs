//! Navigational verification of the Example 4.3 propositional
//! abstraction: CTL and CTL\* properties over the page graph.
//!
//! ```sh
//! cargo run --example navigation_check
//! ```

use wave::demo::{properties, site};
use wave::logic::instance::Instance;
use wave::logic::parser::parse_temporal;
use wave::verifier::ctl_prop::{verify_ctl_on_db, CtlOptions};

fn main() {
    let nav = site::navigation_abstraction();
    let db = Instance::new();
    let opts = CtlOptions::default();

    // Example 4.3: AG EF HP — from any page the user can navigate home.
    let home = properties::always_can_go_home();
    let ok = verify_ctl_on_db(&nav, &db, &home, &opts).unwrap();
    println!("AG EF HP: {ok}");
    assert!(ok, "every page keeps a path home");

    // Example 4.3: after login, payment is reachable.
    let pay = properties::login_can_reach_payment();
    let ok = verify_ctl_on_db(&nav, &db, &pay, &opts).unwrap();
    println!("AG (HP ∧ login → EF authorize-payment): {ok}");
    assert!(ok);

    // A CTL* property: some run eventually settles on the home page.
    let settle = parse_temporal("E F (G HP)", &[]).unwrap();
    let ok = verify_ctl_on_db(&nav, &db, &settle, &opts).unwrap();
    println!("E FG HP: {ok}");
    assert!(ok, "idling on HP forever is a run");

    // And a failing one, with the expected verdict: all runs eventually
    // pay — false, the user may never buy anything.
    let all_pay = parse_temporal("A F paid", &[]).unwrap();
    let ok = verify_ctl_on_db(&nav, &db, &all_pay, &opts).unwrap();
    println!("AF paid: {ok}");
    assert!(!ok);

    // Example 4.1 (abstracted): bought ⇒ cancellable until shipped. The
    // abstraction has no ship/cancel propositions on this skeleton, so
    // state it over paid/logged_in to demonstrate shape checking only.
    let ex41 = properties::cancellable_until_ship("paid", "logged_in", "HP");
    let ok = verify_ctl_on_db(&nav, &db, &ex41, &opts).unwrap();
    println!("Example 4.1 shape over the abstraction: {ok}");
}
