//! The Figure 1 category hierarchy: input-driven search navigation and
//! Theorem 4.9 verification via CTL satisfiability.
//!
//! ```sh
//! cargo run --example catalog_search
//! ```

use wave::core::classify::input_driven_shape;
use wave::core::run::{InputChoice, Runner};
use wave::demo::hierarchy;
use wave::logic::parser::parse_temporal;
use wave::logic::tuple;
use wave::verifier::input_driven;

fn main() {
    let nav = hierarchy::navigator();
    let shape = input_driven_shape(&nav).expect("Definition 4.7 shape");
    println!(
        "input-driven search: input `{}`, graph `{}`, seed `{}`",
        shape.input_rel, shape.search_rel, shape.seed_const
    );

    // ---- concrete navigation over the exact Figure 1 graph ----
    let db = hierarchy::figure1();
    let r = Runner::new(&nav, &db);
    let mut cfg = r
        .initial(&InputChoice::empty().with_tuple("pick", tuple!["products"]))
        .unwrap();
    println!("path: products");
    for next in ["new", "laptops"] {
        cfg = r
            .step(&cfg, &InputChoice::empty().with_tuple("pick", tuple![next]))
            .unwrap();
        println!("path: {next}");
    }

    // ---- Theorem 4.9: CTL verification by reduction to CTL-sat ----
    // After the seed step, every picked category is in stock.
    let filtered = parse_temporal(
        "A G ((not_start & exists y . (pick(y) & in_stock(y))) | !(not_start & exists y . pick(y)))",
        &[],
    )
    .unwrap();
    let ok = input_driven::verify(&nav, &filtered, 24).unwrap();
    println!("AG (navigated picks are in stock): {ok}");
    assert!(ok);

    // The seed itself is NOT constrained by the filter: the same claim
    // without the not_start guard must fail.
    let unguarded = parse_temporal(
        "A G ((exists y . (pick(y) & in_stock(y))) | !(exists y . pick(y)))",
        &[],
    )
    .unwrap();
    let ok = input_driven::verify(&nav, &unguarded, 24).unwrap();
    println!("AG (ALL picks in stock, incl. seed): {ok}");
    assert!(!ok);

    // ---- scalable hierarchies (the EXP-F1 workload) ----
    for depth in 1..=3 {
        let (db, n) = hierarchy::generate(depth, 2, 2);
        println!(
            "generated hierarchy depth {depth}: {n} nodes, {} edges",
            db.cardinality("cat_graph")
        );
    }
}
