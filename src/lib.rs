//! # wave — verification of data-driven Web services
//!
//! A from-scratch Rust reproduction of *Deutsch, Sui, Vianu —
//! "Specification and Verification of Data-driven Web Services"
//! (PODS 2004)*: the Web-service specification model, the LTL-FO and
//! CTL(\*)-FO property languages, and every decision procedure the paper
//! proves decidable, plus executable versions of the boundary reductions.
//!
//! This facade crate re-exports the sub-crates:
//!
//! * [`logic`] — relational substrate, FO with active-domain semantics,
//!   input-boundedness, temporal logics, parser.
//! * [`automata`] — Büchi automata, LTL→Büchi, Kripke structures,
//!   CTL/CTL\* model checking, CTL satisfiability.
//! * [`core`] — the Web-service model (pages, rules, runs, classification).
//! * [`verifier`] — the decision procedures (Theorems 3.5, 4.4–4.9).
//! * [`reductions`] — QBF / Turing machine / FD-ID boundary encodings.
//! * [`demo`] — the paper's running e-commerce example (Figures 1 and 2).
//! * [`lint`] — the `wave-lint` static analyzer: span-tracked
//!   diagnostics over the syntactic decidability frontier.
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! ```
//! use wave::core::ServiceBuilder;
//! use wave::logic::parser::parse_property;
//! use wave::verifier::symbolic::{verify_ltl, SymbolicOptions};
//!
//! let mut b = ServiceBuilder::new("P");
//! b.input_relation("go", 0)
//!     .page("P")
//!     .input_prop_on_page("go")
//!     .target("Q", "go")
//!     .page("Q");
//! let service = b.build().unwrap();
//!
//! // Verified over all databases and user behaviours (Theorem 3.5):
//! let safety = parse_property("G (P | Q)").unwrap();
//! assert!(verify_ltl(&service, &safety, &SymbolicOptions::default())
//!     .unwrap()
//!     .holds());
//! ```

pub use wave_automata as automata;
pub use wave_core as core;
pub use wave_demo as demo;
pub use wave_lint as lint;
pub use wave_logic as logic;
pub use wave_reductions as reductions;
pub use wave_verifier as verifier;
