//! The `wave-fleet` binary: `node`, `up`, `stats` and `flap`
//! subcommands.
//!
//! ```text
//! wave-fleet node  --shard N [--addr 127.0.0.1:0] [--journal FILE]
//!                  [--workers N] [--queue N] [--cache-bytes N]
//! wave-fleet up    [--nodes 3] [--addr 127.0.0.1:7979] [--base-dir D]
//!                  [--workers N] [--ship-interval-ms 100]
//! wave-fleet stats [--addr 127.0.0.1:7979]
//! wave-fleet flap  [--seeds 100] [--nodes 3] [--json]
//! ```
//!
//! `node` runs one fleet member (a full wave-serve engine + listener
//! with a shard id and a journal). `up` spawns N `node` children from
//! this same binary, then serves the wave-serve wire protocol on a
//! front-end port, routing each `verify` by content fingerprint,
//! answering `stats` with the aggregated fleet view and `members` with
//! the epoch-tagged membership view (which is how self-routing clients
//! bootstrap). `flap` runs the kill/restart chaos campaign under
//! heartbeat-probe faults.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use wave_fleet::local::{FleetOptions, ProcessFleet};
use wave_fleet::router::Router;
use wave_serve::client::{ClientError, TcpClient};
use wave_serve::codec::Request;
use wave_serve::engine::{Engine, EngineOptions};
use wave_serve::server::Server;

const DEFAULT_FRONT_ADDR: &str = "127.0.0.1:7979";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("node") => cmd_node(&args[1..]),
        Some("up") => cmd_up(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("flap") => cmd_flap(&args[1..]),
        _ => {
            eprintln!("usage: wave-fleet <node|up|stats|flap> [options]");
            eprintln!("  node  --shard N [--addr A] [--journal FILE] [--workers N]");
            eprintln!("        [--queue N] [--cache-bytes N]");
            eprintln!("  up    [--nodes 3] [--addr A] [--base-dir D] [--workers N]");
            eprintln!("        [--ship-interval-ms 100]");
            eprintln!("  stats [--addr A]");
            eprintln!("  flap  [--seeds 100] [--nodes 3] [--json]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--flag value` parser: returns the value after `flag`.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

/// One fleet member: a wave-serve engine with a shard id and journal.
fn cmd_node(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:0");
    let opts = EngineOptions {
        workers: flag_num(args, "--workers", EngineOptions::default().workers)?,
        queue_capacity: flag_num(args, "--queue", EngineOptions::default().queue_capacity)?,
        cache_bytes: flag_num(args, "--cache-bytes", EngineOptions::default().cache_bytes)?,
        persist: flag(args, "--journal").map(Into::into),
        shard: flag_num(args, "--shard", 0u32)?,
        ..EngineOptions::default()
    };
    let shard = opts.shard;
    let engine = Arc::new(Engine::new(opts));
    let server = Server::bind(addr, engine).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // The process fleet scrapes this line for the ephemeral port.
    println!("wave-fleet node {shard} listening on {local}");
    server.run().map_err(|e| e.to_string())
}

/// Boots a whole fleet and serves the front-end protocol.
fn cmd_up(args: &[String]) -> Result<(), String> {
    let nodes: usize = flag_num(args, "--nodes", 3)?;
    let addr = flag(args, "--addr").unwrap_or(DEFAULT_FRONT_ADDR);
    let opts = FleetOptions {
        workers_per_node: flag_num(args, "--workers", 2usize)?,
        ship_interval: Duration::from_millis(flag_num(args, "--ship-interval-ms", 100u64)?),
        dir: flag(args, "--base-dir").map(Into::into),
        ..FleetOptions::default()
    };
    let bin = std::env::current_exe().map_err(|e| e.to_string())?;
    let fleet = ProcessFleet::spawn(&bin, nodes, opts).map_err(|e| format!("spawn fleet: {e}"))?;
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    for node in fleet.router().nodes() {
        eprintln!("wave-fleet node {} at {}", node.id, node.addr);
    }
    // Scripts scrape this line for the (possibly ephemeral) port.
    println!("wave-fleet listening on {local}");
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let router = Arc::clone(fleet.router());
        std::thread::spawn(move || serve_front_conn(stream, &router));
    }
    Ok(())
}

/// One front-end connection: NDJSON requests in, NDJSON replies out,
/// `verify` routed by content fingerprint, `stats` answered with the
/// fleet aggregate.
fn serve_front_conn(stream: TcpStream, router: &Router) {
    let Ok(peer) = stream.try_clone() else { return };
    let reader = BufReader::new(peer);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match Request::decode(&line) {
            Ok(Request::Verify(req)) => match router.submit(&req) {
                Ok(r) => format!(
                    concat!(
                        "{{\"ok\":true,\"fingerprint\":\"{}\",\"cache_hit\":{},",
                        "\"class\":\"{}\",\"shard\":{},\"coalesced_waiters\":{},\"outcome\":{}}}"
                    ),
                    r.fingerprint.to_hex(),
                    r.cache_hit,
                    r.class,
                    r.shard,
                    r.coalesced_waiters,
                    r.outcome_text,
                ),
                Err(e) => error_reply(&e),
            },
            Ok(Request::Stats) => format!("{{\"ok\":true,\"stats\":{}}}", router.fleet_stats()),
            // Self-routing clients bootstrap placement here (or from
            // any node): the view is the full routing input.
            Ok(Request::Members) => format!(
                "{{\"ok\":true,\"view\":{}}}",
                router.member_view().to_json().encode()
            ),
            Ok(_) => {
                "{\"ok\":false,\"error\":\"front end supports verify, stats and members\",\"kind\":\"bad_request\"}"
                    .to_string()
            }
            Err(e) => format!(
                "{{\"ok\":false,\"error\":{},\"kind\":\"bad_request\"}}",
                wave_serve::json::Json::Str(e.to_string()).encode()
            ),
        };
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Encodes a routing failure as a wire error line.
fn error_reply(e: &ClientError) -> String {
    let (kind, msg) = match e {
        ClientError::Draining => ("draining", e.to_string()),
        ClientError::RetryAfter { after_ms } => {
            return format!(
                "{{\"ok\":false,\"error\":\"fleet overloaded\",\"kind\":\"retry_after\",\"after_ms\":{after_ms}}}"
            )
        }
        ClientError::Io(_) | ClientError::Timeout => ("unavailable", e.to_string()),
        ClientError::Server(m) => ("error", m.clone()),
        ClientError::Protocol(m) => ("unavailable", m.clone()),
        // The router never sets check_owner, so a wrong_shard refusal
        // reaching it means a node is ahead of us; surface it as-is.
        ClientError::WrongShard { epoch, owner } => {
            return format!(
                "{{\"ok\":false,\"error\":\"wrong shard\",\"kind\":\"wrong_shard\",\"epoch\":{epoch},\"owner\":{owner}}}"
            )
        }
    };
    format!(
        "{{\"ok\":false,\"error\":{},\"kind\":\"{kind}\"}}",
        wave_serve::json::Json::Str(msg).encode()
    )
}

/// Fetches and prints the fleet aggregate from a front end.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or(DEFAULT_FRONT_ADDR);
    let mut client = TcpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let stats = client.stats().map_err(|e| e.to_string())?;
    println!("{}", stats.encode());
    Ok(())
}

/// Runs the flapping-membership chaos campaign and prints the summary.
fn cmd_flap(args: &[String]) -> Result<(), String> {
    let seeds: u64 = flag_num(args, "--seeds", 100u64)?;
    let nodes: usize = flag_num(args, "--nodes", 3usize)?;
    let json = args.iter().any(|a| a == "--json");
    let report = wave_fleet::flap::run_campaign(seeds, nodes);
    if json {
        println!("{}", report.to_json().encode());
    } else {
        println!("{}", report.summary());
    }
    if report.failures == 0 {
        Ok(())
    } else {
        Err(format!("{} of {} seeds failed", report.failures, seeds))
    }
}
