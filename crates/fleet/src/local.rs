//! Launching fleets: in-process ([`LocalFleet`]) for benchmarks and
//! tests that need engine-counter introspection, and child-process
//! ([`ProcessFleet`]) for drills that need a *real* `SIGKILL` — a dead
//! process, a torn journal, a socket that resets mid-frame.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wave_serve::engine::{Engine, EngineOptions};
use wave_serve::faults::Faults;
use wave_serve::server::Server;

use crate::heartbeat::{Heartbeat, HeartbeatOptions};
use crate::router::{NodeHandle, Router};
use crate::shipper::Shipper;

/// Fleet-wide launch options.
#[derive(Clone)]
pub struct FleetOptions {
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Result-cache byte budget per node.
    pub cache_bytes: usize,
    /// Fault plane for the router and shipper (fleet hooks).
    pub fleet_faults: Faults,
    /// Fault plane for each node's engine (worker/journal hooks).
    pub node_faults: Faults,
    /// How often the shipper tails and ships journals.
    pub ship_interval: Duration,
    /// Journal directory; a fresh temp dir when `None`.
    pub dir: Option<PathBuf>,
    /// Heartbeat prober tuning; `None` disables the membership plane
    /// (drills that drive `mark_dead`/`join` by hand).
    pub heartbeat: Option<HeartbeatOptions>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            workers_per_node: 2,
            cache_bytes: 8 * 1024 * 1024,
            fleet_faults: Faults::none(),
            node_faults: Faults::none(),
            ship_interval: Duration::from_millis(100),
            dir: None,
            heartbeat: Some(HeartbeatOptions::default()),
        }
    }
}

static LAUNCHES: AtomicU64 = AtomicU64::new(0);

/// A fresh per-launch scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let n = LAUNCHES.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wave-fleet-{tag}-{}-{n}", std::process::id()))
}

/// The journal path for node `id` under `dir`.
pub fn journal_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("node-{id}.ndjson"))
}

/// An in-process fleet: each node is an [`Engine`] plus a TCP accept
/// loop on an ephemeral port, with a journal file in a scratch dir.
pub struct LocalFleet {
    router: Arc<Router>,
    shipper: Shipper,
    heartbeat: Option<Heartbeat>,
    engines: Vec<Arc<Engine>>,
    opts: FleetOptions,
    dir: PathBuf,
}

impl LocalFleet {
    /// Boots `n` nodes and the router/shipper over them.
    pub fn launch(n: usize, opts: FleetOptions) -> io::Result<LocalFleet> {
        assert!(n > 0, "a fleet needs at least one node");
        let dir = opts.dir.clone().unwrap_or_else(|| scratch_dir("local"));
        std::fs::create_dir_all(&dir)?;
        let mut handles = Vec::new();
        let mut engines = Vec::new();
        for id in 0..n as u32 {
            let journal = journal_path(&dir, id);
            let engine = Arc::new(Engine::new(EngineOptions {
                workers: opts.workers_per_node,
                cache_bytes: opts.cache_bytes,
                persist: Some(journal.clone()),
                faults: opts.node_faults.clone(),
                shard: id,
                ..EngineOptions::default()
            }));
            let server = Server::bind("127.0.0.1:0", Arc::clone(&engine))?;
            let addr = server.local_addr()?;
            std::thread::Builder::new()
                .name(format!("fleet-node-{id}"))
                .spawn(move || {
                    let _ = server.run();
                })?;
            handles.push(NodeHandle {
                id,
                addr,
                journal: Some(journal),
            });
            engines.push(engine);
        }
        let router = Arc::new(Router::new(handles, opts.fleet_faults.clone()));
        router.push_view();
        let shipper = Shipper::start(
            Arc::clone(&router),
            opts.fleet_faults.clone(),
            opts.ship_interval,
        );
        let heartbeat = opts
            .heartbeat
            .clone()
            .map(|hb| Heartbeat::start(Arc::clone(&router), opts.fleet_faults.clone(), hb));
        Ok(LocalFleet {
            router,
            shipper,
            heartbeat,
            engines,
            opts,
            dir,
        })
    }

    /// The fleet front end.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The background replication pump.
    pub fn shipper(&self) -> &Shipper {
        &self.shipper
    }

    /// The node engines, by shard id — for counter assertions.
    pub fn engines(&self) -> &[Arc<Engine>] {
        &self.engines
    }

    /// The journal scratch directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Gracefully retires a node: pre-ships its journal to the peers,
    /// then re-ranges — a decommission, not a crash, so re-routed
    /// requests find the cached outcomes already installed. (For real
    /// `SIGKILL`, use [`ProcessFleet`]; for crash semantics, call
    /// `router().mark_dead(id)` directly.)
    pub fn retire(&self, id: u32) {
        self.router.retire(id);
    }

    /// The heartbeat prober, when the membership plane is on.
    pub fn heartbeat(&self) -> Option<&Heartbeat> {
        self.heartbeat.as_ref()
    }

    /// Re-joins a previously retired/dead node: a fresh engine restarts
    /// from the **same on-disk journal** (everything it paid for before
    /// the death is warm again), then [`Router::join`] replays the
    /// peers' journals into it before re-ranging the ring — so the
    /// re-join never costs a verdict and never re-verifies paid
    /// content.
    pub fn rejoin(&mut self, id: u32) -> io::Result<()> {
        let journal = journal_path(&self.dir, id);
        let engine = Arc::new(Engine::new(EngineOptions {
            workers: self.opts.workers_per_node,
            cache_bytes: self.opts.cache_bytes,
            persist: Some(journal.clone()),
            faults: self.opts.node_faults.clone(),
            shard: id,
            ..EngineOptions::default()
        }));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine))?;
        let addr = server.local_addr()?;
        std::thread::Builder::new()
            .name(format!("fleet-node-{id}-rejoin"))
            .spawn(move || {
                let _ = server.run();
            })?;
        self.router.join(NodeHandle {
            id,
            addr,
            journal: Some(journal),
        });
        if let Some(slot) = self.engines.get_mut(id as usize) {
            *slot = engine;
        } else {
            self.engines.push(engine);
        }
        Ok(())
    }
}

/// A child-process fleet: each node is a `wave-fleet node` process,
/// killable with a real `SIGKILL` mid-request.
pub struct ProcessFleet {
    router: Arc<Router>,
    shipper: Option<Shipper>,
    heartbeat: Option<Heartbeat>,
    children: HashMap<u32, Child>,
    bin: PathBuf,
    workers: usize,
    dir: PathBuf,
}

impl ProcessFleet {
    /// Spawns `n` node processes from the `wave-fleet` binary at `bin`
    /// (tests use `env!("CARGO_BIN_EXE_wave-fleet")`) and boots the
    /// router/shipper over them.
    pub fn spawn(bin: &Path, n: usize, opts: FleetOptions) -> io::Result<ProcessFleet> {
        assert!(n > 0, "a fleet needs at least one node");
        let dir = opts.dir.clone().unwrap_or_else(|| scratch_dir("proc"));
        std::fs::create_dir_all(&dir)?;
        let mut handles = Vec::new();
        let mut children = HashMap::new();
        for id in 0..n as u32 {
            let journal = journal_path(&dir, id);
            let (child, addr) = spawn_node(bin, id, &journal, opts.workers_per_node)?;
            handles.push(NodeHandle {
                id,
                addr,
                journal: Some(journal),
            });
            children.insert(id, child);
        }
        let router = Arc::new(Router::new(handles, opts.fleet_faults.clone()));
        router.push_view();
        let shipper = Shipper::start(
            Arc::clone(&router),
            opts.fleet_faults.clone(),
            opts.ship_interval,
        );
        let heartbeat = opts
            .heartbeat
            .clone()
            .map(|hb| Heartbeat::start(Arc::clone(&router), opts.fleet_faults.clone(), hb));
        Ok(ProcessFleet {
            router,
            shipper: Some(shipper),
            heartbeat,
            children,
            bin: bin.to_path_buf(),
            workers: opts.workers_per_node,
            dir,
        })
    }

    /// The fleet front end.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The journal scratch directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `SIGKILL`s node `id` and tells the router it is dead (ring
    /// re-range + journal replay). Returns false if the node was
    /// already gone.
    pub fn kill(&mut self, id: u32) -> bool {
        let Some(mut child) = self.children.remove(&id) else {
            return false;
        };
        let _ = child.kill();
        let _ = child.wait();
        self.router.mark_dead(id);
        true
    }

    /// `SIGKILL`s node `id` **without** telling the router — the
    /// heartbeat-detection drill: the membership plane, not the test,
    /// must notice the death. Returns false if already gone.
    pub fn kill_silent(&mut self, id: u32) -> bool {
        let Some(mut child) = self.children.remove(&id) else {
            return false;
        };
        let _ = child.kill();
        let _ = child.wait();
        true
    }

    /// The heartbeat prober, when the membership plane is on.
    pub fn heartbeat(&self) -> Option<&Heartbeat> {
        self.heartbeat.as_ref()
    }

    /// Restarts a killed node from its **on-disk journal** and re-joins
    /// it through [`Router::join`]: peers' journals replay in first,
    /// then the ring re-ranges, then the view pushes — the node comes
    /// back warm and the fleet never re-verifies paid content.
    pub fn restart(&mut self, id: u32) -> io::Result<()> {
        let journal = journal_path(&self.dir, id);
        let (child, addr) = spawn_node(&self.bin, id, &journal, self.workers)?;
        self.children.insert(id, child);
        self.router.join(NodeHandle {
            id,
            addr,
            journal: Some(journal),
        });
        Ok(())
    }

    /// Stops the membership plane and shipper, then kills every
    /// remaining node.
    pub fn shutdown(mut self) {
        self.heartbeat.take(); // drop joins the prober thread
        self.shipper.take(); // drop joins the pump thread
        for (_, mut child) in self.children.drain() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for ProcessFleet {
    fn drop(&mut self) {
        self.heartbeat.take();
        self.shipper.take();
        for (_, child) in self.children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns one `wave-fleet node` child on an ephemeral port and scrapes
/// the advertised address from its first stdout line.
fn spawn_node(
    bin: &Path,
    id: u32,
    journal: &Path,
    workers: usize,
) -> io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(bin)
        .arg("node")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--shard")
        .arg(id.to_string())
        .arg("--journal")
        .arg(journal)
        .arg("--workers")
        .arg(workers.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("node {id} exited before advertising its address"),
            ));
        }
        if let Some(at) = line.find("listening on ") {
            let addr = line[at + "listening on ".len()..].trim();
            let addr: SocketAddr = addr.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad advertised addr: {e}"),
                )
            })?;
            return Ok((child, addr));
        }
    }
}
