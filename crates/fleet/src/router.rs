//! The front-end router: fingerprint → owning node → forward.
//!
//! Routing is **content-addressed**: the router computes the same
//! canonical fingerprint the engine computes (same resolution, same
//! normalization), so every identical request lands on the same node —
//! which is what turns per-node request coalescing into *fleet-wide*
//! coalescing: one hot property means one owner, one leader, one
//! verification, however many clients stampede.
//!
//! # Failure model
//!
//! A forward that fails at the transport level (dead socket, timeout,
//! EOF mid-frame) is retried once on a fresh connection; if the node
//! still does not answer it is **marked dead**: removed from the ring
//! (epoch bump), its journal replayed to the survivors (every completed
//! result it had persisted is re-installed through the validating
//! replication path), and the request fails over to the new owner.
//! Typed refusals (admission, bad property, overload with retry-after)
//! are relayed to the caller — they are answers, not failures.
//!
//! The [`Hook::FleetForward`] fault point lets `wave-chaos` drop or
//! delay forwards (a soft partition): a dropped forward fails over for
//! that request only, without declaring the owner dead.
//!
//! # Membership (wave-mesh)
//!
//! The router is the **authority** for the epoch-tagged
//! [`MemberView`]: every membership change (death, retire, re-join)
//! bumps the ring epoch and pushes the new view to the surviving nodes
//! (`install_view`), so nodes can answer `members` and police
//! `check_owner` requests, and routed clients can bootstrap placement
//! from any member. The heartbeat plane ([`crate::heartbeat`]) feeds
//! suspicion in ([`Router::set_suspect`]) and executes deaths through
//! [`Router::mark_dead`]; a restarted or new node comes back through
//! [`Router::join`], which replays the existing members' journals into
//! the joiner **before** re-ranging the ring — the inverse of the death
//! path, and the order is what guarantees a re-join never costs a
//! verdict: by the time any arc moves onto the joiner, every outcome
//! the fleet persisted for that arc is already installed there.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use wave_serve::client::{ClientError, RetryPolicy, TcpClient, VerifyReply};
use wave_serve::codec::VerifyRequest;
use wave_serve::faults::{Fault, Faults, Hook};
use wave_serve::view::{MemberInfo, MemberView};

use crate::ring::Ring;
use crate::shipper::tail_lines;

pub use wave_serve::view::routing_fingerprint;

/// One fleet member as the router sees it.
#[derive(Clone, Debug)]
pub struct NodeHandle {
    /// Shard id (also the engine's `shard` and the ring id).
    pub id: u32,
    /// Where the node's wave-serve protocol listens.
    pub addr: SocketAddr,
    /// The node's cache journal, when the router can read it — enables
    /// journal replay after a kill. `None` for remote nodes.
    pub journal: Option<PathBuf>,
}

/// Monotonic router counters.
#[derive(Default)]
pub struct RouterCounters {
    /// Requests forwarded to an owner node.
    pub forwards: AtomicU64,
    /// Requests re-routed to a successor (dropped forward or dead
    /// owner).
    pub failovers: AtomicU64,
    /// Nodes declared dead after failed forwards (or by a kill drill).
    pub nodes_marked_dead: AtomicU64,
    /// Journal records replayed to survivors after node deaths.
    pub replayed_records: AtomicU64,
    /// Nodes that joined (or re-joined) a running fleet.
    pub rejoins: AtomicU64,
    /// Membership views pushed to nodes (`install_view` calls made).
    pub view_pushes: AtomicU64,
}

struct RouterState {
    ring: Ring,
    nodes: HashMap<u32, NodeHandle>,
    /// Missed-heartbeat counts for members under suspicion. Alive
    /// members are absent; a member is only ever *executed* through
    /// `mark_dead`, after the confirm probe also fails.
    suspects: HashMap<u32, u32>,
    /// Members declared dead and not (yet) re-joined.
    dead: HashSet<u32>,
}

/// The fleet front end.
pub struct Router {
    state: Mutex<RouterState>,
    faults: Faults,
    read_timeout: Duration,
    retry: RetryPolicy,
    /// Monotonic counters for fleet stats.
    pub counters: RouterCounters,
}

impl Router {
    /// A router over the given nodes, with a fault plane for the
    /// forward/ship hook points (pass [`Faults::none`] in production).
    pub fn new(nodes: Vec<NodeHandle>, faults: Faults) -> Router {
        let ring = Ring::new(nodes.iter().map(|n| n.id));
        let nodes = nodes.into_iter().map(|n| (n.id, n)).collect();
        Router {
            state: Mutex::new(RouterState {
                ring,
                nodes,
                suspects: HashMap::new(),
                dead: HashSet::new(),
            }),
            faults,
            read_timeout: Duration::from_secs(30),
            retry: RetryPolicy {
                max_attempts: 2,
                base: Duration::from_millis(20),
                cap: Duration::from_millis(200),
                budget: Duration::from_secs(2),
                seed: 0x666c_6565, // "flee(t)"
            },
            counters: RouterCounters::default(),
        }
    }

    /// Live node handles, ascending by id.
    pub fn nodes(&self) -> Vec<NodeHandle> {
        let st = self.state.lock().expect("router poisoned");
        let mut out: Vec<NodeHandle> = st.nodes.values().cloned().collect();
        out.sort_by_key(|n| n.id);
        out
    }

    /// The current ring epoch (bumped by every membership change).
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("router poisoned").ring.epoch()
    }

    /// The epoch-tagged membership view: the full routing input. A
    /// client (or node) holding this view computes the same placement
    /// the router does — the ring is a pure function of it.
    pub fn member_view(&self) -> MemberView {
        let st = self.state.lock().expect("router poisoned");
        let mut members: Vec<MemberInfo> = st
            .nodes
            .values()
            .map(|n| MemberInfo {
                id: n.id,
                addr: n.addr,
            })
            .collect();
        members.sort_by_key(|m| m.id);
        MemberView {
            epoch: st.ring.epoch(),
            members,
        }
    }

    /// Pushes the current view to every member. Best-effort: a node
    /// that misses a push serves `wrong_shard` refusals from a stale
    /// epoch until the next heartbeat notices and re-pushes.
    pub fn push_view(&self) {
        let view = self.member_view();
        for handle in self.nodes() {
            self.push_view_handle(&handle, &view);
        }
    }

    /// Pushes the current view to one member (heartbeat re-sync path).
    pub fn push_view_to(&self, id: u32) {
        let handle = {
            let st = self.state.lock().expect("router poisoned");
            st.nodes.get(&id).cloned()
        };
        if let Some(handle) = handle {
            let view = self.member_view();
            self.push_view_handle(&handle, &view);
        }
    }

    fn push_view_handle(&self, handle: &NodeHandle, view: &MemberView) {
        if let Ok(mut c) = TcpClient::connect_timeout(handle.addr, self.read_timeout) {
            if c.install_view(view).is_ok() {
                self.counters.view_pushes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records `missed` consecutive missed heartbeats for a member.
    /// Suspicion is bookkeeping only: the member stays on the ring and
    /// keeps serving until [`mark_dead`](Router::mark_dead).
    pub fn set_suspect(&self, id: u32, missed: u32) {
        let mut st = self.state.lock().expect("router poisoned");
        if st.nodes.contains_key(&id) {
            st.suspects.insert(id, missed);
        }
    }

    /// Clears suspicion after a successful heartbeat or confirm probe.
    pub fn clear_suspect(&self, id: u32) {
        let mut st = self.state.lock().expect("router poisoned");
        st.suspects.remove(&id);
    }

    /// Members currently under heartbeat suspicion.
    pub fn suspect_count(&self) -> usize {
        self.state.lock().expect("router poisoned").suspects.len()
    }

    /// The ring successors a node ships its journal to, as live
    /// handles. Deterministic in the member set, so replication
    /// converges: the R=1 successor relation is a single cycle over the
    /// members, and receivers re-journal what they install.
    pub fn successors_of(&self, id: u32, r: usize) -> Vec<NodeHandle> {
        let st = self.state.lock().expect("router poisoned");
        st.ring
            .successors(id, r)
            .into_iter()
            .filter_map(|s| st.nodes.get(&s).cloned())
            .collect()
    }

    /// Admits a node (new, or restarted after a death) into the fleet.
    ///
    /// Order matters and is the whole correctness argument:
    ///
    /// 1. **Replay first.** Every current member's journal is tailed
    ///    and replicated into the joiner through the validating path,
    ///    recording the cursor reached per peer. The joiner restarts
    ///    from its own on-disk journal too, so nothing it paid for
    ///    before the crash is lost either.
    /// 2. **Then re-range.** The ring adds the node (epoch bump); arcs
    ///    move onto the joiner only now, when every persisted verdict
    ///    for those arcs is already installed there.
    /// 3. **Delta replay.** Lines the peers appended during step 1 are
    ///    shipped from the recorded cursors — the race window between
    ///    replay and re-range is closed by a second, idempotent pass.
    /// 4. **Push the view** so every member (joiner included) can
    ///    police `check_owner` requests at the new epoch.
    ///
    /// Idempotent for an already-present member (refreshes the handle's
    /// address and re-pushes the view without an epoch bump).
    pub fn join(&self, handle: NodeHandle) {
        let (already, peers) = {
            let st = self.state.lock().expect("router poisoned");
            let peers: Vec<NodeHandle> = st
                .nodes
                .values()
                .filter(|n| n.id != handle.id)
                .cloned()
                .collect();
            (st.nodes.contains_key(&handle.id), peers)
        };
        // Step 1: replay every peer's journal into the joiner, keeping
        // the cursor each replay reached.
        let mut cursors: Vec<(PathBuf, wave_serve::cache::JournalCursor)> = Vec::new();
        for peer in &peers {
            if let Some(path) = &peer.journal {
                let (lines, cursor) = tail_lines(path, wave_serve::cache::JournalCursor::default());
                self.ship_lines(&handle, &lines);
                cursors.push((path.clone(), cursor));
            }
        }
        // Step 2: re-range. The epoch bumps exactly once per join.
        {
            let mut st = self.state.lock().expect("router poisoned");
            if already {
                st.nodes.insert(handle.id, handle.clone());
            } else {
                st.ring.add_node(handle.id);
                st.nodes.insert(handle.id, handle.clone());
            }
            st.dead.remove(&handle.id);
            st.suspects.remove(&handle.id);
        }
        // Step 3: delta replay from the recorded cursors (receivers
        // skip byte-identical records, so overlap is harmless).
        for (path, cursor) in cursors {
            let (lines, _) = tail_lines(&path, cursor);
            self.ship_lines(&handle, &lines);
        }
        if !already {
            self.counters.rejoins.fetch_add(1, Ordering::Relaxed);
        }
        // Step 4: everyone learns the new epoch.
        self.push_view();
    }

    /// Ships journal lines to one node through the validating
    /// replication path, honoring the `FleetShip` fault hook.
    fn ship_lines(&self, to: &NodeHandle, lines: &[String]) {
        if lines.is_empty() {
            return;
        }
        let payload: usize = lines.iter().map(String::len).sum();
        match self.faults.decide(Hook::FleetShip, payload) {
            Fault::Delay(d) => std::thread::sleep(d),
            // A dropped replay loses cached results, never answers.
            Fault::Drop => return,
            _ => {}
        }
        if let Ok(mut c) = TcpClient::connect_timeout(to.addr, self.read_timeout) {
            if let Ok((applied, _, _)) = c.replicate(lines) {
                self.counters
                    .replayed_records
                    .fetch_add(applied, Ordering::Relaxed);
            }
        }
    }

    /// The node a request would be forwarded to right now.
    pub fn owner_of(&self, req: &VerifyRequest) -> Option<u32> {
        let st = self.state.lock().expect("router poisoned");
        if st.ring.is_empty() {
            return None;
        }
        Some(st.ring.owner(routing_fingerprint(req)))
    }

    /// Routes one request to completion: forward to the owner, fail
    /// over past dropped forwards and dead nodes, relay the answer.
    pub fn submit(&self, req: &VerifyRequest) -> Result<VerifyReply, ClientError> {
        let fp = routing_fingerprint(req);
        // Nodes this *request* must skip (dropped forwards), on top of
        // ring membership (which deaths shrink as we go).
        let mut skip: Vec<u32> = Vec::new();
        loop {
            let target = {
                let st = self.state.lock().expect("router poisoned");
                match st.ring.owner_excluding(fp, &skip) {
                    Some(id) => st.nodes[&id].clone(),
                    None => {
                        return Err(ClientError::Protocol(
                            "no live node can take this request".into(),
                        ))
                    }
                }
            };
            match self.faults.decide(Hook::FleetForward, 0) {
                Fault::Delay(d) => std::thread::sleep(d),
                Fault::Drop => {
                    // Soft partition: this forward is lost. Fail over for
                    // this request only; the owner is not declared dead.
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    skip.push(target.id);
                    continue;
                }
                _ => {}
            }
            self.counters.forwards.fetch_add(1, Ordering::Relaxed);
            match TcpClient::verify_with_retry(target.addr, self.read_timeout, req, &self.retry) {
                Ok(reply) => return Ok(reply),
                // Transport-dead after retries: declare the node dead,
                // replay its journal, fail over to the successor.
                Err(ClientError::Io(_)) | Err(ClientError::Timeout) => {
                    self.mark_dead(target.id);
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    skip.retain(|id| *id != target.id); // now off the ring
                }
                // Everything else is an answer (refusal, protocol
                // violation worth surfacing), not a dead node.
                Err(e) => return Err(e),
            }
        }
    }

    /// Gracefully retires a live node: its journal is replayed to the
    /// peers **before** the ring re-ranges, so a request re-routed to
    /// the successor always finds the cached outcome — administrative
    /// decommission never costs a re-verification (the wave-load
    /// retire-mid drill pins `cold_runs ≤ distinct + cancelled +
    /// failovers` across it). [`mark_dead`](Router::mark_dead) replays
    /// only *after* removal — correct for a crash, where the node is
    /// already gone, but a window where re-routed requests re-verify
    /// cold if the node was alive. The second replay inside
    /// `mark_dead` then catches any line the node appended between the
    /// pre-ship and the re-range (receivers skip byte-identical
    /// records, so replaying twice is idempotent).
    pub fn retire(&self, id: u32) {
        let (handle, peers) = {
            let st = self.state.lock().expect("router poisoned");
            let Some(handle) = st.nodes.get(&id).cloned() else {
                return;
            };
            let peers: Vec<NodeHandle> =
                st.nodes.values().filter(|n| n.id != id).cloned().collect();
            (handle, peers)
        };
        self.replay_journal(&handle, &peers);
        self.mark_dead(id);
    }

    /// Declares a node dead: off the ring, journal replayed to the
    /// survivors. Idempotent; also the entry point for kill drills.
    pub fn mark_dead(&self, id: u32) {
        let (handle, survivors) = {
            let mut st = self.state.lock().expect("router poisoned");
            let Some(handle) = st.nodes.remove(&id) else {
                return;
            };
            st.ring.remove_node(id);
            st.suspects.remove(&id);
            st.dead.insert(id);
            let survivors: Vec<NodeHandle> = st.nodes.values().cloned().collect();
            (handle, survivors)
        };
        self.counters
            .nodes_marked_dead
            .fetch_add(1, Ordering::Relaxed);
        self.replay_journal(&handle, &survivors);
        // Survivors (and routed clients bootstrapping off them) must
        // learn the new epoch, or checked requests for the dead node's
        // arcs would bounce off stale `wrong_shard` refusals.
        self.push_view();
    }

    /// Replays a dead node's persisted journal to every survivor via
    /// the validating replication path. Only complete CRC-framed lines
    /// ship; the receivers re-validate every frame, so a torn or
    /// corrupted journal can lose records but never install wrong ones.
    fn replay_journal(&self, dead: &NodeHandle, survivors: &[NodeHandle]) {
        let Some(path) = &dead.journal else {
            return;
        };
        let (lines, _) = tail_lines(path, wave_serve::cache::JournalCursor::default());
        if lines.is_empty() || survivors.is_empty() {
            return;
        }
        let payload: usize = lines.iter().map(String::len).sum();
        for peer in survivors {
            match self.faults.decide(Hook::FleetShip, payload) {
                Fault::Delay(d) => std::thread::sleep(d),
                // A dropped replay loses cached results, never answers:
                // the new owner re-verifies cold. Safe to skip.
                Fault::Drop => continue,
                _ => {}
            }
            if let Ok(mut c) = TcpClient::connect_timeout(peer.addr, self.read_timeout) {
                if let Ok((applied, _, _)) = c.replicate(&lines) {
                    self.counters
                        .replayed_records
                        .fetch_add(applied, Ordering::Relaxed);
                }
            }
        }
    }

    /// Per-node `stats` replies plus router counters, as JSON text:
    /// `{"router":{...},"nodes":[{"id":0,"stats":{...}},...]}`.
    pub fn fleet_stats(&self) -> String {
        use wave_serve::json::Json;
        let mut nodes = Vec::new();
        for handle in self.nodes() {
            let stats = TcpClient::connect_timeout(handle.addr, self.read_timeout)
                .ok()
                .and_then(|mut c| c.stats().ok())
                .unwrap_or(Json::Null);
            nodes.push(Json::Obj(vec![
                ("id".into(), Json::Int(handle.id as i64)),
                ("stats".into(), stats),
            ]));
        }
        let c = &self.counters;
        let (alive, suspect, dead, ring_epoch) = {
            let st = self.state.lock().expect("router poisoned");
            (
                st.nodes.len().saturating_sub(st.suspects.len()),
                st.suspects.len(),
                st.dead.len(),
                st.ring.epoch(),
            )
        };
        Json::Obj(vec![
            (
                "router".into(),
                Json::Obj(vec![
                    (
                        "forwards".into(),
                        Json::Int(c.forwards.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "failovers".into(),
                        Json::Int(c.failovers.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "nodes_marked_dead".into(),
                        Json::Int(c.nodes_marked_dead.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "replayed_records".into(),
                        Json::Int(c.replayed_records.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "rejoins".into(),
                        Json::Int(c.rejoins.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "view_pushes".into(),
                        Json::Int(c.view_pushes.load(Ordering::Relaxed) as i64),
                    ),
                    ("members_alive".into(), Json::Int(alive as i64)),
                    ("members_suspect".into(), Json::Int(suspect as i64)),
                    ("members_dead".into(), Json::Int(dead as i64)),
                    ("ring_epoch".into(), Json::Int(ring_epoch as i64)),
                    ("epoch".into(), Json::Int(ring_epoch as i64)),
                ]),
            ),
            ("nodes".into(), Json::Arr(nodes)),
        ])
        .encode()
    }
}
