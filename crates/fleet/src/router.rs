//! The front-end router: fingerprint → owning node → forward.
//!
//! Routing is **content-addressed**: the router computes the same
//! canonical fingerprint the engine computes (same resolution, same
//! normalization), so every identical request lands on the same node —
//! which is what turns per-node request coalescing into *fleet-wide*
//! coalescing: one hot property means one owner, one leader, one
//! verification, however many clients stampede.
//!
//! # Failure model
//!
//! A forward that fails at the transport level (dead socket, timeout,
//! EOF mid-frame) is retried once on a fresh connection; if the node
//! still does not answer it is **marked dead**: removed from the ring
//! (epoch bump), its journal replayed to the survivors (every completed
//! result it had persisted is re-installed through the validating
//! replication path), and the request fails over to the new owner.
//! Typed refusals (admission, bad property, overload with retry-after)
//! are relayed to the caller — they are answers, not failures.
//!
//! The [`Hook::FleetForward`] fault point lets `wave-chaos` drop or
//! delay forwards (a soft partition): a dropped forward fails over for
//! that request only, without declaring the owner dead.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use wave_logic::fingerprint::Fnv128;
use wave_serve::client::{ClientError, RetryPolicy, TcpClient, VerifyReply};
use wave_serve::codec::{Mode, VerifyRequest};
use wave_serve::engine::request_fingerprint;
use wave_serve::faults::{Fault, Faults, Hook};
use wave_serve::registry;

use crate::ring::Ring;
use crate::shipper::tail_lines;

/// One fleet member as the router sees it.
#[derive(Clone, Debug)]
pub struct NodeHandle {
    /// Shard id (also the engine's `shard` and the ring id).
    pub id: u32,
    /// Where the node's wave-serve protocol listens.
    pub addr: SocketAddr,
    /// The node's cache journal, when the router can read it — enables
    /// journal replay after a kill. `None` for remote nodes.
    pub journal: Option<PathBuf>,
}

/// Monotonic router counters.
#[derive(Default)]
pub struct RouterCounters {
    /// Requests forwarded to an owner node.
    pub forwards: AtomicU64,
    /// Requests re-routed to a successor (dropped forward or dead
    /// owner).
    pub failovers: AtomicU64,
    /// Nodes declared dead after failed forwards (or by a kill drill).
    pub nodes_marked_dead: AtomicU64,
    /// Journal records replayed to survivors after node deaths.
    pub replayed_records: AtomicU64,
}

struct RouterState {
    ring: Ring,
    nodes: HashMap<u32, NodeHandle>,
}

/// The fleet front end.
pub struct Router {
    state: Mutex<RouterState>,
    faults: Faults,
    read_timeout: Duration,
    retry: RetryPolicy,
    /// Monotonic counters for fleet stats.
    pub counters: RouterCounters,
}

/// The fingerprint a request routes by: identical to the engine's
/// canonical fingerprint for well-formed requests, so router placement
/// and engine caching agree. Content that cannot be resolved (unknown
/// service, unparsable property) routes by raw text — any node can
/// produce the typed refusal.
pub fn routing_fingerprint(req: &VerifyRequest) -> u128 {
    if let Some(service) = registry::resolve(&req.service) {
        let property = match req.mode {
            Mode::ErrorFree => None,
            Mode::Ltl => wave_logic::parser::parse_property(&req.property).ok(),
        };
        if property.is_some() || req.mode == Mode::ErrorFree {
            return request_fingerprint(&service, property.as_ref(), req.mode, req.node_limit).0;
        }
    }
    let mut h = Fnv128::new();
    h.write_str("wave-fleet/unroutable/v1");
    h.write_str(&req.service);
    h.write_str(&req.property);
    h.finish()
}

impl Router {
    /// A router over the given nodes, with a fault plane for the
    /// forward/ship hook points (pass [`Faults::none`] in production).
    pub fn new(nodes: Vec<NodeHandle>, faults: Faults) -> Router {
        let ring = Ring::new(nodes.iter().map(|n| n.id));
        let nodes = nodes.into_iter().map(|n| (n.id, n)).collect();
        Router {
            state: Mutex::new(RouterState { ring, nodes }),
            faults,
            read_timeout: Duration::from_secs(30),
            retry: RetryPolicy {
                max_attempts: 2,
                base: Duration::from_millis(20),
                cap: Duration::from_millis(200),
                budget: Duration::from_secs(2),
                seed: 0x666c_6565, // "flee(t)"
            },
            counters: RouterCounters::default(),
        }
    }

    /// Live node handles, ascending by id.
    pub fn nodes(&self) -> Vec<NodeHandle> {
        let st = self.state.lock().expect("router poisoned");
        let mut out: Vec<NodeHandle> = st.nodes.values().cloned().collect();
        out.sort_by_key(|n| n.id);
        out
    }

    /// The current ring epoch (bumped by every death).
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("router poisoned").ring.epoch()
    }

    /// The node a request would be forwarded to right now.
    pub fn owner_of(&self, req: &VerifyRequest) -> Option<u32> {
        let st = self.state.lock().expect("router poisoned");
        if st.ring.is_empty() {
            return None;
        }
        Some(st.ring.owner(routing_fingerprint(req)))
    }

    /// Routes one request to completion: forward to the owner, fail
    /// over past dropped forwards and dead nodes, relay the answer.
    pub fn submit(&self, req: &VerifyRequest) -> Result<VerifyReply, ClientError> {
        let fp = routing_fingerprint(req);
        // Nodes this *request* must skip (dropped forwards), on top of
        // ring membership (which deaths shrink as we go).
        let mut skip: Vec<u32> = Vec::new();
        loop {
            let target = {
                let st = self.state.lock().expect("router poisoned");
                match st.ring.owner_excluding(fp, &skip) {
                    Some(id) => st.nodes[&id].clone(),
                    None => {
                        return Err(ClientError::Protocol(
                            "no live node can take this request".into(),
                        ))
                    }
                }
            };
            match self.faults.decide(Hook::FleetForward, 0) {
                Fault::Delay(d) => std::thread::sleep(d),
                Fault::Drop => {
                    // Soft partition: this forward is lost. Fail over for
                    // this request only; the owner is not declared dead.
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    skip.push(target.id);
                    continue;
                }
                _ => {}
            }
            self.counters.forwards.fetch_add(1, Ordering::Relaxed);
            match TcpClient::verify_with_retry(target.addr, self.read_timeout, req, &self.retry) {
                Ok(reply) => return Ok(reply),
                // Transport-dead after retries: declare the node dead,
                // replay its journal, fail over to the successor.
                Err(ClientError::Io(_)) | Err(ClientError::Timeout) => {
                    self.mark_dead(target.id);
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    skip.retain(|id| *id != target.id); // now off the ring
                }
                // Everything else is an answer (refusal, protocol
                // violation worth surfacing), not a dead node.
                Err(e) => return Err(e),
            }
        }
    }

    /// Gracefully retires a live node: its journal is replayed to the
    /// peers **before** the ring re-ranges, so a request re-routed to
    /// the successor always finds the cached outcome — administrative
    /// decommission never costs a re-verification (the wave-load
    /// retire-mid drill pins `cold_runs ≤ distinct + cancelled +
    /// failovers` across it). [`mark_dead`](Router::mark_dead) replays
    /// only *after* removal — correct for a crash, where the node is
    /// already gone, but a window where re-routed requests re-verify
    /// cold if the node was alive. The second replay inside
    /// `mark_dead` then catches any line the node appended between the
    /// pre-ship and the re-range (receivers skip byte-identical
    /// records, so replaying twice is idempotent).
    pub fn retire(&self, id: u32) {
        let (handle, peers) = {
            let st = self.state.lock().expect("router poisoned");
            let Some(handle) = st.nodes.get(&id).cloned() else {
                return;
            };
            let peers: Vec<NodeHandle> =
                st.nodes.values().filter(|n| n.id != id).cloned().collect();
            (handle, peers)
        };
        self.replay_journal(&handle, &peers);
        self.mark_dead(id);
    }

    /// Declares a node dead: off the ring, journal replayed to the
    /// survivors. Idempotent; also the entry point for kill drills.
    pub fn mark_dead(&self, id: u32) {
        let (handle, survivors) = {
            let mut st = self.state.lock().expect("router poisoned");
            let Some(handle) = st.nodes.remove(&id) else {
                return;
            };
            st.ring.remove_node(id);
            let survivors: Vec<NodeHandle> = st.nodes.values().cloned().collect();
            (handle, survivors)
        };
        self.counters
            .nodes_marked_dead
            .fetch_add(1, Ordering::Relaxed);
        self.replay_journal(&handle, &survivors);
    }

    /// Replays a dead node's persisted journal to every survivor via
    /// the validating replication path. Only complete CRC-framed lines
    /// ship; the receivers re-validate every frame, so a torn or
    /// corrupted journal can lose records but never install wrong ones.
    fn replay_journal(&self, dead: &NodeHandle, survivors: &[NodeHandle]) {
        let Some(path) = &dead.journal else {
            return;
        };
        let (lines, _) = tail_lines(path, wave_serve::cache::JournalCursor::default());
        if lines.is_empty() || survivors.is_empty() {
            return;
        }
        let payload: usize = lines.iter().map(String::len).sum();
        for peer in survivors {
            match self.faults.decide(Hook::FleetShip, payload) {
                Fault::Delay(d) => std::thread::sleep(d),
                // A dropped replay loses cached results, never answers:
                // the new owner re-verifies cold. Safe to skip.
                Fault::Drop => continue,
                _ => {}
            }
            if let Ok(mut c) = TcpClient::connect_timeout(peer.addr, self.read_timeout) {
                if let Ok((applied, _, _)) = c.replicate(&lines) {
                    self.counters
                        .replayed_records
                        .fetch_add(applied, Ordering::Relaxed);
                }
            }
        }
    }

    /// Per-node `stats` replies plus router counters, as JSON text:
    /// `{"router":{...},"nodes":[{"id":0,"stats":{...}},...]}`.
    pub fn fleet_stats(&self) -> String {
        use wave_serve::json::Json;
        let mut nodes = Vec::new();
        for handle in self.nodes() {
            let stats = TcpClient::connect_timeout(handle.addr, self.read_timeout)
                .ok()
                .and_then(|mut c| c.stats().ok())
                .unwrap_or(Json::Null);
            nodes.push(Json::Obj(vec![
                ("id".into(), Json::Int(handle.id as i64)),
                ("stats".into(), stats),
            ]));
        }
        let c = &self.counters;
        Json::Obj(vec![
            (
                "router".into(),
                Json::Obj(vec![
                    (
                        "forwards".into(),
                        Json::Int(c.forwards.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "failovers".into(),
                        Json::Int(c.failovers.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "nodes_marked_dead".into(),
                        Json::Int(c.nodes_marked_dead.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "replayed_records".into(),
                        Json::Int(c.replayed_records.load(Ordering::Relaxed) as i64),
                    ),
                    ("epoch".into(), Json::Int(self.epoch() as i64)),
                ]),
            ),
            ("nodes".into(), Json::Arr(nodes)),
        ])
        .encode()
    }
}
