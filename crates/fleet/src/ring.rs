//! Re-export of the consistent-hash ring, which moved to
//! [`wave_serve::ring`] when client-side routing landed: placement must
//! be computable by routers, nodes *and* clients, and `wave-serve`
//! cannot depend on this crate. Fleet-side callers keep their
//! `wave_fleet::ring::Ring` imports; the implementation (and the
//! versioned `wave-fleet/ring/v1` domain tag) is unchanged.

pub use wave_serve::ring::{Ring, VNODES_PER_NODE};
