//! wave-fleet: a sharded multi-node verification fleet.
//!
//! One `wave-serve` node verifies one request at a time per worker and
//! caches what it proved. This crate scales that out: a front-end
//! [`router::Router`] consistent-hashes the **128-bit canonical content
//! fingerprint** of every request onto N nodes (a [`ring::Ring`] of
//! virtual points), so identical content always lands on the same node
//! and the engine's request coalescing becomes fleet-wide — a
//! thundering herd on one hot property costs exactly one verification
//! no matter how many front-end clients stampede.
//!
//! Completed results replicate by **shipping the journal**: the
//! [`shipper::Shipper`] tails each node's CRC-framed NDJSON cache
//! journal and re-plays new complete lines into every other node
//! through a validating `replicate` wire command. Because the journal
//! *is* the replication log, there is no second serialization format to
//! drift, and a node kill is survivable: the router re-ranges the ring
//! (epoch bump) and replays the dead node's shipped journal into its
//! successors, so the fleet keeps every verdict the dead node ever
//! persisted.
//!
//! The invariant hierarchy mirrors the rest of the workspace: a fleet
//! may lose *cached* work (a dropped ship, a torn journal tail) — it
//! re-verifies cold — but it must never serve a wrong verdict, install
//! a corrupted replay, or hang a client.
//!
//! Fleets come in two shapes: [`local::LocalFleet`] (in-process nodes,
//! for benchmarks and counter-level tests) and [`local::ProcessFleet`]
//! (child processes, for real-`SIGKILL` drills). The `wave-fleet`
//! binary exposes `node` (one fleet member), `up` (boot a whole fleet
//! behind one front-end port), and `flap` (the kill/restart chaos
//! campaign).
//!
//! Membership is a **heartbeat plane** ([`heartbeat::Heartbeat`]): the
//! router probes every member's cheap `health` command on a jittered
//! interval, suspects after K missed beats, and confirms with one
//! direct probe before any kill. Restarted nodes re-enter through
//! [`router::Router::join`] — peers' journals replay in *before* the
//! ring re-ranges, so a re-join never loses a verdict and never
//! re-verifies already-paid content. The epoch-tagged
//! [`wave_serve::view::MemberView`] the router pushes to every node is
//! the full routing input, which is what lets
//! [`wave_serve::client::RoutedClient`] compute placement locally and
//! survive the router's death entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flap;
pub mod heartbeat;
pub mod local;
pub mod ring;
pub mod router;
pub mod shipper;
