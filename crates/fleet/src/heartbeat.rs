//! The heartbeat membership plane: cheap liveness probes, K-missed-beat
//! suspicion, and confirm-before-kill.
//!
//! A background thread probes every member's `health` command on a
//! seeded-jittered interval (jitter keeps probes from synchronizing
//! into a thundering herd against loaded nodes). A failed probe is a
//! *missed beat*, not a death: the member moves alive → suspect and
//! stays on the ring. Only after `k_missed` consecutive misses does the
//! prober escalate — and even then it runs **one more synchronous
//! confirm probe that bypasses the fault plane** before calling
//! [`Router::mark_dead`]. The confirm is what makes the plane safe
//! under chaos: a node whose probes are being dropped or corrupted by
//! [`Hook::FleetHealth`] faults is slow-to-observe, not dead, and the
//! direct confirm sees it answer. A member is only ever executed when
//! a real connection to a real port fails twice over.
//!
//! The probe doubles as the view re-sync path: a healthy reply carries
//! the node's installed view epoch, and a node behind the router's
//! epoch (it missed a push while restarting) gets the current view
//! re-pushed immediately.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use wave_serve::client::TcpClient;
use wave_serve::faults::{Fault, Faults, Hook};

use crate::router::{NodeHandle, Router};

/// Tuning for the heartbeat prober.
#[derive(Clone, Debug)]
pub struct HeartbeatOptions {
    /// Base probe interval; actual sleeps jitter in `[interval/2,
    /// 3*interval/2)` from the seed.
    pub interval: Duration,
    /// Consecutive missed beats before the confirm-before-kill probe.
    pub k_missed: u32,
    /// Connect/read timeout for a single probe.
    pub probe_timeout: Duration,
    /// Seed for the probe jitter (deterministic schedules in drills).
    pub seed: u64,
}

impl Default for HeartbeatOptions {
    fn default() -> HeartbeatOptions {
        HeartbeatOptions {
            interval: Duration::from_millis(100),
            k_missed: 3,
            probe_timeout: Duration::from_millis(250),
            seed: 0x6265_6174, // "beat"
        }
    }
}

/// Monotonic heartbeat counters (exposed for drills).
#[derive(Default)]
pub struct HeartbeatCounters {
    /// Probes attempted (including faulted ones).
    pub probes: AtomicU64,
    /// Probes that missed (fault or transport failure).
    pub missed: AtomicU64,
    /// Confirm probes that saved a suspect from execution.
    pub confirms_cleared: AtomicU64,
    /// Confirm probes that failed: members actually marked dead.
    pub kills: AtomicU64,
    /// Stale-epoch replies that triggered a view re-push.
    pub view_resyncs: AtomicU64,
}

/// A running heartbeat prober. Dropping stops it.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    /// Counters shared with the prober thread.
    pub counters: Arc<HeartbeatCounters>,
}

impl Heartbeat {
    /// Starts the prober over the router's live members. The fault
    /// plane applies to ordinary probes only — confirm probes go
    /// straight to the socket, by design.
    pub fn start(router: Arc<Router>, faults: Faults, opts: HeartbeatOptions) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(HeartbeatCounters::default());
        let thread_stop = Arc::clone(&stop);
        let thread_counters = Arc::clone(&counters);
        let handle = std::thread::Builder::new()
            .name("wave-heartbeat".into())
            .spawn(move || run(router, faults, opts, thread_stop, thread_counters))
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            handle: Some(handle),
            counters,
        }
    }

    /// Stops the prober and joins the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.halt();
    }
}

/// xorshift64* — enough randomness for probe jitter, zero dependencies.
fn next_jitter(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn run(
    router: Arc<Router>,
    faults: Faults,
    opts: HeartbeatOptions,
    stop: Arc<AtomicBool>,
    counters: Arc<HeartbeatCounters>,
) {
    let mut jitter = opts.seed | 1;
    let mut missed: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    while !stop.load(Ordering::Relaxed) {
        // Jittered sleep in [interval/2, 3*interval/2), in small slices
        // so a stop request is honored promptly.
        let base = opts.interval.as_millis().max(1) as u64;
        let sleep_ms = base / 2 + next_jitter(&mut jitter) % base.max(1);
        let mut slept = 0;
        while slept < sleep_ms && !stop.load(Ordering::Relaxed) {
            let slice = (sleep_ms - slept).min(20);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let members = router.nodes();
        missed.retain(|id, _| members.iter().any(|m| m.id == *id));
        for member in members {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            probe_member(&router, &faults, &opts, &counters, &mut missed, &member);
        }
    }
}

fn probe_member(
    router: &Router,
    faults: &Faults,
    opts: &HeartbeatOptions,
    counters: &HeartbeatCounters,
    missed: &mut std::collections::HashMap<u32, u32>,
    member: &NodeHandle,
) {
    counters.probes.fetch_add(1, Ordering::Relaxed);
    // The fault plane sits on the *probe path*, not the node: a Drop or
    // Corrupt fault means this beat is lost in flight, a Delay means a
    // slow network leg.
    let beat = match faults.decide(Hook::FleetHealth, 0) {
        Fault::Drop | Fault::Corrupt { .. } => None,
        Fault::Delay(d) => {
            std::thread::sleep(d);
            probe(member, opts.probe_timeout)
        }
        _ => probe(member, opts.probe_timeout),
    };
    match beat {
        Some(reply_epoch) => {
            missed.remove(&member.id);
            router.clear_suspect(member.id);
            // Probe doubles as view re-sync: a node behind the epoch
            // (restarted, missed a push) gets the current view.
            if reply_epoch < router.epoch() {
                counters.view_resyncs.fetch_add(1, Ordering::Relaxed);
                router.push_view_to(member.id);
            }
        }
        None => {
            counters.missed.fetch_add(1, Ordering::Relaxed);
            let n = missed.entry(member.id).or_insert(0);
            *n += 1;
            router.set_suspect(member.id, *n);
            if *n >= opts.k_missed {
                // Confirm-before-kill: one synchronous probe that
                // deliberately bypasses the fault plane. A slow node
                // under load is never executed for a dropped packet.
                if probe(member, opts.probe_timeout).is_some() {
                    counters.confirms_cleared.fetch_add(1, Ordering::Relaxed);
                    missed.remove(&member.id);
                    router.clear_suspect(member.id);
                } else {
                    counters.kills.fetch_add(1, Ordering::Relaxed);
                    missed.remove(&member.id);
                    router.mark_dead(member.id);
                }
            }
        }
    }
}

/// One direct probe: fresh connection, `health` round trip. Returns the
/// node's installed view epoch on success.
fn probe(member: &NodeHandle, timeout: Duration) -> Option<u64> {
    let mut c = TcpClient::connect_timeout(member.addr, timeout).ok()?;
    c.health().ok().map(|h| h.epoch)
}
