//! The flapping-membership chaos campaign: kill and re-join nodes
//! repeatedly while the heartbeat probe path is under fault injection.
//!
//! One **seed** is one fleet lifetime: a 3-node [`LocalFleet`] whose
//! fleet fault plane runs [`Plan::Flapping`] (drop / delay / corrupt on
//! [`Hook::FleetHealth`](wave_serve::faults::Hook::FleetHealth) probes
//! only) while the drill kills a node, re-joins it, and repeats. The
//! campaign asserts the two membership invariants from DESIGN.md §14:
//!
//! - **zero wrong verdicts** — every reply for a fingerprint carries
//!   verdict bytes identical to the first (reference) reply, through
//!   every kill, re-join, and faulted probe;
//! - **zero lost journaled verdicts** — after the final re-join, a full
//!   re-submit of the whole corpus is 100% cache hits: nothing the
//!   fleet ever journaled is re-verified, ever.
//!
//! The confirm-before-kill probe is load-bearing here: flapping faults
//! drop enough beats to push live nodes to K missed, and without the
//!   direct confirm the prober would execute healthy members mid-drill.

use std::sync::Arc;
use std::time::Duration;

use wave_chaos::plan::Plan;
use wave_chaos::plane::ChaosPlane;
use wave_serve::codec::{Mode, VerifyRequest};
use wave_serve::{Faults, Json};

use crate::heartbeat::HeartbeatOptions;
use crate::local::{FleetOptions, LocalFleet};

/// Kill/re-join rounds per seed.
const ROUNDS: usize = 3;

/// What the campaign saw.
#[derive(Debug, Default)]
pub struct FlapReport {
    /// Seeds run.
    pub seeds: u64,
    /// Seeds with at least one violation.
    pub failures: u64,
    /// Kill + re-join cycles executed.
    pub rounds: u64,
    /// Replies compared against their reference bytes.
    pub replies: u64,
    /// Final-sweep submissions answered from cache.
    pub cache_hits: u64,
    /// Final-sweep submissions that re-verified cold (must be 0).
    pub cold_resubmits: u64,
    /// Probe faults actually injected across all planes.
    pub injected: u64,
    /// Invariant violations — must be empty for the campaign to pass.
    pub violations: Vec<String>,
}

impl FlapReport {
    /// Did every seed uphold both membership invariants?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One JSON object (CI consumes this).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seeds".into(), Json::Int(self.seeds as i64)),
            ("failures".into(), Json::Int(self.failures as i64)),
            ("rounds".into(), Json::Int(self.rounds as i64)),
            ("replies".into(), Json::Int(self.replies as i64)),
            ("cache_hits".into(), Json::Int(self.cache_hits as i64)),
            (
                "cold_resubmits".into(),
                Json::Int(self.cold_resubmits as i64),
            ),
            ("injected".into(), Json::Int(self.injected as i64)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Human summary line.
    pub fn summary(&self) -> String {
        format!(
            "flap: {} seeds, {} rounds, {} replies byte-checked, {} cache hits, \
             {} cold re-submits, {} probe faults injected, {} violations",
            self.seeds,
            self.rounds,
            self.replies,
            self.cache_hits,
            self.cold_resubmits,
            self.injected,
            self.violations.len()
        )
    }
}

/// The corpus every seed replays: registry services with deterministic
/// verdict bytes (single-threaded search).
fn corpus() -> Vec<VerifyRequest> {
    [
        ("toggle", "G (P | Q)"),
        ("toggle", "F Q"),
        ("toggle", "G (!P | F Q)"),
        ("login", "G (!CP | logged_in)"),
        ("login", "F logged_in"),
        ("toggle", "G P"),
    ]
    .into_iter()
    .map(|(service, property)| VerifyRequest {
        service: service.into(),
        property: property.into(),
        mode: Mode::Ltl,
        node_limit: 0,
        threads: 1,
        deadline_us: 5_000_000,
        check_owner: false,
    })
    .collect()
}

/// Extracts the canonical verdict object from an outcome's text form —
/// "byte-identical" is a claim about the answer, not the clock, so the
/// search stats (which carry wall times) are excluded.
fn verdict_bytes(outcome_text: &str) -> Option<String> {
    Some(Json::parse(outcome_text).ok()?.get("verdict")?.encode())
}

/// xorshift64* over the seed: picks kill targets deterministically.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// One seed: boot, reference sweep, `ROUNDS` kill/re-join cycles with
/// submits in the degraded and restored states, final 100%-hit sweep.
fn run_seed(seed: u64, nodes: usize, report: &mut FlapReport) {
    let plane = Arc::new(ChaosPlane::new(Plan::Flapping, seed ^ 0x666c_6170));
    let opts = FleetOptions {
        fleet_faults: Faults::new(Arc::clone(&plane) as Arc<dyn wave_serve::FaultInjector>),
        ship_interval: Duration::from_millis(20),
        heartbeat: Some(HeartbeatOptions {
            interval: Duration::from_millis(25),
            k_missed: 3,
            probe_timeout: Duration::from_millis(250),
            seed,
        }),
        ..FleetOptions::default()
    };
    let mut fleet = match LocalFleet::launch(nodes, opts) {
        Ok(f) => f,
        Err(e) => {
            report
                .violations
                .push(format!("seed {seed}: fleet failed to launch: {e}"));
            return;
        }
    };
    let corpus = corpus();
    let mut rng = seed | 1;
    let before = report.violations.len();

    // Reference sweep: first reply per fingerprint is the contract.
    let mut references: Vec<Option<(String, String)>> = Vec::new();
    for req in &corpus {
        match fleet.router().submit(req) {
            Ok(r) => match verdict_bytes(&r.outcome_text) {
                Some(v) => references.push(Some((r.fingerprint.to_hex(), v))),
                None => {
                    report
                        .violations
                        .push(format!("seed {seed}: undecodable reference outcome"));
                    references.push(None);
                }
            },
            Err(e) => {
                report
                    .violations
                    .push(format!("seed {seed}: reference submit failed: {e}"));
                references.push(None);
            }
        }
    }

    let check = |fleet: &LocalFleet, when: &str, report: &mut FlapReport| {
        for (i, req) in corpus.iter().enumerate() {
            match fleet.router().submit(req) {
                Ok(r) => {
                    report.replies += 1;
                    let Some(Some((ref_fp, ref_v))) = references.get(i) else {
                        continue;
                    };
                    let got = verdict_bytes(&r.outcome_text).unwrap_or_default();
                    if r.fingerprint.to_hex() != *ref_fp || got != *ref_v {
                        report.violations.push(format!(
                            "seed {seed} {when}: WRONG VERDICT for {} / {}: got {got} fp {}, \
                             reference {ref_v} fp {ref_fp}",
                            req.service,
                            req.property,
                            r.fingerprint.to_hex(),
                        ));
                    }
                }
                Err(e) => report
                    .violations
                    .push(format!("seed {seed} {when}: submit failed: {e}")),
            }
        }
    };

    for round in 0..ROUNDS {
        // Let the shipper move journals before the kill steals a node.
        std::thread::sleep(Duration::from_millis(60));
        let victim = (next(&mut rng) % nodes as u64) as u32;
        fleet.router().mark_dead(victim);
        check(&fleet, &format!("round {round} degraded"), report);
        if let Err(e) = fleet.rejoin(victim) {
            report
                .violations
                .push(format!("seed {seed} round {round}: rejoin failed: {e}"));
            break;
        }
        check(&fleet, &format!("round {round} restored"), report);
        report.rounds += 1;
    }

    // Economy invariant: after all that churn, nothing journaled is
    // ever re-verified — the final sweep is 100% cache hits.
    for req in &corpus {
        match fleet.router().submit(req) {
            Ok(r) => {
                if r.cache_hit {
                    report.cache_hits += 1;
                } else {
                    report.cold_resubmits += 1;
                    report.violations.push(format!(
                        "seed {seed}: LOST JOURNALED VERDICT: {} / {} re-verified cold \
                         after the final re-join",
                        req.service, req.property
                    ));
                }
            }
            Err(e) => report
                .violations
                .push(format!("seed {seed} final sweep: submit failed: {e}")),
        }
    }

    report.injected += plane.injected_total();
    if report.violations.len() > before {
        report.failures += 1;
    }
    let dir = fleet.dir().to_path_buf();
    drop(fleet);
    let _ = std::fs::remove_dir_all(dir);
}

/// Runs the campaign over `seeds` fleet lifetimes of `nodes` nodes.
pub fn run_campaign(seeds: u64, nodes: usize) -> FlapReport {
    let mut report = FlapReport::default();
    for seed in 0..seeds {
        report.seeds += 1;
        run_seed(seed, nodes, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-tree mini-campaign: a couple of seeds must uphold both
    /// membership invariants. CI runs 100 seeds in release mode.
    #[test]
    fn mini_flap_campaign_upholds_the_invariants() {
        let report = run_campaign(2, 3);
        assert!(
            report.ok(),
            "violations: {:#?}\nreport: {}",
            report.violations,
            report.to_json().encode()
        );
        assert_eq!(report.rounds, 2 * ROUNDS as u64);
        assert_eq!(report.cold_resubmits, 0, "economy invariant");
        assert_eq!(report.cache_hits, 2 * 6, "final sweeps must all hit");
    }
}
