//! Journal shipping: replicating completed results across the fleet.
//!
//! Every node persists its completed verifications as CRC-framed NDJSON
//! journal lines (see `wave_serve::cache`). The shipper tails each
//! node's journal by byte offset and ships new **complete** lines to
//! every other live node over the wire protocol's `replicate` command.
//! Receivers re-validate every frame (CRC, canonical re-encode,
//! cacheable verdict) and skip byte-identical records, so shipping is
//! idempotent: re-sending a window, crossing a compaction, or racing a
//! concurrent writer can duplicate work but never corrupt a cache.
//!
//! Offsets are tracked per `(source, peer)` pair and only advance after
//! a successful ship to that peer, so a peer that misses a round (drop
//! fault, dead socket) catches up on the next tick instead of silently
//! losing the window.

use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use wave_serve::client::TcpClient;
use wave_serve::faults::{Fault, Faults, Hook};

use crate::router::Router;

/// Reads the complete (newline-terminated) journal lines at or after
/// byte offset `from`, returning them with the offset just past the
/// last complete line. A file shorter than `from` (compaction rewrote
/// it) restarts from 0. Partial trailing lines — a writer mid-append,
/// or a crash mid-write — are left for the next call.
pub fn tail_lines(path: &Path, from: usize) -> (Vec<String>, usize) {
    let Ok(bytes) = fs::read(path) else {
        return (Vec::new(), from);
    };
    let from = if from > bytes.len() { 0 } else { from };
    let mut lines = Vec::new();
    let mut at = from;
    let mut line_start = from;
    while at < bytes.len() {
        if bytes[at] == b'\n' {
            let raw = &bytes[line_start..at];
            let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
            if !raw.is_empty() {
                if let Ok(s) = std::str::from_utf8(raw) {
                    lines.push(s.to_string());
                }
            }
            line_start = at + 1;
        }
        at += 1;
    }
    (lines, line_start)
}

/// A background replication pump over a router's node set.
pub struct Shipper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    shipped: Arc<AtomicU64>,
}

impl Shipper {
    /// Starts shipping every node's journal to every other live node,
    /// once per `interval`. Faults at [`Hook::FleetShip`] drop or delay
    /// individual ship rounds.
    pub fn start(router: Arc<Router>, faults: Faults, interval: Duration) -> Shipper {
        let stop = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let shipped2 = Arc::clone(&shipped);
        let handle = std::thread::Builder::new()
            .name("fleet-shipper".into())
            .spawn(move || {
                // Offset per (source node, peer node): a peer only
                // advances past bytes it has acknowledged.
                let mut offsets: HashMap<(u32, u32), usize> = HashMap::new();
                while !stop2.load(Ordering::Relaxed) {
                    Shipper::tick(&router, &faults, &mut offsets, &shipped2);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn fleet-shipper");
        Shipper {
            stop,
            handle: Some(handle),
            shipped,
        }
    }

    /// Journal lines successfully shipped (summed over peers).
    pub fn shipped(&self) -> u64 {
        self.shipped.load(Ordering::Relaxed)
    }

    fn tick(
        router: &Router,
        faults: &Faults,
        offsets: &mut HashMap<(u32, u32), usize>,
        shipped: &AtomicU64,
    ) {
        let nodes = router.nodes();
        for source in &nodes {
            let Some(journal) = &source.journal else {
                continue;
            };
            for peer in &nodes {
                if peer.id == source.id {
                    continue;
                }
                let key = (source.id, peer.id);
                let from = *offsets.get(&key).unwrap_or(&0);
                let (lines, next) = tail_lines(journal, from);
                if lines.is_empty() {
                    offsets.insert(key, next);
                    continue;
                }
                let payload: usize = lines.iter().map(String::len).sum();
                match faults.decide(Hook::FleetShip, payload) {
                    Fault::Delay(d) => std::thread::sleep(d),
                    // Dropped round: offset stays put, next tick
                    // re-ships the same window (idempotent receiver).
                    Fault::Drop => continue,
                    _ => {}
                }
                let ok = TcpClient::connect_timeout(peer.addr, Duration::from_secs(10))
                    .ok()
                    .and_then(|mut c| c.replicate(&lines).ok())
                    .is_some();
                if ok {
                    offsets.insert(key, next);
                    shipped.fetch_add(lines.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_returns_only_complete_lines_and_resumes() {
        let dir = std::env::temp_dir().join(format!("wave-fleet-tail-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");

        fs::write(&path, "alpha\nbeta\npartial").unwrap();
        let (lines, off) = tail_lines(&path, 0);
        assert_eq!(lines, vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(off, "alpha\nbeta\n".len());

        // The partial line completes, plus one more full line appears.
        fs::write(&path, "alpha\nbeta\npartial-done\r\ngamma\n").unwrap();
        let (lines, off2) = tail_lines(&path, off);
        assert_eq!(
            lines,
            vec!["partial-done".to_string(), "gamma".to_string()],
            "CR must be stripped, resume must not re-read old lines"
        );
        assert_eq!(off2, "alpha\nbeta\npartial-done\r\ngamma\n".len());

        // Compaction shrinks the file below our offset: restart at 0.
        fs::write(&path, "small\n").unwrap();
        let (lines, off3) = tail_lines(&path, off2);
        assert_eq!(lines, vec!["small".to_string()]);
        assert_eq!(off3, "small\n".len());

        // Missing file: no lines, offset preserved.
        let (lines, off4) = tail_lines(&dir.join("absent"), 17);
        assert!(lines.is_empty());
        assert_eq!(off4, 17);

        let _ = fs::remove_dir_all(&dir);
    }
}
