//! Journal shipping: replicating completed results across the fleet.
//!
//! Every node persists its completed verifications as CRC-framed NDJSON
//! journal lines (see `wave_serve::cache`). The shipper tails each
//! node's journal by byte offset and ships new **complete** lines to
//! the node's [`SHIP_FANOUT`] **ring successors** over the wire
//! protocol's `replicate` command. Receivers re-validate every frame
//! (CRC, canonical re-encode, cacheable verdict) and skip
//! byte-identical records, so shipping is idempotent: re-sending a
//! window, crossing a compaction, or racing a concurrent writer can
//! duplicate work but never corrupt a cache.
//!
//! Successor shipping replaces the original all-pairs fan-out (O(n²)
//! connections per tick) with O(n·R). Replication still converges
//! fleet-wide because the pieces compose into gossip: placement and
//! successor sets are pure functions of the member set, the R=1
//! successor relation is a single cycle over the members (see
//! [`Ring::successors`](crate::ring::Ring::successors)), and a receiver
//! **re-journals** what it installs (`apply_replicated` persists to the
//! receiver's own journal) — so a record hops successor-to-successor
//! around the circle, one tick per hop, until every member holds it.
//!
//! Cursors (journal generation + byte offset, see
//! [`JournalCursor`](wave_serve::cache::JournalCursor)) are tracked per
//! `(source, peer)` pair and only advance after a successful ship to
//! that peer, so a peer that misses a round (drop fault, dead socket)
//! catches up on the next tick instead of silently losing the window.
//! The generation stamp — bumped by every journal compaction, read from
//! the `.gen` sidecar next to the journal — is what makes resuming
//! sound: a compaction rewrites the file, so a stale byte offset points
//! into different content, and when later appends regrow the file past
//! the old offset a length check alone would resume mid-stream and
//! silently skip every record between the rewrite start and the stale
//! offset. A generation mismatch restarts at byte 0 instead; the
//! receiver skips byte-identical records, so over-shipping is free.

use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use wave_serve::cache::{read_generation, JournalCursor};
use wave_serve::client::TcpClient;
use wave_serve::faults::{Fault, Faults, Hook};

use crate::router::Router;

/// Ring successors each node ships its journal to per tick. R=2 means
/// one failure never strands a record: the other successor already has
/// it (or receives it next tick) and gossips it onward.
pub const SHIP_FANOUT: usize = 2;

/// Reads the complete (newline-terminated) journal lines at or after
/// the cursor, returning them with the cursor just past the last
/// complete line. The cursor restarts at byte 0 when the journal's
/// generation stamp (the `.gen` sidecar) no longer matches — a
/// compaction rewrote the file, whatever its current length — or, for
/// journals without a sidecar, when the file is shorter than the
/// offset. Partial trailing lines — a writer mid-append, or a crash
/// mid-write — are left for the next call.
pub fn tail_lines(path: &Path, cursor: JournalCursor) -> (Vec<String>, JournalCursor) {
    let Ok(bytes) = fs::read(path) else {
        return (Vec::new(), cursor);
    };
    let generation = read_generation(path);
    let stale = cursor.generation != generation || cursor.offset > bytes.len();
    let from = if stale { 0 } else { cursor.offset };
    let mut lines = Vec::new();
    let mut at = from;
    let mut line_start = from;
    while at < bytes.len() {
        if bytes[at] == b'\n' {
            let raw = &bytes[line_start..at];
            let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
            if !raw.is_empty() {
                if let Ok(s) = std::str::from_utf8(raw) {
                    lines.push(s.to_string());
                }
            }
            line_start = at + 1;
        }
        at += 1;
    }
    (
        lines,
        JournalCursor {
            generation,
            offset: line_start,
        },
    )
}

/// A background replication pump over a router's node set.
pub struct Shipper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    shipped: Arc<AtomicU64>,
}

impl Shipper {
    /// Starts shipping every node's journal to its [`SHIP_FANOUT`] ring
    /// successors, once per `interval`. Faults at [`Hook::FleetShip`]
    /// drop or delay individual ship rounds.
    pub fn start(router: Arc<Router>, faults: Faults, interval: Duration) -> Shipper {
        let stop = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let shipped2 = Arc::clone(&shipped);
        let handle = std::thread::Builder::new()
            .name("fleet-shipper".into())
            .spawn(move || {
                // Cursor per (source node, peer node): a peer only
                // advances past bytes it has acknowledged.
                let mut offsets: HashMap<(u32, u32), JournalCursor> = HashMap::new();
                while !stop2.load(Ordering::Relaxed) {
                    Shipper::tick(&router, &faults, &mut offsets, &shipped2);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn fleet-shipper");
        Shipper {
            stop,
            handle: Some(handle),
            shipped,
        }
    }

    /// Journal lines successfully shipped (summed over peers).
    pub fn shipped(&self) -> u64 {
        self.shipped.load(Ordering::Relaxed)
    }

    fn tick(
        router: &Router,
        faults: &Faults,
        offsets: &mut HashMap<(u32, u32), JournalCursor>,
        shipped: &AtomicU64,
    ) {
        let nodes = router.nodes();
        for source in &nodes {
            let Some(journal) = &source.journal else {
                continue;
            };
            for peer in router.successors_of(source.id, SHIP_FANOUT) {
                let key = (source.id, peer.id);
                let from = offsets.get(&key).copied().unwrap_or_default();
                let (lines, next) = tail_lines(journal, from);
                if lines.is_empty() {
                    offsets.insert(key, next);
                    continue;
                }
                let payload: usize = lines.iter().map(String::len).sum();
                match faults.decide(Hook::FleetShip, payload) {
                    Fault::Delay(d) => std::thread::sleep(d),
                    // Dropped round: offset stays put, next tick
                    // re-ships the same window (idempotent receiver).
                    Fault::Drop => continue,
                    _ => {}
                }
                let ok = TcpClient::connect_timeout(peer.addr, Duration::from_secs(10))
                    .ok()
                    .and_then(|mut c| c.replicate(&lines).ok())
                    .is_some();
                if ok {
                    offsets.insert(key, next);
                    shipped.fetch_add(lines.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_returns_only_complete_lines_and_resumes() {
        let dir = std::env::temp_dir().join(format!("wave-fleet-tail-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ndjson");

        fs::write(&path, "alpha\nbeta\npartial").unwrap();
        let (lines, cur) = tail_lines(&path, JournalCursor::default());
        assert_eq!(lines, vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(cur.offset, "alpha\nbeta\n".len());

        // The partial line completes, plus one more full line appears.
        fs::write(&path, "alpha\nbeta\npartial-done\r\ngamma\n").unwrap();
        let (lines, cur2) = tail_lines(&path, cur);
        assert_eq!(
            lines,
            vec!["partial-done".to_string(), "gamma".to_string()],
            "CR must be stripped, resume must not re-read old lines"
        );
        assert_eq!(cur2.offset, "alpha\nbeta\npartial-done\r\ngamma\n".len());

        // Compaction shrinks the file below our offset: restart at 0.
        fs::write(&path, "small\n").unwrap();
        let (lines, cur3) = tail_lines(&path, cur2);
        assert_eq!(lines, vec!["small".to_string()]);
        assert_eq!(cur3.offset, "small\n".len());

        // Missing file: no lines, cursor preserved.
        let absent = JournalCursor {
            generation: 0,
            offset: 17,
        };
        let (lines, cur4) = tail_lines(&dir.join("absent"), absent);
        assert!(lines.is_empty());
        assert_eq!(cur4, absent);

        let _ = fs::remove_dir_all(&dir);
    }

    /// The replication-gap regression: a compaction shrinks the journal,
    /// later appends regrow it PAST a shipper's stale offset, and the
    /// length-only staleness check would resume mid-stream — silently
    /// skipping every record between the rewrite start and the stale
    /// offset. The generation stamp must force a restart so zero records
    /// are skipped.
    #[test]
    fn compact_then_regrow_ships_every_record() {
        use std::collections::HashSet;
        use wave_logic::fingerprint::Fingerprint;
        use wave_serve::cache::{decode_journal_line, ResultCache};

        let dir = std::env::temp_dir().join(format!("wave-fleet-regrow-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node-0.ndjson");
        let _ = fs::remove_file(&path);

        let val = |n: usize| format!("{{\"v\":{}}}", 1000 + n).into_bytes();
        let mut cache = ResultCache::new(64 * 1024).with_persistence(path.clone());

        // Round 1: insert and refresh (the refresh lines are dead
        // duplicates that the next compaction will drop).
        for i in 0..6u128 {
            cache.insert(Fingerprint(i), val(i as usize));
        }
        for i in 0..6u128 {
            cache.insert(Fingerprint(i), val(i as usize));
        }
        let mut shipped: HashSet<u128> = HashSet::new();
        let (lines, cursor) = tail_lines(&path, JournalCursor::default());
        shipped.extend(
            lines
                .iter()
                .filter_map(|l| decode_journal_line(l))
                .map(|(fp, _)| fp.0),
        );

        // Compaction drops the dead lines: the file shrinks below the
        // shipper's offset...
        cache.compact_now();
        let shrunk = fs::metadata(&path).unwrap().len() as usize;
        assert!(
            shrunk < cursor.offset,
            "compaction must shrink below the stale offset ({shrunk} vs {})",
            cursor.offset
        );
        // ...and fresh inserts regrow it past the stale offset, the
        // exact shape a length check cannot distinguish from "nothing
        // happened".
        for i in 6..20u128 {
            cache.insert(Fingerprint(i), val(i as usize));
        }
        assert!(
            fs::metadata(&path).unwrap().len() as usize > cursor.offset,
            "appends must regrow the journal past the stale offset"
        );

        let (lines, cursor2) = tail_lines(&path, cursor);
        shipped.extend(
            lines
                .iter()
                .filter_map(|l| decode_journal_line(l))
                .map(|(fp, _)| fp.0),
        );
        for i in 0..20u128 {
            assert!(shipped.contains(&i), "record {i} was silently skipped");
        }
        assert!(
            cursor2.generation > cursor.generation,
            "compaction must be visible to the tailer as a generation bump"
        );
        // Steady state: a repeat tail from the fresh cursor ships nothing.
        let (lines, _) = tail_lines(&path, cursor2);
        assert!(lines.is_empty(), "no re-shipping once caught up");

        let _ = fs::remove_dir_all(&dir);
    }
}
