//! Fleet end-to-end drills: routing determinism, fleet-wide
//! at-most-once cold verification, journal-shipped replication, node
//! kill/retire survival, and soft-partition chaos.
//!
//! The invariant hierarchy under test: a fleet may lose *cached* work
//! (it re-verifies cold), but it must never serve a wrong verdict,
//! install a corrupted replay, or hang a client.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wave_chaos::plan::Plan;
use wave_chaos::plane::ChaosPlane;
use wave_fleet::local::{FleetOptions, LocalFleet, ProcessFleet};
use wave_serve::codec::{Mode, VerifyRequest};
use wave_serve::faults::Faults;

/// Structurally distinct LTL properties over the `toggle` service's
/// propositions — each is one distinct content fingerprint.
fn formulas() -> Vec<&'static str> {
    vec![
        "G (P | Q)",
        "F P",
        "F Q",
        "G F P",
        "G F Q",
        "F G P",
        "X P",
        "X Q",
        "P U Q",
        "Q U P",
        "G (P -> X Q)",
        "G (Q -> X P)",
    ]
}

fn request(property: &str) -> VerifyRequest {
    VerifyRequest {
        service: "toggle".into(),
        property: property.into(),
        mode: Mode::Ltl,
        node_limit: 0,
        threads: 1,
        deadline_us: 0,
    }
}

/// Total cold verifications across every engine in the fleet.
fn fleet_cache_misses(fleet: &LocalFleet) -> u64 {
    fleet
        .engines()
        .iter()
        .map(|e| e.counters.cache_misses.load(Ordering::Relaxed))
        .sum()
}

#[test]
fn distinct_cold_fingerprints_verify_at_most_once_fleet_wide() {
    let fleet = LocalFleet::launch(3, FleetOptions::default()).expect("launch");
    let router = fleet.router();

    // Three rounds over the same 12 formulas: the router must send each
    // fingerprint to one deterministic owner, so rounds 2 and 3 are
    // cache hits and the fleet runs exactly 12 cold verifications.
    let mut first: Vec<String> = Vec::new();
    for round in 0..3 {
        for (i, f) in formulas().iter().enumerate() {
            let reply = router.submit(&request(f)).expect("routed verify");
            if round == 0 {
                first.push(reply.outcome_text.clone());
                assert!(!reply.cache_hit, "round 0 must be cold: {f}");
            } else {
                assert!(reply.cache_hit, "round {round} must hit: {f}");
                assert_eq!(
                    reply.outcome_text, first[i],
                    "repeat of {f} must be byte-identical"
                );
            }
        }
    }
    assert_eq!(
        fleet_cache_misses(&fleet),
        formulas().len() as u64,
        "each distinct fingerprint verifies at most once fleet-wide"
    );

    // A thundering herd on one *new* formula: 8 concurrent clients,
    // still exactly one more cold verification (deterministic routing
    // lands them on one node; that node's engine coalesces or serves
    // from cache).
    let herd_formula = "G (P <-> ! Q)";
    let router = Arc::clone(router);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || router.submit(&request(herd_formula)).expect("herd verify"))
        })
        .collect();
    let herd: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for reply in &herd {
        assert_eq!(reply.outcome_text, herd[0].outcome_text);
    }
    assert_eq!(
        fleet_cache_misses(&fleet),
        formulas().len() as u64 + 1,
        "a herd of 8 on one hot fingerprint costs exactly one verification"
    );
    assert_eq!(router.epoch(), 0, "no membership change in this drill");
}

#[test]
fn replication_ships_results_and_a_retired_node_s_verdicts_survive() {
    let fleet = LocalFleet::launch(
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            ..FleetOptions::default()
        },
    )
    .expect("launch");
    let router = fleet.router();

    let mut first: Vec<String> = Vec::new();
    for f in formulas() {
        first.push(router.submit(&request(f)).expect("verify").outcome_text);
    }

    // Every completed result ships to both peers: wait until each of
    // the 12 results has been applied twice, fleet-wide.
    let want = formulas().len() as u64 * 2;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let applied: u64 = fleet
            .engines()
            .iter()
            .map(|e| e.counters.replicated_applied.load(Ordering::Relaxed))
            .sum();
        if applied >= want {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication stalled: {applied}/{want} applied"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Retire each node in turn... but one is enough to prove survival:
    // every verdict the dead node owned must now be a warm hit on its
    // successor, byte-identical — zero re-verification.
    let cold_before = fleet_cache_misses(&fleet);
    fleet.retire(1);
    assert_eq!(router.epoch(), 1, "death must bump the ring epoch");
    for (i, f) in formulas().iter().enumerate() {
        let reply = router.submit(&request(f)).expect("post-retire verify");
        assert!(reply.cache_hit, "{f} must replay from the replicated cache");
        assert_eq!(reply.outcome_text, first[i], "{f} changed across the kill");
        assert_ne!(reply.shard, 1, "the dead node must not answer");
    }
    assert_eq!(
        fleet_cache_misses(&fleet),
        cold_before,
        "no verdict may be re-verified after a death with replication"
    );
    assert!(fleet.shipper().shipped() > 0, "the shipper must have run");
}

#[test]
fn sigkill_mid_campaign_yields_no_wrong_verdicts_and_no_hangs() {
    let bin = std::path::Path::new(env!("CARGO_BIN_EXE_wave-fleet"));
    let mut fleet = ProcessFleet::spawn(
        bin,
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            ..FleetOptions::default()
        },
    )
    .expect("spawn process fleet");
    let started = Instant::now();

    // Ground truth: one warm pass over every formula.
    let mut first: Vec<String> = Vec::new();
    for f in formulas() {
        let reply = fleet.router().submit(&request(f)).expect("verify");
        first.push(reply.outcome_text);
    }
    // Let at least one ship round land so the kill loses no verdicts.
    std::thread::sleep(Duration::from_millis(250));

    // SIGKILL one node (a real dead process: sockets reset, journal
    // frozen mid-life), then re-run the whole campaign plus new work.
    assert!(fleet.kill(0), "node 0 must exist to be killed");
    for (i, f) in formulas().iter().enumerate() {
        let reply = fleet
            .router()
            .submit(&request(f))
            .expect("post-kill verify");
        assert_eq!(
            reply.outcome_text, first[i],
            "{f} changed its verdict across a SIGKILL"
        );
        assert_ne!(reply.shard, 0, "the killed node must not answer");
    }
    let fresh = fleet
        .router()
        .submit(&request("F (P & X Q)"))
        .expect("cold verify after the kill");
    assert!(!fresh.outcome_text.is_empty());
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "the drill must complete on a bounded clock"
    );
    fleet.shutdown();
}

#[test]
fn soft_partition_chaos_never_changes_a_verdict() {
    // Dropped and delayed forwards/ships at the fleet hooks: requests
    // may fail over to non-owners (extra cold runs are allowed), but
    // every answer must still be the correct, byte-identical verdict.
    let plane = Arc::new(ChaosPlane::new(Plan::Partition, 0xF1EE7));
    let fleet = LocalFleet::launch(
        3,
        FleetOptions {
            fleet_faults: Faults::new(plane.clone()),
            ship_interval: Duration::from_millis(25),
            ..FleetOptions::default()
        },
    )
    .expect("launch");

    let mut first: Vec<String> = Vec::new();
    for round in 0..3 {
        for (i, f) in formulas().iter().enumerate() {
            let reply = fleet
                .router()
                .submit(&request(f))
                .expect("partitioned verify must still answer");
            if round == 0 {
                first.push(reply.outcome_text.clone());
            } else {
                assert_eq!(
                    reply.outcome_text, first[i],
                    "{f} verdict drifted under partition chaos"
                );
            }
        }
    }
    assert!(
        plane.decisions() > 0,
        "the partition plan must actually be consulted at the fleet hooks"
    );
    assert_eq!(
        fleet.router().epoch(),
        0,
        "soft partitions must not be escalated to node deaths"
    );
}
