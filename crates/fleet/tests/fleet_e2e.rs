//! Fleet end-to-end drills: routing determinism, fleet-wide
//! at-most-once cold verification, journal-shipped replication, node
//! kill/retire survival, re-join and ring re-expansion, heartbeat
//! death detection, router-less client-side routing, and
//! soft-partition chaos.
//!
//! The invariant hierarchy under test: a fleet may lose *cached* work
//! (it re-verifies cold), but it must never serve a wrong verdict,
//! install a corrupted replay, or hang a client — and a re-join must
//! never lose a journaled verdict or re-verify already-paid content.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wave_chaos::plan::Plan;
use wave_chaos::plane::ChaosPlane;
use wave_fleet::heartbeat::HeartbeatOptions;
use wave_fleet::local::{FleetOptions, LocalFleet, ProcessFleet};
use wave_serve::client::{RoutedClient, TcpClient};
use wave_serve::codec::{Mode, VerifyRequest};
use wave_serve::faults::Faults;

/// Structurally distinct LTL properties over the `toggle` service's
/// propositions — each is one distinct content fingerprint.
fn formulas() -> Vec<&'static str> {
    vec![
        "G (P | Q)",
        "F P",
        "F Q",
        "G F P",
        "G F Q",
        "F G P",
        "X P",
        "X Q",
        "P U Q",
        "Q U P",
        "G (P -> X Q)",
        "G (Q -> X P)",
    ]
}

fn request(property: &str) -> VerifyRequest {
    VerifyRequest {
        service: "toggle".into(),
        property: property.into(),
        mode: Mode::Ltl,
        node_limit: 0,
        threads: 1,
        deadline_us: 0,
        check_owner: false,
    }
}

/// Total cold verifications across every engine in the fleet.
fn fleet_cache_misses(fleet: &LocalFleet) -> u64 {
    fleet
        .engines()
        .iter()
        .map(|e| e.counters.cache_misses.load(Ordering::Relaxed))
        .sum()
}

#[test]
fn distinct_cold_fingerprints_verify_at_most_once_fleet_wide() {
    let fleet = LocalFleet::launch(3, FleetOptions::default()).expect("launch");
    let router = fleet.router();

    // Three rounds over the same 12 formulas: the router must send each
    // fingerprint to one deterministic owner, so rounds 2 and 3 are
    // cache hits and the fleet runs exactly 12 cold verifications.
    let mut first: Vec<String> = Vec::new();
    for round in 0..3 {
        for (i, f) in formulas().iter().enumerate() {
            let reply = router.submit(&request(f)).expect("routed verify");
            if round == 0 {
                first.push(reply.outcome_text.clone());
                assert!(!reply.cache_hit, "round 0 must be cold: {f}");
            } else {
                assert!(reply.cache_hit, "round {round} must hit: {f}");
                assert_eq!(
                    reply.outcome_text, first[i],
                    "repeat of {f} must be byte-identical"
                );
            }
        }
    }
    assert_eq!(
        fleet_cache_misses(&fleet),
        formulas().len() as u64,
        "each distinct fingerprint verifies at most once fleet-wide"
    );

    // A thundering herd on one *new* formula: 8 concurrent clients,
    // still exactly one more cold verification (deterministic routing
    // lands them on one node; that node's engine coalesces or serves
    // from cache).
    let herd_formula = "G (P <-> ! Q)";
    let router = Arc::clone(router);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || router.submit(&request(herd_formula)).expect("herd verify"))
        })
        .collect();
    let herd: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for reply in &herd {
        assert_eq!(reply.outcome_text, herd[0].outcome_text);
    }
    assert_eq!(
        fleet_cache_misses(&fleet),
        formulas().len() as u64 + 1,
        "a herd of 8 on one hot fingerprint costs exactly one verification"
    );
    assert_eq!(router.epoch(), 0, "no membership change in this drill");
}

#[test]
fn replication_ships_results_and_a_retired_node_s_verdicts_survive() {
    let fleet = LocalFleet::launch(
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            ..FleetOptions::default()
        },
    )
    .expect("launch");
    let router = fleet.router();

    let mut first: Vec<String> = Vec::new();
    for f in formulas() {
        first.push(router.submit(&request(f)).expect("verify").outcome_text);
    }

    // Every completed result ships to both peers: wait until each of
    // the 12 results has been applied twice, fleet-wide.
    let want = formulas().len() as u64 * 2;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let applied: u64 = fleet
            .engines()
            .iter()
            .map(|e| e.counters.replicated_applied.load(Ordering::Relaxed))
            .sum();
        if applied >= want {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication stalled: {applied}/{want} applied"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Retire each node in turn... but one is enough to prove survival:
    // every verdict the dead node owned must now be a warm hit on its
    // successor, byte-identical — zero re-verification.
    let cold_before = fleet_cache_misses(&fleet);
    fleet.retire(1);
    assert_eq!(router.epoch(), 1, "death must bump the ring epoch");
    for (i, f) in formulas().iter().enumerate() {
        let reply = router.submit(&request(f)).expect("post-retire verify");
        assert!(reply.cache_hit, "{f} must replay from the replicated cache");
        assert_eq!(reply.outcome_text, first[i], "{f} changed across the kill");
        assert_ne!(reply.shard, 1, "the dead node must not answer");
    }
    assert_eq!(
        fleet_cache_misses(&fleet),
        cold_before,
        "no verdict may be re-verified after a death with replication"
    );
    assert!(fleet.shipper().shipped() > 0, "the shipper must have run");
}

#[test]
fn sigkill_mid_campaign_yields_no_wrong_verdicts_and_no_hangs() {
    let bin = std::path::Path::new(env!("CARGO_BIN_EXE_wave-fleet"));
    let mut fleet = ProcessFleet::spawn(
        bin,
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            ..FleetOptions::default()
        },
    )
    .expect("spawn process fleet");
    let started = Instant::now();

    // Ground truth: one warm pass over every formula.
    let mut first: Vec<String> = Vec::new();
    for f in formulas() {
        let reply = fleet.router().submit(&request(f)).expect("verify");
        first.push(reply.outcome_text);
    }
    // Let at least one ship round land so the kill loses no verdicts.
    std::thread::sleep(Duration::from_millis(250));

    // SIGKILL one node (a real dead process: sockets reset, journal
    // frozen mid-life), then re-run the whole campaign plus new work.
    assert!(fleet.kill(0), "node 0 must exist to be killed");
    for (i, f) in formulas().iter().enumerate() {
        let reply = fleet
            .router()
            .submit(&request(f))
            .expect("post-kill verify");
        assert_eq!(
            reply.outcome_text, first[i],
            "{f} changed its verdict across a SIGKILL"
        );
        assert_ne!(reply.shard, 0, "the killed node must not answer");
    }
    let fresh = fleet
        .router()
        .submit(&request("F (P & X Q)"))
        .expect("cold verify after the kill");
    assert!(!fresh.outcome_text.is_empty());
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "the drill must complete on a bounded clock"
    );
    fleet.shutdown();
}

/// The re-join drill from the mesh acceptance bar: SIGKILL a node
/// mid-campaign, restart it from its on-disk journal, re-join it, and
/// run a 3-round campaign — zero re-verifications of journaled
/// fingerprints, byte-identical verdicts throughout.
#[test]
fn sigkill_restart_and_rejoin_never_reverifies_journaled_content() {
    let bin = std::path::Path::new(env!("CARGO_BIN_EXE_wave-fleet"));
    let mut fleet = ProcessFleet::spawn(
        bin,
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            heartbeat: None, // this drill drives membership by hand
            ..FleetOptions::default()
        },
    )
    .expect("spawn process fleet");

    // Ground truth plus journal warm-up.
    let mut first: Vec<String> = Vec::new();
    for f in formulas() {
        first.push(
            fleet
                .router()
                .submit(&request(f))
                .expect("verify")
                .outcome_text,
        );
    }
    std::thread::sleep(Duration::from_millis(250));

    // SIGKILL mid-campaign, then restart from the same on-disk journal
    // and re-join: peers replay in *before* the ring re-ranges.
    assert!(fleet.kill(0), "node 0 must exist to be killed");
    let epoch_after_kill = fleet.router().epoch();
    fleet.restart(0).expect("restart from on-disk journal");
    assert!(
        fleet.router().epoch() > epoch_after_kill,
        "re-join must bump the ring epoch"
    );
    assert_eq!(fleet.router().nodes().len(), 3, "full strength restored");

    // Per-node cold-run baseline *after* the re-join: three full rounds
    // must not add a single cold verification anywhere in the fleet.
    let misses = |fleet: &ProcessFleet| -> u64 {
        fleet
            .router()
            .nodes()
            .iter()
            .map(|n| {
                TcpClient::connect_timeout(n.addr, Duration::from_secs(5))
                    .ok()
                    .and_then(|mut c| c.stats().ok())
                    .and_then(|s| s.get("cache_misses").and_then(|v| v.as_int()))
                    .unwrap_or(0) as u64
            })
            .sum()
    };
    let baseline = misses(&fleet);
    for _round in 0..3 {
        for (i, f) in formulas().iter().enumerate() {
            let reply = fleet
                .router()
                .submit(&request(f))
                .expect("post-rejoin verify");
            assert!(reply.cache_hit, "{f} must hit after the re-join");
            assert_eq!(
                reply.outcome_text, first[i],
                "{f} changed its verdict across kill + re-join"
            );
        }
    }
    assert_eq!(
        misses(&fleet),
        baseline,
        "zero re-verifications of journaled fingerprints after a re-join"
    );

    // The restarted node is a full member again: it answers health with
    // the current epoch (the join pushed the view).
    let node0 = fleet
        .router()
        .nodes()
        .into_iter()
        .find(|n| n.id == 0)
        .expect("node 0 re-joined");
    let health = TcpClient::connect_timeout(node0.addr, Duration::from_secs(5))
        .expect("connect")
        .health()
        .expect("health");
    assert_eq!(health.shard, 0);
    assert_eq!(health.epoch, fleet.router().epoch());
    fleet.shutdown();
}

/// Client-side routing as router failover: with the view pushed, a
/// `RoutedClient` bootstrapped off the *nodes* completes every request
/// with byte-identical verdicts while the router is never on the
/// request path — and keeps working across a membership change.
#[test]
fn routed_client_survives_without_the_router() {
    let bin = std::path::Path::new(env!("CARGO_BIN_EXE_wave-fleet"));
    let mut fleet = ProcessFleet::spawn(
        bin,
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            heartbeat: None, // membership driven by hand below
            ..FleetOptions::default()
        },
    )
    .expect("spawn process fleet");

    // Warm the fleet through the router once (ground truth).
    let mut first: Vec<String> = Vec::new();
    for f in formulas() {
        first.push(
            fleet
                .router()
                .submit(&request(f))
                .expect("verify")
                .outcome_text,
        );
    }

    // From here on the router is dead as far as requests are concerned:
    // the client talks straight to owner nodes.
    let bootstrap: Vec<std::net::SocketAddr> =
        fleet.router().nodes().iter().map(|n| n.addr).collect();
    let mut client = RoutedClient::new(bootstrap).with_read_timeout(Duration::from_secs(10));
    for (i, f) in formulas().iter().enumerate() {
        let reply = client.verify(&request(f)).expect("routed verify");
        assert!(reply.cache_hit, "{f} must be served from the owner's cache");
        assert_eq!(
            reply.outcome_text, first[i],
            "{f} verdict drifted through client-side routing"
        );
    }
    assert_eq!(
        client.view_epoch(),
        fleet.router().epoch(),
        "the client must hold the fleet's current view"
    );

    // Membership changes mid-stream: a node really dies (SIGKILL), the
    // epoch bumps, the client recovers by protocol (dead socket or
    // wrong_shard → refresh) — every request still completes, still
    // byte-identical, with the router never on the request path.
    assert!(fleet.kill(1), "node 1 must exist to be killed");
    for (i, f) in formulas().iter().enumerate() {
        let reply = client
            .verify(&request(f))
            .expect("post-death routed verify");
        assert_eq!(
            reply.outcome_text, first[i],
            "{f} verdict drifted across a death under client-side routing"
        );
        assert_ne!(reply.shard, 1, "the dead node must not answer");
    }
    fleet.shutdown();
}

/// The membership plane detects a *real* death on its own: a silent
/// SIGKILL (the router is not told) must be noticed by heartbeat,
/// confirmed, and executed — epoch bump, member off the ring.
#[test]
fn heartbeat_detects_a_silent_sigkill() {
    let bin = std::path::Path::new(env!("CARGO_BIN_EXE_wave-fleet"));
    let mut fleet = ProcessFleet::spawn(
        bin,
        3,
        FleetOptions {
            ship_interval: Duration::from_millis(25),
            heartbeat: Some(HeartbeatOptions {
                interval: Duration::from_millis(25),
                k_missed: 3,
                probe_timeout: Duration::from_millis(250),
                seed: 0xDEAD,
            }),
            ..FleetOptions::default()
        },
    )
    .expect("spawn process fleet");

    for f in formulas().iter().take(4) {
        fleet.router().submit(&request(f)).expect("verify");
    }
    std::thread::sleep(Duration::from_millis(200));

    let epoch_before = fleet.router().epoch();
    assert!(fleet.kill_silent(2), "node 2 must exist to be killed");
    let deadline = Instant::now() + Duration::from_secs(30);
    while fleet.router().epoch() == epoch_before {
        assert!(
            Instant::now() < deadline,
            "heartbeat never detected the silent kill"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        fleet.router().nodes().len(),
        2,
        "the corpse is off the ring"
    );
    assert!(
        fleet.router().nodes().iter().all(|n| n.id != 2),
        "node 2 must be the one removed"
    );
    // The fleet still answers everything, byte-stable, after the
    // autonomous death.
    for f in formulas().iter().take(4) {
        let reply = fleet
            .router()
            .submit(&request(f))
            .expect("post-detection verify");
        assert_ne!(reply.shard, 2);
    }
    fleet.shutdown();
}

/// `health` and `members` round-trip over live TCP against real node
/// processes: cheap liveness plus the epoch-tagged view any member can
/// serve to bootstrapping clients.
#[test]
fn health_and_members_round_trip_over_live_tcp() {
    let fleet = LocalFleet::launch(3, FleetOptions::default()).expect("launch");
    let view = fleet.router().member_view();
    assert_eq!(view.members.len(), 3);
    for node in fleet.router().nodes() {
        let mut c = TcpClient::connect_timeout(node.addr, Duration::from_secs(5)).expect("connect");
        let health = c.health().expect("health");
        assert_eq!(health.shard, node.id);
        assert_eq!(health.epoch, view.epoch, "launch must push the view");
        let served = c.members().expect("members");
        assert_eq!(served.epoch, view.epoch);
        assert_eq!(
            served.members.iter().map(|m| m.id).collect::<Vec<_>>(),
            view.members.iter().map(|m| m.id).collect::<Vec<_>>(),
        );
    }
}

#[test]
fn soft_partition_chaos_never_changes_a_verdict() {
    // Dropped and delayed forwards/ships at the fleet hooks: requests
    // may fail over to non-owners (extra cold runs are allowed), but
    // every answer must still be the correct, byte-identical verdict.
    let plane = Arc::new(ChaosPlane::new(Plan::Partition, 0xF1EE7));
    let fleet = LocalFleet::launch(
        3,
        FleetOptions {
            fleet_faults: Faults::new(plane.clone()),
            ship_interval: Duration::from_millis(25),
            ..FleetOptions::default()
        },
    )
    .expect("launch");

    let mut first: Vec<String> = Vec::new();
    for round in 0..3 {
        for (i, f) in formulas().iter().enumerate() {
            let reply = fleet
                .router()
                .submit(&request(f))
                .expect("partitioned verify must still answer");
            if round == 0 {
                first.push(reply.outcome_text.clone());
            } else {
                assert_eq!(
                    reply.outcome_text, first[i],
                    "{f} verdict drifted under partition chaos"
                );
            }
        }
    }
    assert!(
        plane.decisions() > 0,
        "the partition plan must actually be consulted at the fleet hooks"
    );
    assert_eq!(
        fleet.router().epoch(),
        0,
        "soft partitions must not be escalated to node deaths"
    );
}
