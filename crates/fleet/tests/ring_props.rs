//! Ring placement properties: the load balance and minimal-remap
//! guarantees the fleet's cache locality rests on.
//!
//! Sampling is seeded, so these are exact, reproducible checks — the
//! final test pins hard counts for one fixed seed to catch any silent
//! change to the placement function (which would re-shuffle every
//! deployed fleet's cache placement and must be a deliberate,
//! domain-tag-bumping decision).

use wave_fleet::ring::Ring;
use wave_rng::{Rng, SplitMix64};

/// `k` seeded fingerprints spanning the full u128 space.
fn sample_fps(seed: u64, k: usize) -> Vec<u128> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..k)
        .map(|_| ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128)
        .collect()
}

fn shares(ring: &Ring, fps: &[u128]) -> Vec<(u32, usize)> {
    let mut counts: Vec<(u32, usize)> = ring.nodes().iter().map(|n| (*n, 0)).collect();
    for fp in fps {
        let owner = ring.owner(*fp);
        counts
            .iter_mut()
            .find(|(n, _)| *n == owner)
            .expect("owner must be a member")
            .1 += 1;
    }
    counts
}

#[test]
fn per_node_share_stays_within_15_percent_of_uniform() {
    let fps = sample_fps(0xA11CE, 20_000);
    for n in 2..=16u32 {
        let ring = Ring::new(0..n);
        let fair = fps.len() as f64 / n as f64;
        for (node, count) in shares(&ring, &fps) {
            let dev = (count as f64 - fair).abs() / fair;
            assert!(
                dev <= 0.15,
                "{n} nodes: node {node} owns {count} of {} ({:.1}% from uniform {fair:.0})",
                fps.len(),
                dev * 100.0
            );
        }
    }
}

#[test]
fn adding_one_node_steals_at_most_its_fair_share_and_only_for_itself() {
    let fps = sample_fps(0xB0B, 10_000);
    for n in 2..=16u32 {
        let before = Ring::new(0..n);
        let mut after = before.clone();
        after.add_node(n);
        let mut moved = 0usize;
        for fp in &fps {
            let (old, new) = (before.owner(*fp), after.owner(*fp));
            if old != new {
                moved += 1;
                // Consistent hashing's defining property: a new node
                // only steals keys *for itself* — no third-party churn.
                assert_eq!(new, n, "fp moved {old}→{new}, not to the new node {n}");
            }
        }
        let fair = fps.len() / (n as usize + 1);
        // The new node's share is ~K/(n+1) with vnode variance; allow
        // the same 15% band the distribution test allows, plus slack
        // for small shares at large n.
        let bound = fair + fair / 4 + 64;
        assert!(
            moved <= bound,
            "{n}→{} nodes moved {moved} of {} fingerprints (bound {bound})",
            n + 1,
            fps.len()
        );
        assert!(moved > 0, "a new node must take some share");
    }
}

#[test]
fn removing_one_node_reassigns_only_that_node_s_keys() {
    let fps = sample_fps(0xDEAD, 10_000);
    for n in 3..=16u32 {
        let before = Ring::new(0..n);
        let mut after = before.clone();
        after.remove_node(n - 1);
        for fp in &fps {
            let (old, new) = (before.owner(*fp), after.owner(*fp));
            if old == n - 1 {
                assert_ne!(new, n - 1, "dead node still owns a fingerprint");
            } else {
                // Keys not owned by the dead node must not move at all:
                // this is what keeps the survivors' caches warm.
                assert_eq!(old, new, "survivor-owned fp churned on unrelated death");
            }
        }
    }
}

/// Hard-pinned counts for one seed: any diff here means the placement
/// function changed and every deployed ring would re-shuffle. Bump
/// `RING_DOMAIN` if that is intended.
#[test]
fn placement_is_pinned_for_a_fixed_seed() {
    let fps = sample_fps(0xFEED, 4_096);
    let three = Ring::new(0..3);
    assert_eq!(shares(&three, &fps), vec![(0, 1338), (1, 1382), (2, 1376)]);

    let mut four = three.clone();
    four.add_node(3);
    let moved = fps
        .iter()
        .filter(|fp| three.owner(**fp) != four.owner(**fp))
        .count();
    assert_eq!(
        moved, 947,
        "K/n for K=4096, n=4 is 1024; vnode variance pins 947"
    );
    assert_eq!(
        shares(&four, &fps),
        vec![(0, 1072), (1, 964), (2, 1113), (3, 947)]
    );
}
