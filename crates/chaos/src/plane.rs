//! The seeded fault plane: a [`FaultInjector`] over a [`Plan`].
//!
//! One plane = one `(plan, seed)` pair = one reproducible storm. Every
//! decision draws from a single SplitMix64 stream behind a mutex;
//! per-hook injection counters record what actually fired, so a
//! campaign can report "N faults injected" instead of hoping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wave_rng::SplitMix64;
use wave_serve::{Fault, FaultInjector, Hook};

use crate::plan::Plan;

/// A deterministic fault injector: rolls the plan's probabilities
/// against a seeded stream.
pub struct ChaosPlane {
    plan: Plan,
    rng: Mutex<SplitMix64>,
    injected: [AtomicU64; Hook::ALL.len()],
    decisions: AtomicU64,
}

impl ChaosPlane {
    /// A plane for `plan` drawing from `seed`'s stream.
    pub fn new(plan: Plan, seed: u64) -> ChaosPlane {
        ChaosPlane {
            plan,
            rng: Mutex::new(SplitMix64::seed_from_u64(seed)),
            injected: Default::default(),
            decisions: AtomicU64::new(0),
        }
    }

    /// The plan this plane rolls.
    pub fn plan(&self) -> Plan {
        self.plan
    }

    /// Faults injected at `hook` so far.
    pub fn injected_at(&self, hook: Hook) -> u64 {
        self.injected[hook.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all hooks.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total decisions consulted (faulting or not) — a liveness check
    /// that the hooks are actually wired.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }
}

impl FaultInjector for ChaosPlane {
    fn decide(&self, hook: Hook, len: usize) -> Fault {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let fault = {
            let mut rng = self.rng.lock().expect("chaos rng poisoned");
            self.plan.sample(hook, len, &mut *rng)
        };
        if fault != Fault::None {
            self.injected[hook.index()].fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a plane's full decision sequence single-threaded.
    fn sequence(plan: Plan, seed: u64, n: usize) -> Vec<Fault> {
        let plane = ChaosPlane::new(plan, seed);
        (0..n)
            .map(|i| plane.decide(Hook::ALL[i % Hook::ALL.len()], 100))
            .collect()
    }

    #[test]
    fn same_seed_same_storm() {
        let a = sequence(Plan::TornCache, 42, 500);
        let b = sequence(Plan::TornCache, 42, 500);
        assert_eq!(a, b, "a (plan, seed) pair must replay identically");
        let c = sequence(Plan::TornCache, 43, 500);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn counters_track_injections() {
        let plane = ChaosPlane::new(Plan::PanicStorm, 7);
        let mut fired = 0;
        for _ in 0..300 {
            if plane.decide(Hook::WorkerRun, 0) != Fault::None {
                fired += 1;
            }
            // A hook the plan ignores never counts.
            assert_eq!(plane.decide(Hook::JournalAppend, 64), Fault::None);
        }
        assert_eq!(plane.injected_at(Hook::WorkerRun), fired);
        assert_eq!(plane.injected_at(Hook::JournalAppend), 0);
        assert_eq!(plane.injected_total(), fired);
        assert_eq!(plane.decisions(), 600);
        assert!(fired > 0, "panic-storm must fire within 300 draws");
    }
}
