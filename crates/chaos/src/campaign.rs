//! The campaign driver: replay generated workloads under fault plans
//! and check the chaos invariant on every run.
//!
//! One **run** is one `(seed, plan)` pair. The driver:
//!
//! 1. generates the seed's verification case with `wave_qa::gen` (the
//!    same lint-clean, decidable-by-construction generator the
//!    differential oracle uses);
//! 2. computes the **reference**: the verdict and fingerprint from a
//!    clean engine (no faults, single worker, single thread — the
//!    verdict bytes are deterministic);
//! 3. replays the same request through an engine wired to a
//!    [`ChaosPlane`] for the plan (journal persistence enabled, so the
//!    storage hooks are live), retrying a few times the way a real
//!    client would (submits are idempotent by fingerprint);
//! 4. classifies the result — a **match** (verdict and fingerprint
//!    identical to the reference), a **typed non-answer** (`cancelled` /
//!    `poisoned`), a **typed failure** (`QueueFull`, `Internal`,
//!    `Overloaded`, …), or an **invariant violation** (anything else:
//!    wrong verdict, wrong fingerprint, corrupted replay);
//! 5. reloads the surviving journal into a clean engine and replays the
//!    request once more: a cache hit must reproduce the reference
//!    verdict byte-for-byte — damage may *lose* entries, never alter
//!    them.
//!
//! Under the control plan [`Plan::None`] the invariant tightens to
//! equality: no faults ⇒ the first attempt must match the reference
//! exactly. That is the "faults disabled ⇒ byte-identical" check.
//!
//! A **wire sweep** (once per plan) drives a real TCP server wired to
//! the same plane through [`wave_serve::client::TcpClient::verify_with_retry`],
//! bounding every call with a read timeout and a wall-clock watchdog:
//! a rough network may fail a call with a typed error, but a hung
//! client is an invariant violation.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wave_serve::client::{ClientError, RetryPolicy, TcpClient};
use wave_serve::codec::{outcome_from_json, Mode, VerifyRequest};
use wave_serve::engine::{Engine, EngineOptions};
use wave_serve::server::Server;
use wave_serve::{Faults, Json};
use wave_verifier::symbolic::Verdict;

use crate::plan::Plan;
use crate::plane::ChaosPlane;

/// Campaign shape.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Seeds per plan.
    pub seeds: u64,
    /// First seed (campaigns are resumable by range).
    pub start: u64,
    /// Plans to run. The control plan `none` may be included to assert
    /// byte-identity with faults disabled.
    pub plans: Vec<Plan>,
    /// Wall-clock budget; the campaign stops early (and says so) when
    /// it runs out.
    pub budget: Option<Duration>,
    /// Also run the TCP wire sweep once per plan.
    pub wire: bool,
    /// Node budget per verification (keeps generated cases cheap).
    pub node_limit: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seeds: 25,
            start: 0,
            plans: {
                let mut plans = vec![Plan::None];
                plans.extend(Plan::CANONICAL);
                plans
            },
            budget: None,
            wire: true,
            node_limit: 20_000,
        }
    }
}

/// What a campaign saw.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Completed `(seed, plan)` engine runs.
    pub runs: u64,
    /// Runs whose verdict and fingerprint matched the reference.
    pub matches: u64,
    /// Runs answered with a typed non-answer (`cancelled`/`poisoned`).
    pub non_answers: u64,
    /// Runs that ended in a typed failure after all retries.
    pub typed_failures: u64,
    /// Journal-replay probes that came back as byte-identical hits.
    pub replay_hits: u64,
    /// Seeds skipped because the generated spec did not build.
    pub skipped: u64,
    /// Wire-sweep calls completed.
    pub wire_calls: u64,
    /// Faults actually injected across all planes.
    pub injected: u64,
    /// Invariant violations — must be empty for the campaign to pass.
    pub violations: Vec<String>,
    /// True when the budget expired before the full matrix ran.
    pub truncated: bool,
}

impl CampaignReport {
    /// Did the campaign uphold the chaos invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as one JSON object (CI consumes this).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("runs".into(), Json::Int(self.runs as i64)),
            ("matches".into(), Json::Int(self.matches as i64)),
            ("non_answers".into(), Json::Int(self.non_answers as i64)),
            (
                "typed_failures".into(),
                Json::Int(self.typed_failures as i64),
            ),
            ("replay_hits".into(), Json::Int(self.replay_hits as i64)),
            ("skipped".into(), Json::Int(self.skipped as i64)),
            ("wire_calls".into(), Json::Int(self.wire_calls as i64)),
            ("injected".into(), Json::Int(self.injected as i64)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(Json::str).collect()),
            ),
            ("truncated".into(), Json::Bool(self.truncated)),
        ])
    }
}

/// The reference answer for one seed.
struct Reference {
    verdict_bytes: String,
    fingerprint: String,
    verdict: Verdict,
}

/// Extracts the canonical verdict encoding from outcome bytes. Search
/// stats carry wall times and are excluded: "byte-identical" is a claim
/// about the *answer*, not about the clock.
fn verdict_of(outcome_bytes: &[u8]) -> Result<(Verdict, String), String> {
    let text = std::str::from_utf8(outcome_bytes).map_err(|e| e.to_string())?;
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    let outcome = outcome_from_json(&json).map_err(|e| e.to_string())?;
    let verdict_json = json.get("verdict").ok_or("missing verdict")?.encode();
    Ok((outcome.verdict, verdict_json))
}

fn chaos_request(property: &str, node_limit: usize) -> VerifyRequest {
    VerifyRequest {
        service: "inline".into(),
        property: property.into(),
        mode: Mode::Ltl,
        node_limit,
        // Single-threaded search keeps `explored` deterministic, so
        // verdict bytes compare exactly.
        threads: 1,
        // A generous real deadline, so the overload plan's skew hook has
        // something to crush.
        deadline_us: 5_000_000,
        check_owner: false,
    }
}

/// Computes the reference for `seed`, or `None` when the generated spec
/// does not build (counted as skipped).
fn reference_for(seed: u64, node_limit: usize) -> Option<Reference> {
    let case = wave_qa::gen::generate(seed);
    let (service, sources) = case.spec.build().ok()?;
    let engine = Engine::new(EngineOptions {
        workers: 1,
        ..EngineOptions::default()
    });
    let req = chaos_request(&case.spec.property, node_limit);
    let res = engine.submit_service(service, sources, &req).ok()?;
    let (verdict, verdict_bytes) = verdict_of(&res.outcome_bytes).ok()?;
    Some(Reference {
        verdict_bytes,
        fingerprint: res.fingerprint.to_hex(),
        verdict,
    })
}

/// One engine-lane chaos run; pushes violations, returns counter deltas
/// via the report.
#[allow(clippy::too_many_lines)]
fn engine_run(
    seed: u64,
    plan: Plan,
    reference: &Reference,
    opts: &CampaignOptions,
    report: &mut CampaignReport,
) {
    let case = wave_qa::gen::generate(seed);
    let journal: PathBuf = std::env::temp_dir().join(format!(
        "wave-chaos-{}-{}-{}.ndjson",
        std::process::id(),
        seed,
        plan.name()
    ));
    let _ = std::fs::remove_file(&journal);
    let plane = Arc::new(ChaosPlane::new(
        plan,
        seed.wrapping_mul(0x9E37_79B9)
            .wrapping_add(plan.name().len() as u64),
    ));
    let engine = Engine::new(EngineOptions {
        workers: 1,
        queue_capacity: 4,
        persist: Some(journal.clone()),
        faults: Faults::new(Arc::clone(&plane) as Arc<dyn wave_serve::FaultInjector>),
        ..EngineOptions::default()
    });
    let req = chaos_request(&case.spec.property, opts.node_limit);

    let mut classified = false;
    let mut last_error = String::new();
    for _attempt in 0..3 {
        let Ok((service, sources)) = case.spec.build() else {
            report.skipped += 1;
            return;
        };
        match engine.submit_service(service, sources, &req) {
            Ok(res) => {
                match verdict_of(&res.outcome_bytes) {
                    Err(e) => report.violations.push(format!(
                        "seed {seed} plan {}: undecodable outcome bytes: {e}",
                        plan.name()
                    )),
                    Ok((Verdict::Cancelled | Verdict::Poisoned, _)) if plan != Plan::None => {
                        report.non_answers += 1;
                    }
                    Ok((_, verdict_bytes)) => {
                        let fp = res.fingerprint.to_hex();
                        if verdict_bytes == reference.verdict_bytes && fp == reference.fingerprint {
                            report.matches += 1;
                        } else {
                            report.violations.push(format!(
                                "seed {seed} plan {}: WRONG VERDICT: got {verdict_bytes} fp {fp}, \
                                 reference {} fp {} ({:?})",
                                plan.name(),
                                reference.verdict_bytes,
                                reference.fingerprint,
                                reference.verdict,
                            ));
                        }
                    }
                }
                classified = true;
                break;
            }
            Err(e) => {
                // Every submit error is a *typed* failure by
                // construction; under the control plan even those are
                // violations — nothing may fail without faults.
                last_error = e.to_string();
                if plan == Plan::None {
                    report.violations.push(format!(
                        "seed {seed} plan none: typed failure without faults: {last_error}"
                    ));
                    classified = true;
                    break;
                }
            }
        }
    }
    if !classified {
        report.typed_failures += 1;
        let _ = last_error;
    }
    report.runs += 1;
    report.injected += plane.injected_total();
    drop(engine);

    // Replay probe: whatever survived in the journal must reproduce the
    // reference verdict on a hit. Damage may lose the entry (miss — the
    // probe then re-verifies cold, which must also match), never alter
    // it.
    if let Ok((service, sources)) = case.spec.build() {
        let clean = Engine::new(EngineOptions {
            workers: 1,
            persist: Some(journal.clone()),
            ..EngineOptions::default()
        });
        if let Ok(res) = clean.submit_service(service, sources, &req) {
            if let Ok((verdict, verdict_bytes)) = verdict_of(&res.outcome_bytes) {
                let is_non_answer = matches!(verdict, Verdict::Cancelled | Verdict::Poisoned);
                if !is_non_answer {
                    if verdict_bytes == reference.verdict_bytes {
                        if res.cache_hit {
                            report.replay_hits += 1;
                        }
                    } else {
                        report.violations.push(format!(
                            "seed {seed} plan {}: CORRUPTED REPLAY (hit={}): got {verdict_bytes}, \
                             reference {}",
                            plan.name(),
                            res.cache_hit,
                            reference.verdict_bytes,
                        ));
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(journal.with_extension("ndjson.tmp"));
    // Sibling artifacts the engine persists next to the result journal:
    // the generation sidecar and the incremental-tier journals (each
    // with its own sidecar and compaction temp).
    let _ = std::fs::remove_file(wave_serve::cache::generation_path(&journal));
    for tier in ["verdicts", "buchi"] {
        let t = journal.with_extension(format!("{tier}.ndjson"));
        let _ = std::fs::remove_file(wave_serve::cache::generation_path(&t));
        let _ = std::fs::remove_file(t.with_extension("ndjson.tmp"));
        let _ = std::fs::remove_file(t);
    }
}

/// One wire sweep: a real TCP server wired to the plan's plane, driven
/// through the retrying client under a watchdog.
fn wire_sweep(plan: Plan, seed: u64, report: &mut CampaignReport) {
    // Reference verdict kinds from a clean engine, over the registry
    // services the sweep exercises.
    let requests = [
        ("toggle", "G (P | Q)"),
        ("toggle", "F Q"),
        ("login", "G (!CP | logged_in)"),
    ];
    let clean = Engine::new(EngineOptions::default());
    let mut references = Vec::new();
    for (service, property) in &requests {
        let req = VerifyRequest {
            service: (*service).into(),
            property: (*property).into(),
            mode: Mode::Ltl,
            node_limit: 0,
            threads: 1,
            deadline_us: 0,
            check_owner: false,
        };
        let res = clean.submit(&req).expect("registry reference must verify");
        let (_, verdict_bytes) = verdict_of(&res.outcome_bytes).expect("decodable");
        references.push((req, verdict_bytes));
    }

    let plane = Arc::new(ChaosPlane::new(plan, seed ^ 0x5743_4841_4f53));
    let engine = Arc::new(Engine::new(EngineOptions {
        faults: Faults::new(Arc::clone(&plane) as Arc<dyn wave_serve::FaultInjector>),
        ..EngineOptions::default()
    }));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let policy = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(200),
        budget: Duration::from_secs(3),
        seed,
    };
    let read_timeout = Duration::from_secs(2);
    // Generous watchdog: attempts × timeout plus the whole retry budget.
    let watchdog = Duration::from_secs(2 * 4 + 3 + 5);
    for round in 0..3u32 {
        for (req, ref_verdict) in &references {
            let started = Instant::now();
            let result = TcpClient::verify_with_retry(addr, read_timeout, req, &policy);
            let elapsed = started.elapsed();
            report.wire_calls += 1;
            if elapsed > watchdog {
                report.violations.push(format!(
                    "plan {} round {round}: CLIENT HANG: {:?} for {} / {}",
                    plan.name(),
                    elapsed,
                    req.service,
                    req.property
                ));
                continue;
            }
            match result {
                Ok(reply) => {
                    let verdict_bytes =
                        reply.outcome_text.parse_verdict_bytes().unwrap_or_default();
                    if &verdict_bytes != ref_verdict {
                        report.violations.push(format!(
                            "plan {} round {round}: WRONG WIRE VERDICT for {} / {}: got \
                             {verdict_bytes}, reference {ref_verdict}",
                            plan.name(),
                            req.service,
                            req.property
                        ));
                    } else {
                        report.matches += 1;
                    }
                }
                // Typed client-side failures are the allowed outcome of
                // a rough network.
                Err(
                    ClientError::Io(_)
                    | ClientError::Timeout
                    | ClientError::Protocol(_)
                    | ClientError::RetryAfter { .. }
                    | ClientError::Draining
                    | ClientError::Server(_),
                ) => {
                    if plan == Plan::None {
                        report.violations.push(format!(
                            "plan none round {round}: wire failure without faults for {} / {}",
                            req.service, req.property
                        ));
                    } else {
                        report.typed_failures += 1;
                    }
                }
                // The sweep never sets check_owner, so a wrong_shard
                // refusal here is a protocol violation, not weather.
                Err(e @ ClientError::WrongShard { .. }) => {
                    report.violations.push(format!(
                        "plan {} round {round}: unchecked request refused: {e} for {} / {}",
                        plan.name(),
                        req.service,
                        req.property
                    ));
                }
            }
        }
    }
    report.injected += plane.injected_total();
}

/// Tiny helper: pull the canonical verdict object back out of an
/// outcome's text form.
trait VerdictBytes {
    fn parse_verdict_bytes(&self) -> Option<String>;
}

impl VerdictBytes for String {
    fn parse_verdict_bytes(&self) -> Option<String> {
        let json = Json::parse(self).ok()?;
        Some(json.get("verdict")?.encode())
    }
}

/// Runs a full campaign: `seeds × plans` engine runs plus one wire
/// sweep per plan, bounded by the budget.
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    let started = Instant::now();
    let mut report = CampaignReport::default();
    let out_of_budget = |started: Instant| opts.budget.is_some_and(|b| started.elapsed() >= b);

    'outer: for seed in opts.start..opts.start + opts.seeds {
        let Some(reference) = reference_for(seed, opts.node_limit) else {
            report.skipped += 1;
            continue;
        };
        // A reference that cannot answer (cancelled on a clean engine)
        // would make every comparison vacuous; skip the seed.
        if matches!(reference.verdict, Verdict::Cancelled | Verdict::Poisoned) {
            report.skipped += 1;
            continue;
        }
        for plan in &opts.plans {
            if out_of_budget(started) {
                report.truncated = true;
                break 'outer;
            }
            engine_run(seed, *plan, &reference, opts, &mut report);
        }
    }
    if opts.wire {
        for plan in &opts.plans {
            if out_of_budget(started) {
                report.truncated = true;
                break;
            }
            wire_sweep(*plan, opts.start, &mut report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-tree mini-campaign: a small seed range across the control
    /// plan and the two cheapest fault plans must uphold the invariant.
    /// CI runs the full matrix at 100 seeds in release mode.
    #[test]
    fn mini_campaign_upholds_the_invariant() {
        let opts = CampaignOptions {
            seeds: 3,
            start: 0,
            plans: vec![Plan::None, Plan::TornCache, Plan::PanicStorm],
            budget: None,
            wire: false,
            node_limit: 20_000,
        };
        let report = run_campaign(&opts);
        assert!(
            report.ok(),
            "violations: {:#?}\nreport: {}",
            report.violations,
            report.to_json().encode()
        );
        assert_eq!(report.runs, 9);
        assert!(report.matches >= 3, "control plan must match: {report:?}");
    }

    #[test]
    fn wire_sweep_with_control_plan_is_clean() {
        let mut report = CampaignReport::default();
        wire_sweep(Plan::None, 1, &mut report);
        assert!(report.ok(), "violations: {:#?}", report.violations);
        assert_eq!(report.wire_calls, 9);
        assert_eq!(report.matches, 9);
        assert_eq!(report.injected, 0);
    }
}
