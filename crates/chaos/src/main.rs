//! The `wave-chaos` binary: run a fault-injection campaign against the
//! verification service and exit nonzero on any invariant violation.
//!
//! ```text
//! wave-chaos [--seeds N] [--start N] [--plans a,b,c] [--budget SECS]
//!            [--node-limit N] [--no-wire] [--json]
//! ```
//!
//! Default plans: the control plan `none` plus the four canonical fault
//! plans (`torn-cache`, `rough-net`, `panic-storm`, `overload`).

use std::process::ExitCode;
use std::time::Duration;

use wave_chaos::campaign::{run_campaign, CampaignOptions};
use wave_chaos::plan;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: wave-chaos [--seeds N] [--start N] [--plans a,b,c] [--budget SECS]\n\
             \x20                 [--node-limit N] [--no-wire] [--json]\n\
             plans: none torn-cache rough-net panic-storm overload"
        );
        return ExitCode::from(2);
    }
    // Injected worker panics are contained by the scheduler's
    // catch_unwind and classified by the campaign; without this hook
    // every one of them would spray a backtrace into the log. Anything
    // else panicking is a real bug and keeps the default report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.starts_with("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos:"));
        if !injected {
            default_hook(info);
        }
    }));
    match run(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let defaults = CampaignOptions::default();
    let opts = CampaignOptions {
        seeds: flag_num(args, "--seeds", defaults.seeds)?,
        start: flag_num(args, "--start", defaults.start)?,
        plans: match flag(args, "--plans") {
            None => defaults.plans,
            Some(list) => plan::parse_list(list)?,
        },
        budget: match flag_num(args, "--budget", 0u64)? {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        },
        wire: !args.iter().any(|a| a == "--no-wire"),
        node_limit: flag_num(args, "--node-limit", defaults.node_limit)?,
    };
    let json = args.iter().any(|a| a == "--json");

    let report = run_campaign(&opts);
    if json {
        println!("{}", report.to_json().encode());
    } else {
        println!(
            "chaos campaign: {} runs ({} matches, {} non-answers, {} typed failures), \
             {} wire calls, {} replay hits, {} faults injected, {} skipped{}",
            report.runs,
            report.matches,
            report.non_answers,
            report.typed_failures,
            report.wire_calls,
            report.replay_hits,
            report.injected,
            report.skipped,
            if report.truncated {
                " [truncated by budget]"
            } else {
                ""
            },
        );
        for v in &report.violations {
            println!("VIOLATION: {v}");
        }
        if report.ok() {
            println!("invariant upheld: no wrong verdicts, no corrupted replays, no hangs");
        }
    }
    Ok(report.ok())
}
