//! # wave-chaos
//!
//! Deterministic fault injection for the `wave-serve` verification
//! service, and the campaign driver that turns it into a regression
//! gate.
//!
//! The service threads named **hook points** through its hot paths
//! (`wave_serve::faults`): the cache journal's append and compaction,
//! the worker run, the queue door, the network read/write, the deadline
//! clock. This crate supplies the other half:
//!
//! * [`plane`] — [`plane::ChaosPlane`], a seeded
//!   [`wave_serve::FaultInjector`] that rolls a SplitMix64 stream
//!   against a plan's per-hook probabilities, so a campaign run is
//!   reproducible from `(seed, plan)`;
//! * [`plan`] — the named fault plans (`torn-cache`, `rough-net`,
//!   `panic-storm`, `overload`, and the control plan `none`);
//! * [`campaign`] — the driver: replay `wave-qa`-generated verification
//!   cases through a faulted engine and a faulted TCP server, and check
//!   the **chaos invariant** on every run:
//!
//!   > A fault may cause a clean, typed failure. It must never cause a
//!   > wrong verdict, never a corrupted cache replay, and never a hung
//!   > client.
//!
//! The `wave-chaos` binary (`--seeds N --plans a,b,c --budget SECS
//! --json`) runs a campaign and exits nonzero on any invariant
//! violation — it is wired into CI as the `chaos` job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod plan;
pub mod plane;

pub use campaign::{run_campaign, CampaignOptions, CampaignReport};
pub use plan::Plan;
pub use plane::ChaosPlane;
