//! Named fault plans: which hooks fire, how often, with what faults.
//!
//! A plan is deliberately a small closed enum rather than a config
//! format: each plan is a *scenario* with a name that appears in CI
//! logs and EXPERIMENTS.md, and the set must stay reviewable. The
//! per-hook sampling lives in [`Plan::sample`]; probabilities are
//! expressed per decision, so a plan composes with any workload.

use std::time::Duration;

use wave_rng::Rng;
use wave_serve::{Fault, Hook};

/// A named fault scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Control plan: no faults, ever. A campaign run under `none` must
    /// match the reference run exactly — this is the "faults disabled ⇒
    /// byte-identical" check.
    None,
    /// Storage chaos: torn, dropped and bit-flipped cache journal
    /// appends, plus compactions killed mid-rewrite.
    TornCache,
    /// Network chaos: delayed and dropped reads, delayed, dropped and
    /// torn writes.
    RoughNet,
    /// Worker chaos: jobs panic mid-run (with a sprinkle of stalls), so
    /// containment, typed `Internal` failures and quarantine all fire.
    PanicStorm,
    /// Capacity chaos: forced queue-full bursts, skewed deadlines and
    /// slowed workers, so shedding, retry-after and cancellation fire.
    Overload,
    /// Fleet chaos: forwards between router and nodes, and journal
    /// shipments between nodes, are dropped or delayed — a soft
    /// partition. The fleet must answer through failover and retry, and
    /// replication must converge once the partition heals.
    Partition,
    /// Membership chaos: heartbeat probes are dropped, delayed or
    /// corrupted while the flap driver kills and re-joins nodes
    /// repeatedly. The mesh must never execute a healthy node for a
    /// lossy probe path (confirm-before-kill), never lose a journaled
    /// verdict across a re-join, and never change a verdict.
    Flapping,
}

impl Plan {
    /// The four fault-bearing plans CI runs (the control plan `none` is
    /// not in the set — it is a determinism check, not a fault load).
    pub const CANONICAL: [Plan; 4] = [
        Plan::TornCache,
        Plan::RoughNet,
        Plan::PanicStorm,
        Plan::Overload,
    ];

    /// The plan's wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Plan::None => "none",
            Plan::TornCache => "torn-cache",
            Plan::RoughNet => "rough-net",
            Plan::PanicStorm => "panic-storm",
            Plan::Overload => "overload",
            Plan::Partition => "partition",
            Plan::Flapping => "flapping",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Plan> {
        match s {
            "none" => Some(Plan::None),
            "torn-cache" => Some(Plan::TornCache),
            "rough-net" => Some(Plan::RoughNet),
            "panic-storm" => Some(Plan::PanicStorm),
            "overload" => Some(Plan::Overload),
            "partition" => Some(Plan::Partition),
            "flapping" => Some(Plan::Flapping),
            _ => None,
        }
    }

    /// Samples the fault for one decision at `hook`, where `len` is the
    /// hook's payload size in bytes (journal line, wire line; `0` where
    /// meaningless). Probabilities are tuned so a campaign both
    /// exercises the recovery paths *and* completes runs.
    pub fn sample<R: Rng>(self, hook: Hook, len: usize, rng: &mut R) -> Fault {
        match (self, hook) {
            (Plan::None, _) => Fault::None,

            (Plan::TornCache, Hook::JournalAppend) => {
                if !rng.gen_bool(0.35) {
                    return Fault::None;
                }
                match rng.gen_range(0u32..10) {
                    0..=4 => Fault::Torn {
                        keep: rng.gen_range(0..len.max(1)),
                    },
                    5..=7 => Fault::Corrupt {
                        offset: rng.gen_range(0..len.max(1)),
                        xor: rng.gen_range(1u32..256) as u8,
                    },
                    _ => Fault::Drop,
                }
            }
            (Plan::TornCache, Hook::JournalCompact) => {
                if !rng.gen_bool(0.4) {
                    return Fault::None;
                }
                match rng.gen_range(0u32..10) {
                    0..=5 => Fault::Torn {
                        keep: rng.gen_range(0..len.max(1)),
                    },
                    6..=7 => Fault::Corrupt {
                        offset: rng.gen_range(0..len.max(1)),
                        xor: rng.gen_range(1u32..256) as u8,
                    },
                    _ => Fault::Drop,
                }
            }

            (Plan::RoughNet, Hook::NetRead) => {
                if !rng.gen_bool(0.2) {
                    return Fault::None;
                }
                if rng.gen_bool(0.6) {
                    Fault::Delay(Duration::from_millis(rng.gen_range(5u64..60)))
                } else {
                    Fault::Drop
                }
            }
            (Plan::RoughNet, Hook::NetWrite) => {
                if !rng.gen_bool(0.25) {
                    return Fault::None;
                }
                match rng.gen_range(0u32..10) {
                    0..=3 => Fault::Delay(Duration::from_millis(rng.gen_range(5u64..60))),
                    4..=6 => Fault::Torn {
                        keep: rng.gen_range(0..len.max(1)),
                    },
                    _ => Fault::Drop,
                }
            }

            (Plan::PanicStorm, Hook::WorkerRun) => {
                if !rng.gen_bool(0.35) {
                    return Fault::None;
                }
                if rng.gen_bool(0.8) {
                    Fault::Panic
                } else {
                    Fault::Delay(Duration::from_millis(rng.gen_range(5u64..40)))
                }
            }

            (Plan::Overload, Hook::QueueSubmit) => {
                if rng.gen_bool(0.35) {
                    Fault::QueueFull
                } else {
                    Fault::None
                }
            }
            (Plan::Overload, Hook::DeadlineArm) => {
                if rng.gen_bool(0.3) {
                    Fault::SkewDeadline {
                        mul: 1,
                        div: rng.gen_range(2u32..2_000),
                    }
                } else {
                    Fault::None
                }
            }
            (Plan::Overload, Hook::WorkerRun) => {
                if rng.gen_bool(0.15) {
                    Fault::Delay(Duration::from_millis(rng.gen_range(5u64..30)))
                } else {
                    Fault::None
                }
            }

            (Plan::Partition, Hook::FleetForward) => {
                if !rng.gen_bool(0.2) {
                    return Fault::None;
                }
                if rng.gen_bool(0.5) {
                    Fault::Drop
                } else {
                    Fault::Delay(Duration::from_millis(rng.gen_range(5u64..50)))
                }
            }
            (Plan::Partition, Hook::FleetShip) => {
                if !rng.gen_bool(0.3) {
                    return Fault::None;
                }
                if rng.gen_bool(0.6) {
                    Fault::Drop
                } else {
                    Fault::Delay(Duration::from_millis(rng.gen_range(5u64..50)))
                }
            }

            (Plan::Flapping, Hook::FleetHealth) => {
                // A lossy probe plane only: beats vanish, dawdle or
                // arrive garbled, but the node behind them is fine —
                // the exact confusion confirm-before-kill must absorb.
                if !rng.gen_bool(0.3) {
                    return Fault::None;
                }
                match rng.gen_range(0u32..10) {
                    0..=4 => Fault::Drop,
                    5..=7 => Fault::Delay(Duration::from_millis(rng.gen_range(5u64..50))),
                    _ => Fault::Corrupt {
                        offset: rng.gen_range(0..len.max(1)),
                        xor: rng.gen_range(1u32..256) as u8,
                    },
                }
            }

            _ => Fault::None,
        }
    }
}

/// Parses a comma-separated plan list (e.g.
/// `torn-cache,rough-net,panic-storm,overload`).
pub fn parse_list(s: &str) -> Result<Vec<Plan>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| Plan::parse(p).ok_or_else(|| format!("unknown plan: {p}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_rng::SplitMix64;

    #[test]
    fn names_round_trip() {
        for p in [
            Plan::None,
            Plan::TornCache,
            Plan::RoughNet,
            Plan::PanicStorm,
            Plan::Overload,
            Plan::Partition,
            Plan::Flapping,
        ] {
            assert_eq!(Plan::parse(p.name()), Some(p));
        }
        assert_eq!(Plan::parse("nope"), None);
        assert_eq!(Plan::CANONICAL.len(), 4);
        assert!(!Plan::CANONICAL.contains(&Plan::None));
    }

    #[test]
    fn list_parsing() {
        assert_eq!(
            parse_list("torn-cache, rough-net").unwrap(),
            vec![Plan::TornCache, Plan::RoughNet]
        );
        assert!(parse_list("torn-cache,bogus").is_err());
    }

    #[test]
    fn control_plan_never_faults() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for hook in Hook::ALL {
            for _ in 0..100 {
                assert_eq!(Plan::None.sample(hook, 64, &mut rng), Fault::None);
            }
        }
    }

    #[test]
    fn plans_only_touch_their_hooks() {
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..200 {
            // Storage chaos never touches the network, and vice versa.
            assert_eq!(
                Plan::TornCache.sample(Hook::NetWrite, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::RoughNet.sample(Hook::JournalAppend, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::PanicStorm.sample(Hook::JournalCompact, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::Overload.sample(Hook::JournalAppend, 64, &mut rng),
                Fault::None
            );
            // Partition only disturbs the fleet hooks — and NOT the
            // heartbeat probes, which is what keeps the soft-partition
            // e2e drill's "epoch stays 0" assertion sound.
            assert_eq!(
                Plan::Partition.sample(Hook::WorkerRun, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::Partition.sample(Hook::JournalAppend, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::Partition.sample(Hook::FleetHealth, 64, &mut rng),
                Fault::None
            );
            // Flapping only disturbs the probe plane: the request path
            // and storage stay clean, so any lost verdict in the flap
            // campaign is the mesh's fault, not collateral noise.
            assert_eq!(
                Plan::Flapping.sample(Hook::FleetForward, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::Flapping.sample(Hook::FleetShip, 64, &mut rng),
                Fault::None
            );
            assert_eq!(
                Plan::Flapping.sample(Hook::JournalAppend, 64, &mut rng),
                Fault::None
            );
        }
    }

    #[test]
    fn flapping_plan_faults_only_the_probe_plane() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut hits = 0;
        for _ in 0..200 {
            match Plan::Flapping.sample(Hook::FleetHealth, 64, &mut rng) {
                Fault::None => {}
                Fault::Drop | Fault::Delay(_) | Fault::Corrupt { .. } => hits += 1,
                other => panic!("flapping must only drop/delay/corrupt probes, got {other:?}"),
            }
        }
        assert!((20..=120).contains(&hits), "{hits} faults in 200 draws");
    }

    #[test]
    fn partition_plan_faults_only_with_drops_and_delays() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let mut hits = 0;
        for _ in 0..200 {
            for hook in [Hook::FleetForward, Hook::FleetShip] {
                match Plan::Partition.sample(hook, 64, &mut rng) {
                    Fault::None => {}
                    Fault::Drop | Fault::Delay(_) => hits += 1,
                    other => panic!("partition must only drop or delay, got {other:?}"),
                }
            }
        }
        assert!(hits > 20, "{hits} faults in 400 draws");
    }

    #[test]
    fn faulting_plans_actually_fault() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut hits = 0;
        for _ in 0..200 {
            if Plan::TornCache.sample(Hook::JournalAppend, 120, &mut rng) != Fault::None {
                hits += 1;
            }
        }
        // ~35% of 200; anything in a broad band proves the plan is live.
        assert!((20..=140).contains(&hits), "{hits} faults in 200 draws");
    }
}
