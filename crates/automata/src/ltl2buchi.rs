//! LTL → Büchi translation (Gerth–Peled–Vardi–Wolper tableau).
//!
//! Translates a [`Pnf`] formula into a [`Buchi`] automaton accepting
//! exactly the infinite words satisfying it. The construction is the
//! classical on-the-fly tableau: nodes carry `New/Old/Next` obligation
//! sets; `U` and `R` unfold by their fixpoint expansions; acceptance sets
//! (one per `U` subformula) are degeneralized with a counter.
//!
//! This is the propositional engine behind the paper's Theorem 3.5: the
//! symbolic verifier abstracts FO components to propositions, negates the
//! property and searches the product of the Web service's symbolic
//! configuration graph with this automaton for an accepting lasso.

use std::collections::{BTreeMap, BTreeSet};

use crate::buchi::{Buchi, Guard};
use crate::pltl::Pnf;

type FId = usize;
type NodeId = usize;

const INIT_MARK: NodeId = usize::MAX;

struct Interner {
    by_formula: BTreeMap<Pnf, FId>,
    formulas: Vec<Pnf>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            by_formula: BTreeMap::new(),
            formulas: Vec::new(),
        }
    }

    fn intern(&mut self, f: &Pnf) -> FId {
        if let Some(id) = self.by_formula.get(f) {
            return *id;
        }
        let id = self.formulas.len();
        self.by_formula.insert(f.clone(), id);
        self.formulas.push(f.clone());
        id
    }

    fn get(&self, id: FId) -> &Pnf {
        &self.formulas[id]
    }
}

#[derive(Clone, PartialEq, Eq)]
struct ProtoNode {
    incoming: BTreeSet<NodeId>,
    new: BTreeSet<FId>,
    old: BTreeSet<FId>,
    next: BTreeSet<FId>,
}

struct Builder {
    interner: Interner,
    /// finished nodes: (old, next) -> id
    by_content: BTreeMap<(BTreeSet<FId>, BTreeSet<FId>), NodeId>,
    nodes: Vec<(BTreeSet<FId>, BTreeSet<FId>, BTreeSet<NodeId>)>, // old, next, incoming
}

impl Builder {
    fn expand(&mut self, mut node: ProtoNode) {
        let Some(&eta) = node.new.iter().next() else {
            // New is empty: close the node.
            let key = (node.old.clone(), node.next.clone());
            if let Some(&existing) = self.by_content.get(&key) {
                let inc = node.incoming;
                self.nodes[existing].2.extend(inc);
                return;
            }
            let id = self.nodes.len();
            self.by_content.insert(key, id);
            self.nodes
                .push((node.old.clone(), node.next.clone(), node.incoming.clone()));
            // Successor proto-node carries Next as the new obligations.
            let succ = ProtoNode {
                incoming: BTreeSet::from([id]),
                new: node.next.clone(),
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            };
            self.expand(succ);
            return;
        };
        node.new.remove(&eta);
        if node.old.contains(&eta) {
            self.expand(node);
            return;
        }
        let formula = self.interner.get(eta).clone();
        match formula {
            Pnf::False => { /* contradiction: discard this node */ }
            Pnf::True => {
                // Recorded in Old so that acceptance checks (`rhs ∈ Old`)
                // see trivially fulfilled untils like `φ U true`.
                node.old.insert(eta);
                self.expand(node);
            }
            Pnf::Lit { prop, positive } => {
                let negid = self.interner.intern(&Pnf::Lit {
                    prop,
                    positive: !positive,
                });
                if node.old.contains(&negid) {
                    return; // contradictory literals: discard
                }
                node.old.insert(eta);
                self.expand(node);
            }
            Pnf::And(fs) => {
                node.old.insert(eta);
                for g in &fs {
                    let gid = self.interner.intern(g);
                    if !node.old.contains(&gid) {
                        node.new.insert(gid);
                    }
                }
                self.expand(node);
            }
            Pnf::Or(fs) => {
                node.old.insert(eta);
                for g in &fs {
                    let gid = self.intern(g);
                    let mut branch = node.clone();
                    if !branch.old.contains(&gid) {
                        branch.new.insert(gid);
                    }
                    self.expand(branch);
                }
            }
            Pnf::X(g) => {
                node.old.insert(eta);
                let gid = self.intern(&g);
                node.next.insert(gid);
                self.expand(node);
            }
            Pnf::U(a, b) => {
                node.old.insert(eta);
                let aid = self.intern(&a);
                let bid = self.intern(&b);
                // Branch 1: a holds now, U carries to next step.
                let mut n1 = node.clone();
                if !n1.old.contains(&aid) {
                    n1.new.insert(aid);
                }
                n1.next.insert(eta);
                self.expand(n1);
                // Branch 2: b holds now — fulfilled.
                let mut n2 = node;
                if !n2.old.contains(&bid) {
                    n2.new.insert(bid);
                }
                self.expand(n2);
            }
            Pnf::R(a, b) => {
                node.old.insert(eta);
                let aid = self.intern(&a);
                let bid = self.intern(&b);
                // Branch 1: b holds now, R carries.
                let mut n1 = node.clone();
                if !n1.old.contains(&bid) {
                    n1.new.insert(bid);
                }
                n1.next.insert(eta);
                self.expand(n1);
                // Branch 2: a & b hold now — released.
                let mut n2 = node;
                for id in [aid, bid] {
                    if !n2.old.contains(&id) {
                        n2.new.insert(id);
                    }
                }
                self.expand(n2);
            }
        }
    }

    fn intern(&mut self, f: &Pnf) -> FId {
        self.interner.intern(f)
    }
}

/// Translates an LTL formula (in positive normal form) into a Büchi
/// automaton over the same propositions.
pub fn translate(f: &Pnf) -> Buchi {
    let mut b = Builder {
        interner: Interner::new(),
        by_content: BTreeMap::new(),
        nodes: Vec::new(),
    };
    let root = b.intern(f);
    b.expand(ProtoNode {
        incoming: BTreeSet::from([INIT_MARK]),
        new: BTreeSet::from([root]),
        old: BTreeSet::new(),
        next: BTreeSet::new(),
    });

    let n = b.nodes.len();

    // Acceptance sets: one per U-subformula.
    let mut until_ids: Vec<(FId, FId)> = Vec::new(); // (u, rhs)
    let mut id = 0;
    while id < b.interner.formulas.len() {
        if let Pnf::U(_, rhs) = b.interner.formulas[id].clone() {
            let rhs_id = b.interner.intern(rhs.as_ref());
            until_ids.push((id, rhs_id));
        }
        id += 1;
    }
    let k = until_ids.len();

    // Guards from Old literals.
    let mut guards = Vec::with_capacity(n);
    for (old, _, _) in &b.nodes {
        let mut g = Guard::top();
        for &fid in old {
            if let Pnf::Lit { prop, positive } = b.interner.get(fid) {
                if *positive {
                    g.pos.insert(*prop);
                } else {
                    g.neg.insert(*prop);
                }
            }
        }
        guards.push(g);
    }

    // Edges: q -> r iff q ∈ incoming(r). Initial: INIT_MARK ∈ incoming(r).
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut initial = Vec::new();
    for (r, (_, _, incoming)) in b.nodes.iter().enumerate() {
        for &q in incoming {
            if q == INIT_MARK {
                initial.push(r);
            } else {
                succ[q].push(r);
            }
        }
    }

    // Generalized acceptance: F_m = { node : U_m ∉ old or rhs_m ∈ old }.
    let in_f = |node: usize, m: usize| -> bool {
        let (old, _, _) = &b.nodes[node];
        let (u, rhs) = until_ids[m];
        !old.contains(&u) || old.contains(&rhs)
    };

    if k == 0 {
        return Buchi {
            guard: guards,
            succ,
            initial,
            accepting: vec![true; n],
        };
    }

    // Degeneralize with a counter in 0..k: state (q, i); counter advances
    // when q ∈ F_{i+1}; accepting = { (q, 0) : q ∈ F_1 }.
    let idx = |q: usize, i: usize| q * k + i;
    let mut dguard = vec![Guard::top(); n * k];
    let mut dsucc: Vec<Vec<usize>> = vec![Vec::new(); n * k];
    let mut dacc = vec![false; n * k];
    for q in 0..n {
        for i in 0..k {
            dguard[idx(q, i)] = guards[q].clone();
            let ni = if in_f(q, i) { (i + 1) % k } else { i };
            for &r in &succ[q] {
                dsucc[idx(q, i)].push(idx(r, ni));
            }
            if i == 0 && in_f(q, 0) {
                dacc[idx(q, 0)] = true;
            }
        }
    }
    let dinit: Vec<usize> = initial.iter().map(|&q| idx(q, 0)).collect();
    Buchi {
        guard: dguard,
        succ: dsucc,
        initial: dinit,
        accepting: dacc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropSet;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    fn check(f: &Pnf, stem: &[PropSet], lasso: &[PropSet]) {
        let expected = f.eval_lasso(stem, lasso);
        let a = translate(f);
        let got = a.accepts_lasso(stem, lasso);
        assert_eq!(
            got, expected,
            "automaton disagrees with semantics for {f:?} on stem={stem:?} lasso={lasso:?}"
        );
    }

    #[test]
    fn atoms() {
        let f = Pnf::prop(0);
        check(&f, &[ps(&[0])], &[ps(&[])]);
        check(&f, &[ps(&[])], &[ps(&[0])]);
        check(&f, &[], &[ps(&[0])]);
    }

    #[test]
    fn eventually_always() {
        let fg = Pnf::eventually(Pnf::always(Pnf::prop(1)));
        check(&fg, &[ps(&[])], &[ps(&[1])]);
        check(&fg, &[ps(&[1])], &[ps(&[])]);
        check(&fg, &[], &[ps(&[1]), ps(&[])]);
        let gf = Pnf::always(Pnf::eventually(Pnf::prop(1)));
        check(&gf, &[], &[ps(&[1]), ps(&[])]);
        check(&gf, &[], &[ps(&[])]);
    }

    #[test]
    fn until_release() {
        let u = Pnf::until(Pnf::prop(0), Pnf::prop(1));
        check(&u, &[ps(&[0]), ps(&[0])], &[ps(&[1])]);
        check(&u, &[ps(&[0]), ps(&[])], &[ps(&[1])]);
        check(&u, &[], &[ps(&[0])]);
        let r = Pnf::release(Pnf::prop(0), Pnf::prop(1));
        check(&r, &[], &[ps(&[1])]);
        check(&r, &[ps(&[1]), ps(&[0, 1])], &[ps(&[])]);
        check(&r, &[ps(&[1]), ps(&[1])], &[ps(&[])]);
    }

    #[test]
    fn next_chains() {
        let f = Pnf::next(Pnf::next(Pnf::prop(2)));
        check(&f, &[ps(&[]), ps(&[])], &[ps(&[2])]);
        check(&f, &[ps(&[2]), ps(&[])], &[ps(&[])]);
    }

    #[test]
    fn boolean_combinations() {
        let f = Pnf::or([
            Pnf::and([Pnf::prop(0), Pnf::next(Pnf::prop(1))]),
            Pnf::always(Pnf::nprop(0)),
        ]);
        check(&f, &[ps(&[0])], &[ps(&[1])]);
        check(&f, &[ps(&[])], &[ps(&[])]);
        check(&f, &[ps(&[0])], &[ps(&[])]);
        check(&f, &[ps(&[1])], &[ps(&[0])]);
    }

    #[test]
    fn constants() {
        check(&Pnf::True, &[], &[ps(&[])]);
        check(&Pnf::False, &[], &[ps(&[])]);
        // automaton for false has empty language
        let a = translate(&Pnf::False);
        assert!(!a.accepts_lasso(&[], &[ps(&[0])]));
    }

    #[test]
    fn nested_until() {
        // (p0 U (p1 U p2))
        let f = Pnf::until(Pnf::prop(0), Pnf::until(Pnf::prop(1), Pnf::prop(2)));
        check(&f, &[ps(&[0]), ps(&[1]), ps(&[1])], &[ps(&[2])]);
        check(&f, &[ps(&[0]), ps(&[0])], &[ps(&[1])]);
        check(&f, &[], &[ps(&[2])]);
    }

    #[test]
    fn randomized_cross_validation() {
        // Deterministic LCG so the test is reproducible.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn gen(rnd: &mut impl FnMut() -> u32, depth: u32) -> Pnf {
            if depth == 0 {
                return match rnd() % 3 {
                    0 => Pnf::prop(rnd() % 3),
                    1 => Pnf::nprop(rnd() % 3),
                    _ => Pnf::True,
                };
            }
            match rnd() % 7 {
                0 => Pnf::and([gen(rnd, depth - 1), gen(rnd, depth - 1)]),
                1 => Pnf::or([gen(rnd, depth - 1), gen(rnd, depth - 1)]),
                2 => Pnf::next(gen(rnd, depth - 1)),
                3 => Pnf::until(gen(rnd, depth - 1), gen(rnd, depth - 1)),
                4 => Pnf::release(gen(rnd, depth - 1), gen(rnd, depth - 1)),
                5 => Pnf::eventually(gen(rnd, depth - 1)),
                _ => Pnf::always(gen(rnd, depth - 1)),
            }
        }
        for _ in 0..60 {
            let f = gen(&mut rnd, 3);
            let stem_len = (rnd() % 3) as usize;
            let lasso_len = 1 + (rnd() % 3) as usize;
            let mk = |rnd: &mut dyn FnMut() -> u32| {
                PropSet::from_ids((0..3).filter(|_| rnd().is_multiple_of(2)))
            };
            let stem: Vec<PropSet> = (0..stem_len).map(|_| mk(&mut rnd)).collect();
            let lasso: Vec<PropSet> = (0..lasso_len).map(|_| mk(&mut rnd)).collect();
            check(&f, &stem, &lasso);
        }
    }
}
