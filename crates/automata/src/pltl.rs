//! Propositional LTL in positive normal form, with reference semantics on
//! ultimately-periodic words.
//!
//! The symbolic LTL-FO verifier abstracts the maximal FO components of a
//! property into propositions and hands the resulting *propositional* LTL
//! formula to the GPVW translation ([`crate::ltl2buchi`]). Positive normal
//! form (negations on literals only, `R` dual to `U`) is the shape GPVW
//! wants.
//!
//! [`Pnf::eval_lasso`] gives an independent, fixpoint-based semantics on
//! lasso words `stem · loop^ω`; the test suite cross-validates the Büchi
//! translation against it on random formulas and words.

use std::collections::BTreeSet;
use std::fmt;

use crate::props::{PropId, PropSet};

/// An LTL formula in positive normal form.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pnf {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Literal: a proposition or its negation.
    Lit {
        /// Proposition id.
        prop: PropId,
        /// `false` for a negated literal.
        positive: bool,
    },
    /// Conjunction.
    And(Vec<Pnf>),
    /// Disjunction.
    Or(Vec<Pnf>),
    /// Next.
    X(Box<Pnf>),
    /// Until (least fixpoint).
    U(Box<Pnf>, Box<Pnf>),
    /// Release (greatest fixpoint, dual of until).
    R(Box<Pnf>, Box<Pnf>),
}

impl Pnf {
    /// Positive literal.
    pub fn prop(p: PropId) -> Self {
        Pnf::Lit {
            prop: p,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn nprop(p: PropId) -> Self {
        Pnf::Lit {
            prop: p,
            positive: false,
        }
    }

    /// Smart conjunction.
    pub fn and(fs: impl IntoIterator<Item = Pnf>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Pnf::True => {}
                Pnf::False => return Pnf::False,
                Pnf::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Pnf::True,
            1 => out.pop().expect("len checked"),
            _ => Pnf::And(out),
        }
    }

    /// Smart disjunction.
    pub fn or(fs: impl IntoIterator<Item = Pnf>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Pnf::False => {}
                Pnf::True => return Pnf::True,
                Pnf::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Pnf::False,
            1 => out.pop().expect("len checked"),
            _ => Pnf::Or(out),
        }
    }

    /// `Xφ`.
    pub fn next(f: Pnf) -> Self {
        Pnf::X(Box::new(f))
    }

    /// `φ U ψ`.
    pub fn until(a: Pnf, b: Pnf) -> Self {
        Pnf::U(Box::new(a), Box::new(b))
    }

    /// `φ R ψ`.
    pub fn release(a: Pnf, b: Pnf) -> Self {
        Pnf::R(Box::new(a), Box::new(b))
    }

    /// `Fφ ≡ true U φ`.
    pub fn eventually(f: Pnf) -> Self {
        Pnf::until(Pnf::True, f)
    }

    /// `Gφ ≡ false R φ`.
    pub fn always(f: Pnf) -> Self {
        Pnf::release(Pnf::False, f)
    }

    /// Dual (negation stays in positive normal form).
    pub fn negate(&self) -> Pnf {
        match self {
            Pnf::True => Pnf::False,
            Pnf::False => Pnf::True,
            Pnf::Lit { prop, positive } => Pnf::Lit {
                prop: *prop,
                positive: !positive,
            },
            Pnf::And(fs) => Pnf::Or(fs.iter().map(Pnf::negate).collect()),
            Pnf::Or(fs) => Pnf::And(fs.iter().map(Pnf::negate).collect()),
            Pnf::X(f) => Pnf::X(Box::new(f.negate())),
            Pnf::U(a, b) => Pnf::R(Box::new(a.negate()), Box::new(b.negate())),
            Pnf::R(a, b) => Pnf::U(Box::new(a.negate()), Box::new(b.negate())),
        }
    }

    /// All propositions mentioned.
    pub fn props(&self) -> BTreeSet<PropId> {
        let mut out = BTreeSet::new();
        self.walk(&mut |f| {
            if let Pnf::Lit { prop, .. } = f {
                out.insert(*prop);
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn walk(&self, visit: &mut impl FnMut(&Pnf)) {
        visit(self);
        match self {
            Pnf::And(fs) | Pnf::Or(fs) => fs.iter().for_each(|f| f.walk(visit)),
            Pnf::X(f) => f.walk(visit),
            Pnf::U(a, b) | Pnf::R(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            _ => {}
        }
    }

    /// Node count.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Reference semantics on the lasso word `stem · lasso^ω`.
    ///
    /// Computed by fixpoint iteration over the finite position set
    /// (`U` from below, `R` from above), which is exact on ultimately
    /// periodic words. `lasso` must be nonempty.
    pub fn eval_lasso(&self, stem: &[PropSet], lasso: &[PropSet]) -> bool {
        assert!(!lasso.is_empty(), "lasso period must be nonempty");
        let n = stem.len() + lasso.len();
        let label = |i: usize| -> &PropSet {
            if i < stem.len() {
                &stem[i]
            } else {
                &lasso[i - stem.len()]
            }
        };
        let next = |i: usize| -> usize {
            if i + 1 < n {
                i + 1
            } else {
                stem.len()
            }
        };
        self.table(&label, &next, n)[0]
    }

    fn table<'a>(
        &self,
        label: &dyn Fn(usize) -> &'a PropSet,
        next: &dyn Fn(usize) -> usize,
        n: usize,
    ) -> Vec<bool> {
        match self {
            Pnf::True => vec![true; n],
            Pnf::False => vec![false; n],
            Pnf::Lit { prop, positive } => (0..n)
                .map(|i| label(i).contains(*prop) == *positive)
                .collect(),
            Pnf::And(fs) => {
                let mut acc = vec![true; n];
                for f in fs {
                    let t = f.table(label, next, n);
                    for i in 0..n {
                        acc[i] &= t[i];
                    }
                }
                acc
            }
            Pnf::Or(fs) => {
                let mut acc = vec![false; n];
                for f in fs {
                    let t = f.table(label, next, n);
                    for i in 0..n {
                        acc[i] |= t[i];
                    }
                }
                acc
            }
            Pnf::X(f) => {
                let t = f.table(label, next, n);
                (0..n).map(|i| t[next(i)]).collect()
            }
            Pnf::U(a, b) => {
                let ta = a.table(label, next, n);
                let tb = b.table(label, next, n);
                let mut sat = tb.clone();
                // Least fixpoint: at most n rounds to converge.
                for _ in 0..n {
                    let mut changed = false;
                    for i in (0..n).rev() {
                        let v = tb[i] || (ta[i] && sat[next(i)]);
                        if v != sat[i] {
                            sat[i] = v;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                sat
            }
            Pnf::R(a, b) => {
                let ta = a.table(label, next, n);
                let tb = b.table(label, next, n);
                let mut sat = tb.clone();
                // Greatest fixpoint from above.
                for _ in 0..n {
                    let mut changed = false;
                    for i in (0..n).rev() {
                        let v = tb[i] && (ta[i] || sat[next(i)]);
                        if v != sat[i] {
                            sat[i] = v;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                sat
            }
        }
    }
}

impl fmt::Debug for Pnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pnf::True => write!(f, "true"),
            Pnf::False => write!(f, "false"),
            Pnf::Lit {
                prop,
                positive: true,
            } => write!(f, "p{prop}"),
            Pnf::Lit {
                prop,
                positive: false,
            } => write!(f, "!p{prop}"),
            Pnf::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Pnf::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Pnf::X(g) => write!(f, "X {g:?}"),
            Pnf::U(a, b) => write!(f, "({a:?} U {b:?})"),
            Pnf::R(a, b) => write!(f, "({a:?} R {b:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(sets: &[&[PropId]]) -> Vec<PropSet> {
        sets.iter()
            .map(|ids| PropSet::from_ids(ids.iter().copied()))
            .collect()
    }

    #[test]
    fn literal_semantics() {
        let stem = w(&[&[0]]);
        let lasso = w(&[&[1]]);
        assert!(Pnf::prop(0).eval_lasso(&stem, &lasso));
        assert!(!Pnf::prop(1).eval_lasso(&stem, &lasso));
        assert!(Pnf::nprop(1).eval_lasso(&stem, &lasso));
    }

    #[test]
    fn next_wraps_into_loop() {
        // Pinned position semantics: the word is stem · lasso^ω, indexed
        // 0..n over stem ++ lasso; the successor of the last position is
        // `stem.len()` — the cycle START — never position 0. Here:
        // position 0 = stem {p0}, positions 1,2 = cycle {p1},{p2}.
        let stem = w(&[&[0]]);
        let lasso = w(&[&[1], &[2]]);
        // X p1 at position 0
        assert!(Pnf::next(Pnf::prop(1)).eval_lasso(&stem, &lasso));
        // Three steps: 0 → 1 → 2 → wrap; the wrap target is labeled {p1}.
        let x3 = |p| Pnf::next(Pnf::next(Pnf::next(Pnf::prop(p))));
        assert!(x3(1).eval_lasso(&stem, &lasso), "wrap lands on cycle start");
        assert!(
            !x3(0).eval_lasso(&stem, &lasso),
            "wrap never re-enters the stem"
        );
        assert!(!x3(2).eval_lasso(&stem, &lasso));
        // Four steps: one position past the wrap, labeled {p2}.
        assert!(Pnf::next(x3(2)).eval_lasso(&stem, &lasso));
    }

    #[test]
    fn lasso_unrolling_is_invariant() {
        // Stem · lasso^ω and (stem ++ lasso) · lasso^ω denote the same
        // infinite word, so every formula must agree on the two
        // representations — this pins the wrap-around labeling to the
        // cycle start for arbitrary operators, not just X-chains.
        let stem = w(&[&[0]]);
        let lasso = w(&[&[1], &[2]]);
        let mut unrolled = stem.clone();
        unrolled.extend(lasso.iter().cloned());
        let fs = [
            Pnf::next(Pnf::next(Pnf::next(Pnf::prop(1)))),
            Pnf::until(Pnf::prop(1), Pnf::prop(2)),
            Pnf::release(Pnf::prop(2), Pnf::prop(1)),
            Pnf::eventually(Pnf::prop(0)),
            Pnf::always(Pnf::or([Pnf::prop(1), Pnf::prop(2)])),
            Pnf::always(Pnf::eventually(Pnf::prop(2))),
        ];
        for f in &fs {
            assert_eq!(
                f.eval_lasso(&stem, &lasso),
                f.eval_lasso(&unrolled, &lasso),
                "unrolling changed the verdict of {f:?}"
            );
        }
    }

    #[test]
    fn eventually_and_always() {
        let stem = w(&[&[], &[]]);
        let lasso = w(&[&[3]]);
        assert!(Pnf::eventually(Pnf::prop(3)).eval_lasso(&stem, &lasso));
        assert!(!Pnf::always(Pnf::prop(3)).eval_lasso(&stem, &lasso));
        // in the loop p3 always holds, so FG p3:
        let fg = Pnf::eventually(Pnf::always(Pnf::prop(3)));
        assert!(fg.eval_lasso(&stem, &lasso));
        // GF p3 too
        let gf = Pnf::always(Pnf::eventually(Pnf::prop(3)));
        assert!(gf.eval_lasso(&stem, &lasso));
    }

    #[test]
    fn until_requires_witness() {
        // p0 U p1 on p0 p0 (p1)^ω — true
        let stem = w(&[&[0], &[0]]);
        let lasso = w(&[&[1]]);
        assert!(Pnf::until(Pnf::prop(0), Pnf::prop(1)).eval_lasso(&stem, &lasso));
        // p0 U p1 on p0 (p0)^ω — false (no witness ever)
        let lasso2 = w(&[&[0]]);
        assert!(!Pnf::until(Pnf::prop(0), Pnf::prop(1)).eval_lasso(&stem, &lasso2));
        // gap in p0 before p1: p0 [] (p1)^ω — false
        let stem3 = w(&[&[0], &[]]);
        assert!(!Pnf::until(Pnf::prop(0), Pnf::prop(1)).eval_lasso(&stem3, &w(&[&[0]])));
        // but the U fires immediately if p1 now
        assert!(Pnf::until(Pnf::prop(0), Pnf::prop(1)).eval_lasso(&w(&[&[1]]), &w(&[&[]])));
    }

    #[test]
    fn release_is_dual_of_until() {
        let stem = w(&[&[0], &[1]]);
        let lasso = w(&[&[0, 1], &[]]);
        let u = Pnf::until(Pnf::prop(0), Pnf::prop(1));
        let r = u.negate();
        assert!(matches!(r, Pnf::R(..)));
        assert_ne!(
            u.eval_lasso(&stem, &lasso),
            r.eval_lasso(&stem, &lasso),
            "φ and ¬φ must disagree"
        );
    }

    #[test]
    fn negate_involutive_semantics() {
        // sample a few formulas/words and check ¬¬φ ≡ φ and φ xor ¬φ
        let words = [
            (w(&[&[0]]), w(&[&[1]])),
            (w(&[]), w(&[&[0], &[1], &[2]])),
            (w(&[&[0, 1]]), w(&[&[], &[2]])),
        ];
        let fs = [
            Pnf::until(Pnf::prop(0), Pnf::prop(1)),
            Pnf::release(Pnf::prop(2), Pnf::prop(1)),
            Pnf::and([Pnf::prop(0), Pnf::next(Pnf::prop(2))]),
            Pnf::always(Pnf::eventually(Pnf::prop(1))),
        ];
        for (stem, lasso) in &words {
            for f in &fs {
                let v = f.eval_lasso(stem, lasso);
                assert_eq!(f.negate().eval_lasso(stem, lasso), !v);
                assert_eq!(f.negate().negate().eval_lasso(stem, lasso), v);
            }
        }
    }

    #[test]
    fn smart_constructors() {
        assert_eq!(Pnf::and([Pnf::True, Pnf::prop(1)]), Pnf::prop(1));
        assert_eq!(Pnf::or([]), Pnf::False);
        assert_eq!(Pnf::and([Pnf::False, Pnf::prop(1)]), Pnf::False);
    }

    #[test]
    fn props_and_size() {
        let f = Pnf::until(Pnf::prop(3), Pnf::and([Pnf::nprop(5), Pnf::True]));
        assert_eq!(f.props(), BTreeSet::from([3, 5]));
        assert!(f.size() >= 3);
    }

    #[test]
    fn empty_stem_allowed() {
        let lasso = w(&[&[7]]);
        assert!(Pnf::always(Pnf::prop(7)).eval_lasso(&[], &lasso));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_lasso_panics() {
        Pnf::True.eval_lasso(&[], &[]);
    }
}
