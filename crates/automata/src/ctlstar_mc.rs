//! CTL\* model checking.
//!
//! The classical reduction (used in the proof of Theorem 4.4 for CTL\*
//! formulas): evaluate state subformulas bottom-up; for `E ψ` with `ψ` a
//! path formula, replace maximal state subformulas of `ψ` by fresh
//! propositions, translate the remaining LTL formula to a Büchi automaton
//! and decide, per state, nonemptiness of the product with the structure —
//! a state satisfies `E ψ` iff some product run from it reaches an
//! accepting cycle. `A ψ ≡ ¬E ¬ψ`.

use std::fmt;

use crate::kripke::Kripke;
use crate::ltl2buchi::translate;
use crate::pformula::PFormula;
use crate::props::PropId;

/// Error: the top-level formula is not a state formula (a bare temporal
/// operator outside any path quantifier).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotStateFormula(pub String);

impl fmt::Display for NotStateFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a CTL* state formula: {}", self.0)
    }
}

impl std::error::Error for NotStateFormula {}

fn is_state(f: &PFormula) -> bool {
    match f {
        PFormula::True | PFormula::False | PFormula::Prop(_) => true,
        PFormula::Not(g) => is_state(g),
        PFormula::And(fs) | PFormula::Or(fs) => fs.iter().all(is_state),
        PFormula::E(_) | PFormula::A(_) => true,
        _ => false,
    }
}

struct Checker {
    k: Kripke,
    next_prop: PropId,
}

/// Computes the satisfaction set of a CTL\* state formula.
pub fn check(k: &Kripke, f: &PFormula) -> Result<Vec<bool>, NotStateFormula> {
    debug_assert!(k.is_total(), "Kripke structure must be total (Def. A.4)");
    if !is_state(f) {
        return Err(NotStateFormula(format!("{f:?}")));
    }
    let mut max_prop = 0;
    for l in &k.labels {
        if let Some(m) = l.iter().max() {
            max_prop = max_prop.max(m + 1);
        }
    }
    collect_props(f, &mut max_prop);
    let mut c = Checker {
        k: k.clone(),
        next_prop: max_prop,
    };
    Ok(c.sat_state(f))
}

/// True iff every initial state satisfies `f`.
pub fn check_initial(k: &Kripke, f: &PFormula) -> Result<bool, NotStateFormula> {
    let s = check(k, f)?;
    Ok(k.initial.iter().all(|&i| s[i]))
}

/// True iff every run from every initial state satisfies the *path*
/// formula `f` (i.e. the structure satisfies `A f`).
pub fn check_path_all(k: &Kripke, f: &PFormula) -> Result<bool, NotStateFormula> {
    check_initial(k, &PFormula::all_paths(f.clone()))
}

fn collect_props(f: &PFormula, max: &mut PropId) {
    match f {
        PFormula::Prop(p) => *max = (*max).max(p + 1),
        PFormula::Not(g)
        | PFormula::X(g)
        | PFormula::F(g)
        | PFormula::G(g)
        | PFormula::E(g)
        | PFormula::A(g) => collect_props(g, max),
        PFormula::And(fs) | PFormula::Or(fs) => fs.iter().for_each(|g| collect_props(g, max)),
        PFormula::U(a, b) => {
            collect_props(a, max);
            collect_props(b, max);
        }
        _ => {}
    }
}

impl Checker {
    fn sat_state(&mut self, f: &PFormula) -> Vec<bool> {
        let n = self.k.len();
        match f {
            PFormula::True => vec![true; n],
            PFormula::False => vec![false; n],
            PFormula::Prop(p) => (0..n).map(|s| self.k.labels[s].contains(*p)).collect(),
            PFormula::Not(g) => {
                let mut t = self.sat_state(g);
                t.iter_mut().for_each(|b| *b = !*b);
                t
            }
            PFormula::And(fs) => {
                let mut acc = vec![true; n];
                for g in fs {
                    let t = self.sat_state(g);
                    for i in 0..n {
                        acc[i] &= t[i];
                    }
                }
                acc
            }
            PFormula::Or(fs) => {
                let mut acc = vec![false; n];
                for g in fs {
                    let t = self.sat_state(g);
                    for i in 0..n {
                        acc[i] |= t[i];
                    }
                }
                acc
            }
            PFormula::E(path) => self.sat_e_path(path),
            PFormula::A(path) => {
                // Aψ = ¬E¬ψ
                let mut t = self.sat_e_path(&PFormula::not(path.as_ref().clone()));
                t.iter_mut().for_each(|b| *b = !*b);
                t
            }
            _ => unreachable!("is_state() guarantees no bare temporal operator"),
        }
    }

    /// States satisfying `E path`.
    fn sat_e_path(&mut self, path: &PFormula) -> Vec<bool> {
        // 1. Abstract maximal state subformulas to fresh propositions.
        let abstracted = self.abstract_state_subformulas(path);
        // 2. LTL → Büchi.
        let pnf = abstracted
            .to_pnf()
            .expect("abstraction leaves a pure path formula");
        let aut = translate(&pnf);
        // 3. Product emptiness per state, via SCC analysis.
        let n = self.k.len();
        let m = aut.len();
        if m == 0 {
            return vec![false; n];
        }
        let idx = |s: usize, q: usize| s * m + q;
        // adjacency on demand is fine; the product is built explicitly.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n * m];
        let mut exists: Vec<bool> = vec![false; n * m];
        for s in 0..n {
            for q in 0..m {
                if !aut.guard[q].accepts(&self.k.labels[s]) {
                    continue;
                }
                exists[idx(s, q)] = true;
                for &s2 in &self.k.succ[s] {
                    for &q2 in &aut.succ[q] {
                        if aut.guard[q2].accepts(&self.k.labels[s2]) {
                            adj[idx(s, q)].push(idx(s2, q2));
                        }
                    }
                }
            }
        }
        // SCCs containing an accepting product node and a cycle.
        let scc = tarjan(&adj, &exists);
        let mut good_scc = vec![false; scc.count];
        // nontrivial: size >= 2 or self-loop
        let mut size = vec![0usize; scc.count];
        for v in 0..n * m {
            if exists[v] {
                size[scc.comp[v]] += 1;
            }
        }
        for v in 0..n * m {
            if !exists[v] {
                continue;
            }
            let c = scc.comp[v];
            let nontrivial = size[c] >= 2 || adj[v].contains(&v);
            if nontrivial && aut.accepting[v % m] {
                good_scc[c] = true;
            }
        }
        // Backward reachability to good SCCs == forward search: node is
        // productive if it can reach a good SCC. Compute by reverse DFS.
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n * m];
        for (v, outs) in adj.iter().enumerate() {
            for &w in outs {
                radj[w].push(v);
            }
        }
        let mut productive = vec![false; n * m];
        let mut stack: Vec<usize> = Vec::new();
        for v in 0..n * m {
            if exists[v] && good_scc[scc.comp[v]] {
                productive[v] = true;
                stack.push(v);
            }
        }
        while let Some(v) = stack.pop() {
            for &u in &radj[v] {
                if exists[u] && !productive[u] {
                    productive[u] = true;
                    stack.push(u);
                }
            }
        }
        (0..n)
            .map(|s| {
                aut.initial
                    .iter()
                    .any(|&q| exists[idx(s, q)] && productive[idx(s, q)])
            })
            .collect()
    }

    /// Replaces every maximal state subformula occurring in a path context
    /// by a fresh proposition whose truth set is computed recursively and
    /// recorded in the structure's labels.
    fn abstract_state_subformulas(&mut self, f: &PFormula) -> PFormula {
        // Note: Prop/True/False are state formulas but already fine as
        // path atoms — leave them in place.
        match f {
            PFormula::True | PFormula::False | PFormula::Prop(_) => f.clone(),
            PFormula::E(_) | PFormula::A(_) => self.introduce_prop(f),
            PFormula::Not(g) => PFormula::not(self.abstract_state_subformulas(g)),
            PFormula::And(fs) => PFormula::and(
                fs.iter()
                    .map(|g| self.abstract_state_subformulas(g))
                    .collect::<Vec<_>>(),
            ),
            PFormula::Or(fs) => PFormula::or(
                fs.iter()
                    .map(|g| self.abstract_state_subformulas(g))
                    .collect::<Vec<_>>(),
            ),
            PFormula::X(g) => PFormula::next(self.abstract_state_subformulas(g)),
            PFormula::F(g) => PFormula::eventually(self.abstract_state_subformulas(g)),
            PFormula::G(g) => PFormula::always(self.abstract_state_subformulas(g)),
            PFormula::U(a, b) => PFormula::until(
                self.abstract_state_subformulas(a),
                self.abstract_state_subformulas(b),
            ),
        }
    }

    fn introduce_prop(&mut self, f: &PFormula) -> PFormula {
        let sats = self.sat_state(f);
        let p = self.next_prop;
        self.next_prop += 1;
        for (s, ok) in sats.iter().enumerate() {
            if *ok {
                self.k.labels[s].insert(p);
            }
        }
        PFormula::Prop(p)
    }
}

struct SccResult {
    comp: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan over the nodes where `exists` holds.
fn tarjan(adj: &[Vec<usize>], exists: &[bool]) -> SccResult {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    enum Action {
        Visit(usize),
        Post(usize, usize), // (node, child)
    }

    for start in 0..n {
        if !exists[start] || index[start] != usize::MAX {
            continue;
        }
        let mut work = vec![Action::Visit(start)];
        while let Some(act) = work.pop() {
            match act {
                Action::Visit(v) => {
                    if index[v] != usize::MAX {
                        continue;
                    }
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    // schedule completion after children
                    work.push(Action::Post(v, usize::MAX));
                    for &w in adj[v].iter().rev() {
                        if !exists[w] {
                            continue;
                        }
                        if index[w] == usize::MAX {
                            work.push(Action::Post(v, w));
                            work.push(Action::Visit(w));
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                }
                Action::Post(v, child) => {
                    if child != usize::MAX {
                        low[v] = low[v].min(low[child]);
                        continue;
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack nonempty");
                            on_stack[w] = false;
                            comp[w] = count;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                    }
                }
            }
        }
    }
    SccResult { comp, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl_mc;
    use crate::props::PropSet;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    fn k1() -> Kripke {
        // 0(p0) -> 1(p1) -> 2(p2) -> 0 ; 1 -> 3(∅) -> 3
        let mut k = Kripke::new();
        for i in 0..4 {
            k.add_state(ps(&[i]));
        }
        k.labels[3] = ps(&[]);
        k.add_edge(0, 1);
        k.add_edge(1, 2);
        k.add_edge(2, 0);
        k.add_edge(1, 3);
        k.add_edge(3, 3);
        k.add_initial(0);
        k
    }

    #[test]
    fn agrees_with_ctl_on_ctl_formulas() {
        let k = k1();
        let formulas = [
            PFormula::exists_path(PFormula::eventually(PFormula::Prop(2))),
            PFormula::all_paths(PFormula::eventually(PFormula::Prop(2))),
            PFormula::all_paths(PFormula::always(PFormula::not(PFormula::Prop(2)))),
            PFormula::exists_path(PFormula::until(PFormula::Prop(0), PFormula::Prop(1))),
            PFormula::all_paths(PFormula::until(PFormula::Prop(0), PFormula::Prop(1))),
            PFormula::exists_path(PFormula::next(PFormula::Prop(1))),
            PFormula::all_paths(PFormula::always(PFormula::exists_path(
                PFormula::eventually(PFormula::Prop(0)),
            ))),
        ];
        for f in &formulas {
            let a = ctl_mc::check(&k, f).unwrap();
            let b = check(&k, f).unwrap();
            assert_eq!(a, b, "disagreement on {f:?}");
        }
    }

    #[test]
    fn genuine_ctl_star_efg() {
        let k = k1();
        // E FG !p2 : go to state 3 and stay — true from 0,1,3; from 2 also
        // true (2 -> 0 -> 1 -> 3).
        let f = PFormula::exists_path(PFormula::eventually(PFormula::always(PFormula::not(
            PFormula::Prop(2),
        ))));
        assert_eq!(check(&k, &f).unwrap(), vec![true, true, true, true]);
        // A FG !p2 : the loop 0→1→2→0 visits p2 forever — false on loop.
        let g = PFormula::all_paths(PFormula::eventually(PFormula::always(PFormula::not(
            PFormula::Prop(2),
        ))));
        assert_eq!(check(&k, &g).unwrap(), vec![false, false, false, true]);
    }

    #[test]
    fn a_gf_fairness() {
        // A GF p2 on the pure loop (no escape): true.
        let mut k = k1();
        k.succ[1].retain(|&t| t != 3);
        let f = PFormula::all_paths(PFormula::always(PFormula::eventually(PFormula::Prop(2))));
        let s = check(&k, &f).unwrap();
        assert!(s[0] && s[1] && s[2]);
        assert!(!s[3]); // 3 self-loops without p2
    }

    #[test]
    fn nested_path_and_state() {
        let k = k1();
        // E X (E G !p2) — from 0: next is 1, and from 1 E G !p2 holds (go 3).
        let f = PFormula::exists_path(PFormula::next(PFormula::exists_path(PFormula::always(
            PFormula::not(PFormula::Prop(2)),
        ))));
        assert!(check(&k, &f).unwrap()[0]);
    }

    #[test]
    fn check_path_all_ltl() {
        let mut k = k1();
        k.succ[1].retain(|&t| t != 3);
        // GF p0 holds on all paths of the pure loop from 0.
        let f = PFormula::always(PFormula::eventually(PFormula::Prop(0)));
        assert!(check_path_all(&k, &f).unwrap());
        // G p0 does not.
        let g = PFormula::always(PFormula::Prop(0));
        assert!(!check_path_all(&k, &g).unwrap());
    }

    #[test]
    fn rejects_bare_path_formula() {
        let k = k1();
        let f = PFormula::eventually(PFormula::Prop(0));
        assert!(check(&k, &f).is_err());
    }

    #[test]
    fn randomized_agreement_with_ctl() {
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..25 {
            // random total Kripke with 5 states over 3 props
            let mut k = Kripke::new();
            for _ in 0..5 {
                let label = PropSet::from_ids((0..3).filter(|_| rnd() % 2 == 0));
                k.add_state(label);
            }
            for s in 0..5 {
                let deg = 1 + rnd() % 3;
                for _ in 0..deg {
                    k.add_edge(s, (rnd() % 5) as usize);
                }
                if k.succ[s].is_empty() {
                    k.add_edge(s, s);
                }
            }
            k.close_with_self_loops();
            k.add_initial(0);
            fn gen_ctl(rnd: &mut impl FnMut() -> u32, depth: u32) -> PFormula {
                if depth == 0 {
                    return PFormula::Prop(rnd() % 3);
                }
                match rnd() % 8 {
                    0 => PFormula::not(gen_ctl(rnd, depth - 1)),
                    1 => PFormula::and([gen_ctl(rnd, depth - 1), gen_ctl(rnd, depth - 1)]),
                    2 => PFormula::or([gen_ctl(rnd, depth - 1), gen_ctl(rnd, depth - 1)]),
                    3 => PFormula::exists_path(PFormula::next(gen_ctl(rnd, depth - 1))),
                    4 => PFormula::all_paths(PFormula::eventually(gen_ctl(rnd, depth - 1))),
                    5 => PFormula::exists_path(PFormula::always(gen_ctl(rnd, depth - 1))),
                    6 => PFormula::all_paths(PFormula::until(
                        gen_ctl(rnd, depth - 1),
                        gen_ctl(rnd, depth - 1),
                    )),
                    _ => PFormula::exists_path(PFormula::until(
                        gen_ctl(rnd, depth - 1),
                        gen_ctl(rnd, depth - 1),
                    )),
                }
            }
            let f = gen_ctl(&mut rnd, 2);
            let a = ctl_mc::check(&k, &f).unwrap();
            let b = check(&k, &f).unwrap();
            assert_eq!(a, b, "disagreement on {f:?}");
        }
    }
}
