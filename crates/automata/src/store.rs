//! Reusable LTL→Büchi translations: a keyed automaton cache plus a
//! deterministic byte codec for [`Buchi`].
//!
//! The GPVW translation ([`crate::ltl2buchi`]) is a pure, deterministic
//! function of the formula, so an automaton can be cached under a
//! canonical fingerprint of that formula and reused across
//! verifications — including across process restarts when the host
//! persists the encoded bytes (wave-serve journals them next to its
//! result cache). The cache is keyed by an opaque `u128` so this crate
//! stays independent of the fingerprinting layer: the *caller* is
//! responsible for a key that uniquely determines the formula handed to
//! `translate`.
//!
//! Caching a translation is sound even for runs that are later
//! cancelled or hit their node budget: unlike a verdict, the automaton
//! does not depend on how much of the search completed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::buchi::{Buchi, Guard};
use crate::props::{PropId, PropSet};

impl Buchi {
    /// Encodes the automaton into a deterministic, self-delimiting byte
    /// string: equal automata (with normalized [`PropSet`]s, which the
    /// translation always produces) encode to equal bytes, so the
    /// encoding is safe to content-address and to compare.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let push_set = |out: &mut Vec<u8>, s: &PropSet| {
            let ids: Vec<PropId> = s.iter().collect();
            push_u64(out, ids.len() as u64);
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        };
        push_u64(&mut out, self.guard.len() as u64);
        for g in &self.guard {
            push_set(&mut out, &g.pos);
            push_set(&mut out, &g.neg);
        }
        for succ in &self.succ {
            push_u64(&mut out, succ.len() as u64);
            for &s in succ {
                push_u64(&mut out, s as u64);
            }
        }
        push_u64(&mut out, self.initial.len() as u64);
        for &q in &self.initial {
            push_u64(&mut out, q as u64);
        }
        for &a in &self.accepting {
            out.push(a as u8);
        }
        out
    }

    /// Decodes an automaton previously produced by
    /// [`Buchi::to_bytes`]. Returns `None` — never a malformed
    /// automaton — on any damage: truncation, trailing garbage, a state
    /// index out of range, or an invalid accepting flag. A `None` means
    /// the caller falls back to retranslating, which is always correct.
    pub fn from_bytes(bytes: &[u8]) -> Option<Buchi> {
        struct Cur<'a>(&'a [u8]);
        impl Cur<'_> {
            fn u64(&mut self) -> Option<u64> {
                let (head, rest) = self.0.split_first_chunk::<8>()?;
                self.0 = rest;
                Some(u64::from_le_bytes(*head))
            }
            fn u32(&mut self) -> Option<u32> {
                let (head, rest) = self.0.split_first_chunk::<4>()?;
                self.0 = rest;
                Some(u32::from_le_bytes(*head))
            }
            fn count(&mut self, width: usize) -> Option<usize> {
                // A count that could not possibly fit in the remaining
                // bytes is damage; checking here keeps allocations
                // proportional to the input.
                let n = self.u64()?;
                let n = usize::try_from(n).ok()?;
                (n.saturating_mul(width) <= self.0.len()).then_some(n)
            }
        }
        let mut cur = Cur(bytes);
        let n = cur.count(0)?;
        if n.saturating_mul(2) > bytes.len() {
            return None; // at least two set-count words per state
        }
        let read_set = |cur: &mut Cur| -> Option<PropSet> {
            let len = cur.count(4)?;
            let mut s = PropSet::new();
            for _ in 0..len {
                s.insert(cur.u32()?);
            }
            Some(s)
        };
        let mut guard = Vec::with_capacity(n);
        for _ in 0..n {
            guard.push(Guard {
                pos: read_set(&mut cur)?,
                neg: read_set(&mut cur)?,
            });
        }
        let mut succ = Vec::with_capacity(n);
        for _ in 0..n {
            let len = cur.count(8)?;
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                let q = usize::try_from(cur.u64()?).ok()?;
                (q < n).then_some(())?;
                row.push(q);
            }
            succ.push(row);
        }
        let len = cur.count(8)?;
        let mut initial = Vec::with_capacity(len);
        for _ in 0..len {
            let q = usize::try_from(cur.u64()?).ok()?;
            (q < n).then_some(())?;
            initial.push(q);
        }
        if cur.0.len() != n {
            return None;
        }
        let mut accepting = Vec::with_capacity(n);
        for &b in cur.0 {
            accepting.push(match b {
                0 => false,
                1 => true,
                _ => return None,
            });
        }
        Some(Buchi {
            guard,
            succ,
            initial,
            accepting,
        })
    }
}

#[derive(Default)]
struct Inner {
    map: HashMap<u128, Arc<Buchi>>,
    /// Entries inserted by a translation since the last drain — the
    /// host's persistence hook journals exactly these (seeded entries
    /// came *from* the journal and must not be re-journaled forever).
    pending: Vec<(u128, Arc<Buchi>)>,
}

/// A process-wide store of LTL→Büchi translations keyed by a canonical
/// formula fingerprint. Thread-safe; shared by `Arc` into every
/// verification's options.
#[derive(Default)]
pub struct AutomatonCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for AutomatonCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutomatonCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl AutomatonCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a recovered automaton without marking it pending —
    /// the load path for entries that already live in a journal.
    /// Existing entries win (the translation is deterministic, so a
    /// disagreement can only mean the seed is damaged).
    pub fn seed(&self, key: u128, automaton: Buchi) {
        let mut inner = self.inner.lock().expect("automaton cache poisoned");
        inner.map.entry(key).or_insert_with(|| Arc::new(automaton));
    }

    /// The automaton for `key`, translating with `translate` on a miss.
    /// The translation runs outside the lock; when two threads race the
    /// same key, the first insert wins (both compute identical automata
    /// — the translation is deterministic).
    pub fn get_or_insert(&self, key: u128, translate: impl FnOnce() -> Buchi) -> Arc<Buchi> {
        {
            let inner = self.inner.lock().expect("automaton cache poisoned");
            if let Some(a) = inner.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(a);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(translate());
        let mut inner = self.inner.lock().expect("automaton cache poisoned");
        if let Some(a) = inner.map.get(&key) {
            return Arc::clone(a);
        }
        inner.map.insert(key, Arc::clone(&fresh));
        inner.pending.push((key, Arc::clone(&fresh)));
        fresh
    }

    /// Takes (and clears) the entries inserted by translations since
    /// the last drain, for the host to persist.
    pub fn drain_pending(&self) -> Vec<(u128, Arc<Buchi>)> {
        let mut inner = self.inner.lock().expect("automaton cache poisoned");
        std::mem::take(&mut inner.pending)
    }

    /// Number of cached automata.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("automaton cache poisoned")
            .map
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to translate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Buchi {
        Buchi {
            guard: vec![
                Guard::top(),
                Guard {
                    pos: PropSet::from_ids([0, 65]),
                    neg: PropSet::from_ids([3]),
                },
            ],
            succ: vec![vec![0, 1], vec![1]],
            initial: vec![0, 1],
            accepting: vec![false, true],
        }
    }

    #[test]
    fn byte_codec_round_trips() {
        let a = sample();
        let bytes = a.to_bytes();
        let b = Buchi::from_bytes(&bytes).expect("round trip");
        assert_eq!(a.guard, b.guard);
        assert_eq!(a.succ, b.succ);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.accepting, b.accepting);
        assert_eq!(bytes, b.to_bytes(), "encoding is canonical");
        // The empty automaton round-trips too.
        let e = Buchi::default();
        let eb = Buchi::from_bytes(&e.to_bytes()).expect("empty");
        assert!(eb.is_empty());
    }

    #[test]
    fn damaged_bytes_decode_to_none_never_a_wrong_automaton() {
        let bytes = sample().to_bytes();
        // Truncation at every prefix length.
        for cut in 0..bytes.len() {
            assert!(Buchi::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Buchi::from_bytes(&long).is_none());
        // An absurd count must not allocate or decode.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Buchi::from_bytes(&huge).is_none());
        // An out-of-range successor index.
        let bad = Buchi {
            guard: vec![Guard::top()],
            succ: vec![vec![0]],
            initial: vec![0],
            accepting: vec![false],
        };
        let mut enc = bad.to_bytes();
        // succ index lives right after the two empty guard sets and the
        // succ count; flip it to 7 (out of range for n = 1).
        let idx = 8 + 16 + 8;
        enc[idx] = 7;
        assert!(Buchi::from_bytes(&enc).is_none());
    }

    #[test]
    fn cache_hits_misses_and_pending_drain() {
        let cache = AutomatonCache::new();
        let mut translations = 0u32;
        let a = cache.get_or_insert(42, || {
            translations += 1;
            sample()
        });
        assert_eq!(cache.misses(), 1);
        let b = cache.get_or_insert(42, || {
            translations += 1;
            sample()
        });
        assert_eq!(translations, 1, "second lookup must not retranslate");
        assert_eq!(cache.hits(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        let pending = cache.drain_pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, 42);
        assert!(cache.drain_pending().is_empty(), "drain clears");
        // Seeded entries never show up as pending.
        cache.seed(7, sample());
        assert!(cache.drain_pending().is_empty());
        assert_eq!(cache.len(), 2);
        cache.get_or_insert(7, || unreachable!("seeded key must hit"));
        assert_eq!(cache.hits(), 2);
    }
}
