//! CTL model checking by the standard labeling algorithm.
//!
//! Given a [`Kripke`] structure and a CTL [`PFormula`], computes for every
//! state whether the formula holds. This is the polynomial-time back end
//! behind Theorem 4.4 (after the exponential Kripke construction of Lemma
//! A.12), Corollary 4.5 and Theorem 4.6.
//!
//! Only the base modalities `EX`, `EU`, `EG` are implemented directly; all
//! others reduce to them:
//!
//! ```text
//! AXφ      = ¬EX¬φ             EFφ = E(true U φ)     AGφ = ¬EF¬φ
//! AFφ      = ¬EG¬φ             A(φUψ) = ¬E(¬ψ U (¬φ∧¬ψ)) ∧ ¬EG¬ψ
//! ```

use std::fmt;

use crate::kripke::Kripke;
use crate::pformula::PFormula;

/// Error raised when the input formula is not a CTL state formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotCtl(pub String);

impl fmt::Display for NotCtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a CTL state formula: {}", self.0)
    }
}

impl std::error::Error for NotCtl {}

/// Computes the satisfaction set of a CTL formula: `result[s]` is true iff
/// state `s` satisfies `f`. The structure must be total.
pub fn check(k: &Kripke, f: &PFormula) -> Result<Vec<bool>, NotCtl> {
    debug_assert!(k.is_total(), "Kripke structure must be total (Def. A.4)");
    if !f.is_ctl() {
        return Err(NotCtl(format!("{f:?}")));
    }
    Ok(sat(k, f))
}

/// True iff every initial state satisfies `f`.
pub fn check_initial(k: &Kripke, f: &PFormula) -> Result<bool, NotCtl> {
    let s = check(k, f)?;
    Ok(k.initial.iter().all(|&i| s[i]))
}

fn sat(k: &Kripke, f: &PFormula) -> Vec<bool> {
    let n = k.len();
    match f {
        PFormula::True => vec![true; n],
        PFormula::False => vec![false; n],
        PFormula::Prop(p) => (0..n).map(|s| k.labels[s].contains(*p)).collect(),
        PFormula::Not(g) => {
            let mut t = sat(k, g);
            t.iter_mut().for_each(|b| *b = !*b);
            t
        }
        PFormula::And(fs) => {
            let mut acc = vec![true; n];
            for g in fs {
                let t = sat(k, g);
                for i in 0..n {
                    acc[i] &= t[i];
                }
            }
            acc
        }
        PFormula::Or(fs) => {
            let mut acc = vec![false; n];
            for g in fs {
                let t = sat(k, g);
                for i in 0..n {
                    acc[i] |= t[i];
                }
            }
            acc
        }
        PFormula::E(path) => match path.as_ref() {
            PFormula::X(g) => ex(k, &sat(k, g)),
            PFormula::F(g) => eu(k, &vec![true; n], &sat(k, g)),
            PFormula::G(g) => eg(k, &sat(k, g)),
            PFormula::U(a, b) => eu(k, &sat(k, a), &sat(k, b)),
            _ => unreachable!("is_ctl() guarantees the shape"),
        },
        PFormula::A(path) => match path.as_ref() {
            // AXφ = ¬EX¬φ
            PFormula::X(g) => {
                let mut ng = sat(k, g);
                ng.iter_mut().for_each(|b| *b = !*b);
                let mut t = ex(k, &ng);
                t.iter_mut().for_each(|b| *b = !*b);
                t
            }
            // AFφ = ¬EG¬φ
            PFormula::F(g) => {
                let mut ng = sat(k, g);
                ng.iter_mut().for_each(|b| *b = !*b);
                let mut t = eg(k, &ng);
                t.iter_mut().for_each(|b| *b = !*b);
                t
            }
            // AGφ = ¬EF¬φ
            PFormula::G(g) => {
                let mut ng = sat(k, g);
                ng.iter_mut().for_each(|b| *b = !*b);
                let mut t = eu(k, &vec![true; n], &ng);
                t.iter_mut().for_each(|b| *b = !*b);
                t
            }
            // A(aUb) = ¬E(¬b U (¬a∧¬b)) ∧ ¬EG¬b
            PFormula::U(a, b) => {
                let sa = sat(k, a);
                let sb = sat(k, b);
                let nb: Vec<bool> = sb.iter().map(|x| !x).collect();
                let nanb: Vec<bool> = (0..n).map(|i| !sa[i] && !sb[i]).collect();
                let e1 = eu(k, &nb, &nanb);
                let e2 = eg(k, &nb);
                (0..n).map(|i| !e1[i] && !e2[i]).collect()
            }
            _ => unreachable!("is_ctl() guarantees the shape"),
        },
        PFormula::X(_) | PFormula::U(..) | PFormula::F(_) | PFormula::G(_) => {
            unreachable!("is_ctl() rejects bare temporal operators")
        }
    }
}

/// `EX`: states with a successor in `target`.
fn ex(k: &Kripke, target: &[bool]) -> Vec<bool> {
    (0..k.len())
        .map(|s| k.succ[s].iter().any(|&t| target[t]))
        .collect()
}

/// `E(a U b)`: backward least fixpoint from `b` through `a`-states.
fn eu(k: &Kripke, a: &[bool], b: &[bool]) -> Vec<bool> {
    let pred = k.predecessors();
    let mut sat: Vec<bool> = b.to_vec();
    let mut work: Vec<usize> = (0..k.len()).filter(|&s| sat[s]).collect();
    while let Some(s) = work.pop() {
        for &p in &pred[s] {
            if a[p] && !sat[p] {
                sat[p] = true;
                work.push(p);
            }
        }
    }
    sat
}

/// `EG a`: greatest fixpoint — states with an infinite `a`-path.
fn eg(k: &Kripke, a: &[bool]) -> Vec<bool> {
    let mut sat: Vec<bool> = a.to_vec();
    // Iteratively remove states with no successor inside the candidate set.
    loop {
        let mut changed = false;
        for s in 0..k.len() {
            if sat[s] && !k.succ[s].iter().any(|&t| sat[t]) {
                sat[s] = false;
                changed = true;
            }
        }
        if !changed {
            return sat;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PropSet;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    /// Three-state loop: 0 --> 1 --> 2 --> 0; labels p0@0, p1@1, p2@2; and
    /// an escape 1 --> 3 where 3 self-loops with no labels.
    fn k1() -> Kripke {
        let mut k = Kripke::new();
        for i in 0..4 {
            k.add_state(ps(&[i]));
        }
        k.labels[3] = ps(&[]);
        k.add_edge(0, 1);
        k.add_edge(1, 2);
        k.add_edge(2, 0);
        k.add_edge(1, 3);
        k.add_edge(3, 3);
        k.add_initial(0);
        k
    }

    #[test]
    fn ex_semantics() {
        let k = k1();
        let f = PFormula::exists_path(PFormula::next(PFormula::Prop(2)));
        let s = check(&k, &f).unwrap();
        assert_eq!(s, vec![false, true, false, false]);
    }

    #[test]
    fn ax_semantics() {
        let k = k1();
        // AX p2 at 1? successors of 1 are {2, 3}; 3 lacks p2 -> false.
        let f = PFormula::all_paths(PFormula::next(PFormula::Prop(2)));
        let s = check(&k, &f).unwrap();
        assert!(!s[1]);
        // AX p1 at 0: single successor 1 has p1 -> true.
        let g = PFormula::all_paths(PFormula::next(PFormula::Prop(1)));
        assert!(check(&k, &g).unwrap()[0]);
    }

    #[test]
    fn ef_and_ag() {
        let k = k1();
        // EF p2 from 0,1,2 (via the loop), not from 3.
        let f = PFormula::exists_path(PFormula::eventually(PFormula::Prop(2)));
        assert_eq!(check(&k, &f).unwrap(), vec![true, true, true, false]);
        // AG (p0|p1|p2|nothing) trivially true; AG !p3... use AG !p2 from 3.
        let g = PFormula::all_paths(PFormula::always(PFormula::not(PFormula::Prop(2))));
        assert_eq!(check(&k, &g).unwrap(), vec![false, false, false, true]);
    }

    #[test]
    fn eg_requires_infinite_path() {
        let k = k1();
        // EG !p2: stay away from state 2 forever — go to 3.
        let f = PFormula::exists_path(PFormula::always(PFormula::not(PFormula::Prop(2))));
        let s = check(&k, &f).unwrap();
        assert_eq!(s, vec![true, true, false, true]); // from 2 itself p2 holds now
    }

    #[test]
    fn af_vs_ef() {
        let k = k1();
        // AF p2 at 0: path 0 1 3 3 ... avoids p2 -> false.
        let af = PFormula::all_paths(PFormula::eventually(PFormula::Prop(2)));
        assert!(!check(&k, &af).unwrap()[0]);
        // at 2: p2 holds now -> true.
        assert!(check(&k, &af).unwrap()[2]);
    }

    #[test]
    fn au_semantics() {
        let mut k = Kripke::new();
        // 0(p0) -> 1(p0) -> 2(p1), all roads lead to 2; 2 loops.
        let s0 = k.add_state(ps(&[0]));
        let s1 = k.add_state(ps(&[0]));
        let s2 = k.add_state(ps(&[1]));
        k.add_edge(s0, s1);
        k.add_edge(s1, s2);
        k.add_edge(s2, s2);
        k.add_initial(s0);
        let f = PFormula::all_paths(PFormula::until(PFormula::Prop(0), PFormula::Prop(1)));
        assert_eq!(check(&k, &f).unwrap(), vec![true, true, true]);
        // Add an escape from 1 to a p0-forever loop: A(p0 U p1) fails at 0,1.
        let s3 = k.add_state(ps(&[0]));
        k.add_edge(s1, s3);
        k.add_edge(s3, s3);
        let s = check(&k, &f).unwrap();
        assert_eq!(s, vec![false, false, true, false]);
    }

    #[test]
    fn eu_semantics() {
        let k = k1();
        // E(p0 U p1): at 0 (p0 then 1 has p1), at 1 (p1 now).
        let f = PFormula::exists_path(PFormula::until(PFormula::Prop(0), PFormula::Prop(1)));
        assert_eq!(check(&k, &f).unwrap(), vec![true, true, false, false]);
    }

    #[test]
    fn agef_home_page_pattern() {
        // The paper's navigational property AG EF HP (Example 4.3).
        let k = k1();
        // AG EF p0: from 3 you cannot reach 0 -> fails at any state that can
        // reach 3... i.e. everywhere except... 0 can go 0->1->3.
        let f = PFormula::all_paths(PFormula::always(PFormula::exists_path(
            PFormula::eventually(PFormula::Prop(0)),
        )));
        let s = check(&k, &f).unwrap();
        assert_eq!(s, vec![false, false, false, false]);
        // Remove the escape: now AG EF p0 holds on the loop.
        let mut k2 = k1();
        k2.succ[1].retain(|&t| t != 3);
        let s2 = check(&k2, &f).unwrap();
        assert!(s2[0]);
        assert!(s2[1]);
        assert!(s2[2]);
    }

    #[test]
    fn rejects_non_ctl() {
        let k = k1();
        let f = PFormula::all_paths(PFormula::eventually(PFormula::always(PFormula::Prop(0))));
        assert!(check(&k, &f).is_err());
    }

    #[test]
    fn check_initial_conjoins() {
        let k = k1();
        let f = PFormula::exists_path(PFormula::eventually(PFormula::Prop(2)));
        assert!(check_initial(&k, &f).unwrap());
        let g = PFormula::all_paths(PFormula::eventually(PFormula::Prop(2)));
        assert!(!check_initial(&k, &g).unwrap());
    }
}
