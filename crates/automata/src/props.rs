//! Proposition registries and compact bit-set labels.
//!
//! The propositional verifiers (Theorems 4.4–4.6) work over the vocabulary
//! `Σ_W` of a Web service — pages, state propositions, inputs and actions
//! viewed as propositional symbols. States of the constructed Kripke
//! structures are *sets* of those symbols (Lemma A.12 labels nodes of the
//! run tree by the set of propositions true there), so a compact set
//! representation pays off: [`PropSet`] is a word-packed bitset keyed by
//! the `u32` ids a [`PropRegistry`] assigns to names.

use std::collections::BTreeMap;
use std::fmt;

/// A proposition identifier.
pub type PropId = u32;

/// Bidirectional mapping between proposition names and dense ids.
#[derive(Clone, Default, Debug)]
pub struct PropRegistry {
    by_name: BTreeMap<String, PropId>,
    by_id: Vec<String>,
}

impl PropRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating one if new.
    pub fn intern(&mut self, name: impl AsRef<str>) -> PropId {
        let name = name.as_ref();
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = self.by_id.len() as PropId;
        self.by_name.insert(name.to_string(), id);
        self.by_id.push(name.to_string());
        id
    }

    /// Looks up an existing id.
    pub fn id(&self, name: &str) -> Option<PropId> {
        self.by_name.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: PropId) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Number of registered propositions.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Renders a [`PropSet`] with names, for diagnostics.
    pub fn render(&self, set: &PropSet) -> String {
        let names: Vec<&str> = set.iter().filter_map(|id| self.name(id)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// A set of propositions, packed 64 per word.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PropSet {
    words: Vec<u64>,
}

impl PropSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from ids.
    pub fn from_ids(ids: impl IntoIterator<Item = PropId>) -> Self {
        let mut s = Self::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Inserts `id`; returns whether it was new.
    pub fn insert(&mut self, id: PropId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: PropId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        if had {
            self.normalize();
        }
        had
    }

    /// Membership test.
    pub fn contains(&self, id: PropId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words
            .get(w)
            .map(|x| x & (1 << b) != 0)
            .unwrap_or(false)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &PropSet) -> bool {
        for (i, w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// True if the sets share no member.
    pub fn is_disjoint(&self, other: &PropSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &PropSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// Iterates over member ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = PropId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some((wi * 64) as PropId + b)
                }
            })
        })
    }

    /// Drops trailing zero words so equal sets compare equal.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<PropId> for PropSet {
    fn from_iter<I: IntoIterator<Item = PropId>>(iter: I) -> Self {
        Self::from_ids(iter)
    }
}

impl fmt::Debug for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut r = PropRegistry::new();
        let a = r.intern("HP");
        let b = r.intern("logged_in");
        assert_eq!(r.intern("HP"), a);
        assert_eq!(r.id("logged_in"), Some(b));
        assert_eq!(r.name(a), Some("HP"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn propset_insert_remove_contains() {
        let mut s = PropSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(99));
        assert_eq!(s.len(), 2);
        assert!(s.remove(100));
        assert!(!s.remove(100));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn normalization_preserves_equality() {
        let mut a = PropSet::new();
        a.insert(200);
        a.remove(200);
        assert_eq!(a, PropSet::new());
        a.insert(1);
        let b = PropSet::from_ids([1]);
        assert_eq!(a, b);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = PropSet::from_ids([1, 2]);
        let b = PropSet::from_ids([1, 2, 3]);
        let c = PropSet::from_ids([64, 65]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        // trailing-word asymmetry
        assert!(PropSet::from_ids([1]).is_subset(&PropSet::from_ids([1, 300])));
        assert!(!PropSet::from_ids([300]).is_subset(&PropSet::from_ids([1])));
    }

    #[test]
    fn union_and_iter_order() {
        let mut a = PropSet::from_ids([5, 1]);
        a.union_with(&PropSet::from_ids([70, 5]));
        let ids: Vec<_> = a.iter().collect();
        assert_eq!(ids, vec![1, 5, 70]);
    }

    #[test]
    fn render_with_names() {
        let mut r = PropRegistry::new();
        let hp = r.intern("HP");
        let cp = r.intern("CP");
        let s = PropSet::from_ids([hp, cp]);
        assert_eq!(r.render(&s), "{HP, CP}");
    }

    #[test]
    fn large_ids() {
        let mut s = PropSet::new();
        s.insert(1000);
        assert!(s.contains(1000));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1000]);
    }
}
