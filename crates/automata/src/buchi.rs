//! Büchi automata with guarded transitions.
//!
//! The automata produced by [`crate::ltl2buchi`] read words over `2^AP`.
//! Each state carries a *guard* — a conjunction of literals the current
//! letter must satisfy when the automaton is at that state — following the
//! GPVW convention where a node's `Old` literals constrain the letter
//! consumed there.

use std::fmt;

use crate::props::PropSet;

/// A conjunction of propositional literals: the letter must contain all of
/// `pos` and none of `neg`.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Guard {
    /// Propositions required present.
    pub pos: PropSet,
    /// Propositions required absent.
    pub neg: PropSet,
}

impl Guard {
    /// The guard satisfied by every letter.
    pub fn top() -> Self {
        Guard::default()
    }

    /// Whether `letter` satisfies the guard.
    pub fn accepts(&self, letter: &PropSet) -> bool {
        self.pos.is_subset(letter) && self.neg.is_disjoint(letter)
    }

    /// Whether the guard is satisfiable at all.
    pub fn consistent(&self) -> bool {
        self.pos.is_disjoint(&self.neg)
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{:?} -{:?}", self.pos, self.neg)
    }
}

/// A (non-generalized) Büchi automaton.
///
/// State `q`'s outgoing transitions all consume a letter satisfying
/// `guard[q]`; acceptance is state-based (`accepting[q]`), required to hold
/// infinitely often along a run.
#[derive(Clone, Debug, Default)]
pub struct Buchi {
    /// Per-state guard on the letter consumed at that state.
    pub guard: Vec<Guard>,
    /// Per-state successor lists.
    pub succ: Vec<Vec<usize>>,
    /// Initial states.
    pub initial: Vec<usize>,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Buchi {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.guard.len()
    }

    /// True when the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.guard.is_empty()
    }

    /// Total transition count (for size reporting in benchmarks).
    pub fn num_transitions(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Whether the automaton accepts the lasso word `stem · lasso^ω`.
    ///
    /// Decided by nondeterministic simulation: track the set of automaton
    /// states reachable at each position; detect a productive accepting
    /// cycle by running the product with the lasso positions through the
    /// generic nested-DFS search.
    pub fn accepts_lasso(&self, stem: &[PropSet], lasso: &[PropSet]) -> bool {
        assert!(!lasso.is_empty(), "lasso period must be nonempty");
        let n = stem.len() + lasso.len();
        let label = |i: usize| -> &PropSet {
            if i < stem.len() {
                &stem[i]
            } else {
                &lasso[i - stem.len()]
            }
        };
        let next = |i: usize| -> usize {
            if i + 1 < n {
                i + 1
            } else {
                stem.len()
            }
        };
        // Product node: (automaton state, word position).
        let inits: Vec<(usize, usize)> = self
            .initial
            .iter()
            .filter(|q| self.guard[**q].accepts(label(0)))
            .map(|q| (*q, 0usize))
            .collect();
        let result = crate::search::find_accepting_lasso(
            inits,
            |&(q, i)| {
                let mut out = Vec::new();
                let j = next(i);
                for &r in &self.succ[q] {
                    if self.guard[r].accepts(label(j)) {
                        out.push((r, j));
                    }
                }
                out
            },
            |&(q, _)| self.accepting[q],
            None,
        );
        matches!(result, crate::search::SearchResult::Lasso { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn guard_semantics() {
        let g = Guard {
            pos: ps(&[1]),
            neg: ps(&[2]),
        };
        assert!(g.accepts(&ps(&[1, 3])));
        assert!(!g.accepts(&ps(&[1, 2])));
        assert!(!g.accepts(&ps(&[3])));
        assert!(g.consistent());
        let bad = Guard {
            pos: ps(&[1]),
            neg: ps(&[1]),
        };
        assert!(!bad.consistent());
        assert!(Guard::top().accepts(&ps(&[])));
    }

    /// A two-state automaton for `GF p0`: state 0 waits (any letter),
    /// state 1 requires p0; accepting = state 1.
    fn gf_p0() -> Buchi {
        Buchi {
            guard: vec![
                Guard::top(),
                Guard {
                    pos: ps(&[0]),
                    neg: ps(&[]),
                },
            ],
            succ: vec![vec![0, 1], vec![0, 1]],
            initial: vec![0, 1],
            accepting: vec![false, true],
        }
    }

    #[test]
    fn accepts_infinitely_often() {
        let a = gf_p0();
        // (p0)^ω
        assert!(a.accepts_lasso(&[], &[ps(&[0])]));
        // ({} p0)^ω
        assert!(a.accepts_lasso(&[], &[ps(&[]), ps(&[0])]));
        // {}^ω — never p0
        assert!(!a.accepts_lasso(&[], &[ps(&[])]));
        // p0 then never again
        assert!(!a.accepts_lasso(&[ps(&[0])], &[ps(&[])]));
    }

    #[test]
    fn empty_automaton_rejects() {
        let a = Buchi::default();
        assert!(!a.accepts_lasso(&[], &[ps(&[])]));
    }
}
