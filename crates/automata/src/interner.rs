//! Hash-consing node interner.
//!
//! The lasso searches of [`crate::search`] explore implicit product
//! graphs whose nodes are large (symbolic configurations carry whole
//! knowledge stores). Interning maps each distinct node to a dense
//! `u32` id exactly once; after that the searches operate on ids —
//! visited sets become bit vectors, successor memo tables become plain
//! vectors, and node equality becomes integer equality. The interner
//! also counts dedup hits, the raw measure of how much sharing the
//! search space exhibits.

use std::collections::HashMap;
use std::hash::Hash;

/// Interns nodes of type `N`, assigning dense ids in first-seen order.
#[derive(Clone, Debug)]
pub struct Interner<N> {
    ids: HashMap<N, u32>,
    nodes: Vec<N>,
    dedup_hits: u64,
}

impl<N> Default for Interner<N> {
    fn default() -> Self {
        Interner {
            ids: HashMap::new(),
            nodes: Vec::new(),
            dedup_hits: 0,
        }
    }
}

impl<N: Clone + Eq + Hash> Interner<N> {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node: returns its id and whether it was new. Ids are
    /// assigned densely (`0, 1, 2, …`) in first-seen order, so they can
    /// index side tables directly.
    pub fn intern(&mut self, node: N) -> (u32, bool) {
        if let Some(&id) = self.ids.get(&node) {
            self.dedup_hits += 1;
            return (id, false);
        }
        let id = u32::try_from(self.nodes.len()).expect("more than u32::MAX nodes");
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        (id, true)
    }

    /// The id of an already-interned node, if any.
    pub fn lookup(&self, node: &N) -> Option<u32> {
        self.ids.get(node).copied()
    }
}

impl<N> Interner<N> {
    /// The node with the given id.
    ///
    /// Panics when the id was not produced by this interner.
    pub fn get(&self, id: u32) -> &N {
        &self.nodes[id as usize]
    }

    /// Number of distinct nodes interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// How many `intern` calls found their node already present.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a".to_string()), (0, true));
        assert_eq!(i.intern("b".to_string()), (1, true));
        assert_eq!(i.intern("a".to_string()), (0, false));
        assert_eq!(i.intern("c".to_string()), (2, true));
        assert_eq!(i.len(), 3);
        assert_eq!(i.dedup_hits(), 1);
        assert_eq!(i.get(1), "b");
        assert_eq!(i.lookup(&"c".to_string()), Some(2));
        assert_eq!(i.lookup(&"z".to_string()), None);
    }

    #[test]
    fn empty_interner() {
        let i: Interner<u64> = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.dedup_hits(), 0);
    }
}
