//! CTL satisfiability — the Emerson–Halpern tableau.
//!
//! Theorem 4.9 decides verification of Web services with input-driven
//! search by reducing `W ⊨ φ` to *unsatisfiability* of `ψ_W ∧ ¬φ`, where
//! `ψ_W` axiomatizes the Kripke structures consistent with the service's
//! rules. This module supplies the EXPTIME decision procedure for CTL:
//!
//! 1. Bring the formula to a normal form over `EX, AX, EU, AU, ER, AR`
//!    with negations on literals.
//! 2. Enumerate *atoms*: truth assignments to the elementary formulas
//!    (literals and `EX`/`AX` formulas of the closure); membership of
//!    compound formulas is induced by the fixpoint expansions
//!    `E(aUb) = b ∨ (a ∧ EX E(aUb))` etc.
//! 3. Prune atoms that lack `EX` witnesses, successors, or fulfillment of
//!    `EU`/`AU` eventualities, to a fixpoint.
//! 4. Satisfiable iff a surviving atom contains the root formula.

use std::collections::BTreeMap;
use std::fmt;

use crate::pformula::PFormula;
use crate::props::PropId;

/// Errors of the satisfiability procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatError {
    /// The input is not a CTL state formula.
    NotCtl(String),
    /// The tableau would exceed the configured atom budget.
    TooLarge {
        /// Number of elementary formulas (atom count is `2^this`).
        elementary: usize,
    },
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatError::NotCtl(s) => write!(f, "not a CTL formula: {s}"),
            SatError::TooLarge { elementary } => {
                write!(f, "tableau too large: 2^{elementary} atoms")
            }
        }
    }
}

impl std::error::Error for SatError {}

/// CTL in tableau normal form.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Nf {
    True,
    False,
    Lit(PropId, bool),
    And(Vec<Nf>),
    Or(Vec<Nf>),
    Ex(Box<Nf>),
    Ax(Box<Nf>),
    Eu(Box<Nf>, Box<Nf>),
    Au(Box<Nf>, Box<Nf>),
    Er(Box<Nf>, Box<Nf>),
    Ar(Box<Nf>, Box<Nf>),
}

fn lower(f: &PFormula, pos: bool) -> Result<Nf, SatError> {
    let err = || SatError::NotCtl(format!("{f:?}"));
    Ok(match f {
        PFormula::True => {
            if pos {
                Nf::True
            } else {
                Nf::False
            }
        }
        PFormula::False => {
            if pos {
                Nf::False
            } else {
                Nf::True
            }
        }
        PFormula::Prop(p) => Nf::Lit(*p, pos),
        PFormula::Not(g) => lower(g, !pos)?,
        PFormula::And(fs) => {
            let parts = fs
                .iter()
                .map(|g| lower(g, pos))
                .collect::<Result<Vec<_>, _>>()?;
            if pos {
                Nf::And(parts)
            } else {
                Nf::Or(parts)
            }
        }
        PFormula::Or(fs) => {
            let parts = fs
                .iter()
                .map(|g| lower(g, pos))
                .collect::<Result<Vec<_>, _>>()?;
            if pos {
                Nf::Or(parts)
            } else {
                Nf::And(parts)
            }
        }
        PFormula::E(path) => lower_path(path, pos, true).ok_or_else(err)?,
        PFormula::A(path) => lower_path(path, pos, false).ok_or_else(err)?,
        _ => return Err(err()),
    })
}

/// Lowers `E path` (`exists=true`) or `A path` under polarity `pos`.
/// Negation swaps the quantifier and dualizes the operator:
/// `¬EXφ=AX¬φ`, `¬E(aUb)=A(¬a R ¬b)`, `¬E(aRb)=A(¬a U ¬b)`.
fn lower_path(path: &PFormula, pos: bool, exists: bool) -> Option<Nf> {
    let e = exists == pos; // effective quantifier after polarity
    match path {
        PFormula::X(g) => {
            let inner = lower(g, pos).ok()?;
            Some(if e {
                Nf::Ex(Box::new(inner))
            } else {
                Nf::Ax(Box::new(inner))
            })
        }
        PFormula::F(g) => {
            // Fφ = true U φ; ¬Fφ = false R ¬φ
            let inner = lower(g, pos).ok()?;
            Some(if pos {
                if e {
                    Nf::Eu(Box::new(Nf::True), Box::new(inner))
                } else {
                    Nf::Au(Box::new(Nf::True), Box::new(inner))
                }
            } else if e {
                Nf::Er(Box::new(Nf::False), Box::new(inner))
            } else {
                Nf::Ar(Box::new(Nf::False), Box::new(inner))
            })
        }
        PFormula::G(g) => {
            // Gφ = false R φ; ¬Gφ = true U ¬φ
            let inner = lower(g, pos).ok()?;
            Some(if pos {
                if e {
                    Nf::Er(Box::new(Nf::False), Box::new(inner))
                } else {
                    Nf::Ar(Box::new(Nf::False), Box::new(inner))
                }
            } else if e {
                Nf::Eu(Box::new(Nf::True), Box::new(inner))
            } else {
                Nf::Au(Box::new(Nf::True), Box::new(inner))
            })
        }
        PFormula::U(a, b) => {
            let la = lower(a, pos).ok()?;
            let lb = lower(b, pos).ok()?;
            Some(if pos {
                if e {
                    Nf::Eu(Box::new(la), Box::new(lb))
                } else {
                    Nf::Au(Box::new(la), Box::new(lb))
                }
            } else if e {
                Nf::Er(Box::new(la), Box::new(lb))
            } else {
                Nf::Ar(Box::new(la), Box::new(lb))
            })
        }
        _ => None,
    }
}

/// Interned normal-form closure.
struct Closure {
    formulas: Vec<Nf>,
    ids: BTreeMap<Nf, usize>,
    /// Elementary formulas: props and EX/AX entries, as indices into
    /// `formulas` (for EX/AX) or prop ids (for literals).
    props: Vec<PropId>,
    modal: Vec<usize>, // ids of Ex/Ax formulas
}

impl Closure {
    fn intern(&mut self, f: &Nf) -> usize {
        if let Some(&id) = self.ids.get(f) {
            return id;
        }
        // intern children first
        match f {
            Nf::And(fs) | Nf::Or(fs) => {
                for g in fs {
                    self.intern(g);
                }
            }
            Nf::Ex(g) | Nf::Ax(g) => {
                self.intern(g);
            }
            Nf::Eu(a, b) | Nf::Au(a, b) | Nf::Er(a, b) | Nf::Ar(a, b) => {
                self.intern(a);
                self.intern(b);
            }
            Nf::Lit(p, _) if !self.props.contains(p) => self.props.push(*p),
            _ => {}
        }
        let id = self.formulas.len();
        self.formulas.push(f.clone());
        self.ids.insert(f.clone(), id);
        if matches!(f, Nf::Ex(_) | Nf::Ax(_)) {
            self.modal.push(id);
        }
        // Fixpoint formulas induce their modal expansions.
        match f.clone() {
            Nf::Eu(..) | Nf::Er(..) => {
                self.intern(&Nf::Ex(Box::new(f.clone())));
            }
            Nf::Au(..) | Nf::Ar(..) => {
                self.intern(&Nf::Ax(Box::new(f.clone())));
            }
            _ => {}
        }
        id
    }
}

/// An atom: a consistent truth assignment to the closure.
#[derive(Clone)]
struct Atom {
    truth: Vec<bool>, // indexed by formula id
}

/// The result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; the witness reports tableau statistics.
    Sat {
        /// Surviving atoms (a model can be folded from them).
        atoms: usize,
    },
    /// The formula has no model.
    Unsat,
}

impl SatResult {
    /// True when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat { .. })
    }
}

/// Decides satisfiability of a CTL state formula. `max_elementary` bounds
/// the number of elementary formulas (atom count is exponential in it);
/// 20 is a generous default.
pub fn is_satisfiable(f: &PFormula, max_elementary: usize) -> Result<SatResult, SatError> {
    let nf = lower(f, true)?;
    let mut cl = Closure {
        formulas: Vec::new(),
        ids: BTreeMap::new(),
        props: Vec::new(),
        modal: Vec::new(),
    };
    let root = cl.intern(&nf);
    let n_elem = cl.props.len() + cl.modal.len();
    if n_elem > max_elementary {
        return Err(SatError::TooLarge { elementary: n_elem });
    }

    // Enumerate atoms: assignments over elementary formulas.
    let mut atoms: Vec<Atom> = Vec::new();
    let combos = 1usize << n_elem;
    for mask in 0..combos {
        let prop_val = |p: PropId| -> bool {
            let i = cl
                .props
                .iter()
                .position(|q| *q == p)
                .expect("prop interned");
            mask & (1 << i) != 0
        };
        let modal_val = |id: usize| -> bool {
            let i = cl
                .modal
                .iter()
                .position(|m| *m == id)
                .expect("modal interned");
            mask & (1 << (cl.props.len() + i)) != 0
        };
        // Derive truth of every closure formula bottom-up (ids are in
        // dependency order except the fixpoint-generated EX/AX, which are
        // elementary anyway).
        let mut truth = vec![false; cl.formulas.len()];
        let mut ok = true;
        for id in 0..cl.formulas.len() {
            let v = match &cl.formulas[id] {
                Nf::True => true,
                Nf::False => false,
                Nf::Lit(p, positive) => prop_val(*p) == *positive,
                Nf::And(fs) => fs.iter().all(|g| truth[cl.ids[g]]),
                Nf::Or(fs) => fs.iter().any(|g| truth[cl.ids[g]]),
                Nf::Ex(_) | Nf::Ax(_) => modal_val(id),
                Nf::Eu(a, b) => {
                    let ex_id = cl.ids[&Nf::Ex(Box::new(cl.formulas[id].clone()))];
                    truth[cl.ids[b.as_ref()]] || (truth[cl.ids[a.as_ref()]] && modal_val(ex_id))
                }
                Nf::Au(a, b) => {
                    let ax_id = cl.ids[&Nf::Ax(Box::new(cl.formulas[id].clone()))];
                    truth[cl.ids[b.as_ref()]] || (truth[cl.ids[a.as_ref()]] && modal_val(ax_id))
                }
                Nf::Er(a, b) => {
                    let ex_id = cl.ids[&Nf::Ex(Box::new(cl.formulas[id].clone()))];
                    truth[cl.ids[b.as_ref()]] && (truth[cl.ids[a.as_ref()]] || modal_val(ex_id))
                }
                Nf::Ar(a, b) => {
                    let ax_id = cl.ids[&Nf::Ax(Box::new(cl.formulas[id].clone()))];
                    truth[cl.ids[b.as_ref()]] && (truth[cl.ids[a.as_ref()]] || modal_val(ax_id))
                }
            };
            truth[id] = v;
            let _ = &mut ok;
        }
        if ok {
            atoms.push(Atom { truth });
        }
    }

    // Wait-free helper views over the closure.
    let ex_list: Vec<(usize, usize)> = cl
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, f)| match f {
            Nf::Ex(g) => Some((id, cl.ids[g.as_ref()])),
            _ => None,
        })
        .collect();
    let ax_list: Vec<(usize, usize)> = cl
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, f)| match f {
            Nf::Ax(g) => Some((id, cl.ids[g.as_ref()])),
            _ => None,
        })
        .collect();
    let eu_list: Vec<(usize, usize)> = cl
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, f)| match f {
            Nf::Eu(_, b) => Some((id, cl.ids[b.as_ref()])),
            _ => None,
        })
        .collect();
    let au_list: Vec<(usize, usize)> = cl
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, f)| match f {
            Nf::Au(_, b) => Some((id, cl.ids[b.as_ref()])),
            _ => None,
        })
        .collect();

    // Edge relation: H -> H' iff every AXχ true in H has χ true in H'.
    let edge = |h: &Atom, h2: &Atom| -> bool {
        ax_list
            .iter()
            .all(|&(ax, chi)| !h.truth[ax] || h2.truth[chi])
    };

    let mut alive: Vec<bool> = vec![true; atoms.len()];
    loop {
        let mut changed = false;

        // EX support + totality.
        for i in 0..atoms.len() {
            if !alive[i] {
                continue;
            }
            let succs: Vec<usize> = (0..atoms.len())
                .filter(|&j| alive[j] && edge(&atoms[i], &atoms[j]))
                .collect();
            if succs.is_empty() {
                alive[i] = false;
                changed = true;
                continue;
            }
            for &(ex, chi) in &ex_list {
                if atoms[i].truth[ex] && !succs.iter().any(|&j| atoms[j].truth[chi]) {
                    alive[i] = false;
                    changed = true;
                    break;
                }
            }
        }

        // EU fulfillment: least fixpoint per EU formula.
        for &(eu, b) in &eu_list {
            let mut can = vec![false; atoms.len()];
            loop {
                let mut grew = false;
                for i in 0..atoms.len() {
                    if !alive[i] || can[i] {
                        continue;
                    }
                    if atoms[i].truth[b] {
                        can[i] = true;
                        grew = true;
                        continue;
                    }
                    if atoms[i].truth[eu] {
                        let ok = (0..atoms.len()).any(|j| {
                            alive[j] && can[j] && atoms[j].truth[eu] && edge(&atoms[i], &atoms[j])
                        }) || (0..atoms.len()).any(|j| {
                            alive[j] && can[j] && atoms[j].truth[b] && edge(&atoms[i], &atoms[j])
                        });
                        if ok {
                            can[i] = true;
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            for i in 0..atoms.len() {
                if alive[i] && atoms[i].truth[eu] && !can[i] {
                    alive[i] = false;
                    changed = true;
                }
            }
        }

        // AU fulfillment: least fixpoint per AU formula. H can A-fulfill if
        // b holds, or every EX obligation has a witness that also
        // A-fulfills, and at least one successor A-fulfills.
        for &(au, b) in &au_list {
            let mut can = vec![false; atoms.len()];
            loop {
                let mut grew = false;
                for i in 0..atoms.len() {
                    if !alive[i] || can[i] {
                        continue;
                    }
                    if atoms[i].truth[b] {
                        can[i] = true;
                        grew = true;
                        continue;
                    }
                    if !atoms[i].truth[au] {
                        continue;
                    }
                    let succs: Vec<usize> = (0..atoms.len())
                        .filter(|&j| alive[j] && edge(&atoms[i], &atoms[j]))
                        .collect();
                    let mut ok = succs.iter().any(|&j| can[j]);
                    if ok {
                        for &(ex, chi) in &ex_list {
                            if atoms[i].truth[ex]
                                && !succs.iter().any(|&j| can[j] && atoms[j].truth[chi])
                            {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        can[i] = true;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            for i in 0..atoms.len() {
                if alive[i] && atoms[i].truth[au] && !can[i] {
                    alive[i] = false;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    let survivors = alive.iter().filter(|a| **a).count();
    let sat = atoms
        .iter()
        .zip(alive.iter())
        .any(|(h, a)| *a && h.truth[root]);
    Ok(if sat {
        SatResult::Sat { atoms: survivors }
    } else {
        SatResult::Unsat
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: PropId) -> PFormula {
        PFormula::Prop(i)
    }

    fn sat(f: &PFormula) -> bool {
        is_satisfiable(f, 24).unwrap().is_sat()
    }

    #[test]
    fn boolean_base_cases() {
        assert!(sat(&p(0)));
        assert!(sat(&PFormula::not(p(0))));
        assert!(!sat(&PFormula::and([p(0), PFormula::not(p(0))])));
        assert!(sat(&PFormula::or([p(0), PFormula::not(p(0))])));
        assert!(!sat(&PFormula::False));
        assert!(sat(&PFormula::True));
    }

    #[test]
    fn modal_consistency() {
        // EX p & AX !p is unsat.
        let f = PFormula::and([
            PFormula::exists_path(PFormula::next(p(0))),
            PFormula::all_paths(PFormula::next(PFormula::not(p(0)))),
        ]);
        assert!(!sat(&f));
        // EX p & EX !p is sat (two successors).
        let g = PFormula::and([
            PFormula::exists_path(PFormula::next(p(0))),
            PFormula::exists_path(PFormula::next(PFormula::not(p(0)))),
        ]);
        assert!(sat(&g));
    }

    #[test]
    fn eventuality_vs_invariant() {
        // AG p & EF !p unsat.
        let f = PFormula::and([
            PFormula::all_paths(PFormula::always(p(0))),
            PFormula::exists_path(PFormula::eventually(PFormula::not(p(0)))),
        ]);
        assert!(!sat(&f));
        // AG p & EF p sat.
        let g = PFormula::and([
            PFormula::all_paths(PFormula::always(p(0))),
            PFormula::exists_path(PFormula::eventually(p(0))),
        ]);
        assert!(sat(&g));
    }

    #[test]
    fn af_eg_conflict() {
        // AF p & EG !p unsat.
        let f = PFormula::and([
            PFormula::all_paths(PFormula::eventually(p(0))),
            PFormula::exists_path(PFormula::always(PFormula::not(p(0)))),
        ]);
        assert!(!sat(&f));
        // AF p alone sat.
        assert!(sat(&PFormula::all_paths(PFormula::eventually(p(0)))));
        // EG !p alone sat.
        assert!(sat(&PFormula::exists_path(PFormula::always(
            PFormula::not(p(0))
        ))));
    }

    #[test]
    fn until_fulfillment() {
        // E(p U q) & AG !q unsat — the witness can never appear.
        let f = PFormula::and([
            PFormula::exists_path(PFormula::until(p(0), p(1))),
            PFormula::all_paths(PFormula::always(PFormula::not(p(1)))),
        ]);
        assert!(!sat(&f));
        // E(p U q) sat.
        assert!(sat(&PFormula::exists_path(PFormula::until(p(0), p(1)))));
        // A(p U q) & EG !q unsat.
        let g = PFormula::and([
            PFormula::all_paths(PFormula::until(p(0), p(1))),
            PFormula::exists_path(PFormula::always(PFormula::not(p(1)))),
        ]);
        assert!(!sat(&g));
    }

    #[test]
    fn navigational_patterns() {
        // AG EF home — always able to return home: sat.
        let f = PFormula::all_paths(PFormula::always(PFormula::exists_path(
            PFormula::eventually(p(0)),
        )));
        assert!(sat(&f));
        // p & AG (p -> AX !p) & AG (!p -> AX p): alternation — sat.
        let alt = PFormula::and([
            p(0),
            PFormula::all_paths(PFormula::always(PFormula::implies(
                p(0),
                PFormula::all_paths(PFormula::next(PFormula::not(p(0)))),
            ))),
            PFormula::all_paths(PFormula::always(PFormula::implies(
                PFormula::not(p(0)),
                PFormula::all_paths(PFormula::next(p(0))),
            ))),
        ]);
        assert!(sat(&alt));
        // ... and together with AG p it is unsat.
        let bad = PFormula::and([alt, PFormula::all_paths(PFormula::always(p(0)))]);
        assert!(!sat(&bad));
    }

    #[test]
    fn deep_nesting() {
        // AG (p -> EX E(q U r)) & EF p : sat
        let f = PFormula::and([
            PFormula::all_paths(PFormula::always(PFormula::implies(
                p(0),
                PFormula::exists_path(PFormula::next(PFormula::exists_path(PFormula::until(
                    p(1),
                    p(2),
                )))),
            ))),
            PFormula::exists_path(PFormula::eventually(p(0))),
        ]);
        assert!(sat(&f));
    }

    #[test]
    fn rejects_ctl_star() {
        let f = PFormula::all_paths(PFormula::eventually(PFormula::always(p(0))));
        assert!(is_satisfiable(&f, 24).is_err());
    }

    #[test]
    fn too_large_guard() {
        let mut parts = Vec::new();
        for i in 0..30 {
            parts.push(PFormula::exists_path(PFormula::next(p(i))));
        }
        let f = PFormula::and(parts);
        assert!(matches!(
            is_satisfiable(&f, 10),
            Err(SatError::TooLarge { .. })
        ));
    }

    #[test]
    fn validity_via_unsat_negation() {
        // AG p -> p is valid: ¬(AGp -> p) = AGp & ¬p unsat.
        let f = PFormula::and([
            PFormula::all_paths(PFormula::always(p(0))),
            PFormula::not(p(0)),
        ]);
        assert!(!sat(&f));
        // EX true is valid (total relation): ¬EXtrue = AX false unsat.
        let g = PFormula::all_paths(PFormula::next(PFormula::False));
        assert!(!sat(&g));
    }
}
