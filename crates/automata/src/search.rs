//! Generic accepting-lasso search over implicit graphs.
//!
//! The Periodic-Run Lemma (Appendix A.1) reduces "some run violates φ" to
//! "some *periodic* run violates φ": an accepting cycle reachable from an
//! initial node in the product of the system with the Büchi automaton for
//! ¬φ. This module provides that search as a reusable nested DFS
//! (Courcoubetis–Vardi–Wolper–Yannakakis) over *implicit* graphs — the
//! symbolic verifier never materializes its state space up front.

use std::collections::BTreeSet;

/// Result of the lasso search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchResult<N> {
    /// No accepting lasso exists (the product language is empty).
    Empty {
        /// Number of distinct nodes explored.
        explored: usize,
    },
    /// An accepting lasso was found: `stem` leads from an initial node to
    /// the cycle entry; `cycle` returns to the first node of itself and
    /// contains an accepting node.
    Lasso {
        /// Path from an initial node to the start of the cycle (inclusive).
        stem: Vec<N>,
        /// The cycle, starting and "ending" at `stem.last()` (the closing
        /// edge back to `cycle[0] == stem.last()` is implicit).
        cycle: Vec<N>,
    },
    /// The node budget was exhausted before the search finished.
    LimitReached {
        /// The configured budget.
        limit: usize,
    },
}

impl<N> SearchResult<N> {
    /// True when a counterexample lasso was found.
    pub fn is_lasso(&self) -> bool {
        matches!(self, SearchResult::Lasso { .. })
    }
}

/// Nested depth-first search for an accepting lasso.
///
/// * `inits` — the initial nodes.
/// * `succ` — successor function (the implicit edge relation).
/// * `accepting` — Büchi acceptance predicate on nodes.
/// * `limit` — optional cap on distinct explored nodes.
pub fn find_accepting_lasso<N, FS, FA>(
    inits: Vec<N>,
    mut succ: FS,
    accepting: FA,
    limit: Option<usize>,
) -> SearchResult<N>
where
    N: Clone + Ord + std::fmt::Debug,
    FS: FnMut(&N) -> Vec<N>,
    FA: Fn(&N) -> bool,
{
    let mut blue: BTreeSet<N> = BTreeSet::new();
    let mut red: BTreeSet<N> = BTreeSet::new();

    // Outer DFS, iterative with explicit frames so deep graphs are safe.
    struct Frame<N> {
        node: N,
        children: Vec<N>,
        next_child: usize,
    }

    for init in inits {
        if blue.contains(&init) {
            continue;
        }
        if let Some(l) = limit {
            if blue.len() >= l {
                return SearchResult::LimitReached { limit: l };
            }
        }
        blue.insert(init.clone());
        let mut stack: Vec<Frame<N>> = vec![Frame {
            children: succ(&init),
            node: init,
            next_child: 0,
        }];
        let mut on_stack: BTreeSet<N> = BTreeSet::new();
        on_stack.insert(stack[0].node.clone());

        while let Some(top) = stack.last_mut() {
            if top.next_child < top.children.len() {
                let child = top.children[top.next_child].clone();
                top.next_child += 1;
                if !blue.contains(&child) {
                    if let Some(l) = limit {
                        if blue.len() >= l {
                            return SearchResult::LimitReached { limit: l };
                        }
                    }
                    blue.insert(child.clone());
                    on_stack.insert(child.clone());
                    let kids = succ(&child);
                    stack.push(Frame { node: child, children: kids, next_child: 0 });
                }
            } else {
                // Post-order: if accepting, run the inner (red) DFS.
                let node = top.node.clone();
                if accepting(&node) && !red.contains(&node) {
                    if let Some(cycle) =
                        red_dfs(&node, &mut succ, &mut red, &on_stack, limit, blue.len())
                    {
                        // Reconstruct the stem from the outer stack.
                        let mut stem: Vec<N> =
                            stack.iter().map(|f| f.node.clone()).collect();
                        // `cycle` closes at some node t on the outer stack;
                        // rotate so it starts and ends at the seed node.
                        let seed = node.clone();
                        // stem currently ends at `seed` (it is the top).
                        debug_assert_eq!(stem.last(), Some(&seed));
                        // cycle = seed -> ... -> t; complete it along the
                        // outer stack from t back down to seed.
                        let t = cycle.last().expect("nonempty").clone();
                        let mut full_cycle = cycle;
                        if t != seed {
                            let pos = stack
                                .iter()
                                .position(|f| f.node == t)
                                .expect("closing node is on the outer stack");
                            for f in &stack[pos + 1..] {
                                full_cycle.push(f.node.clone());
                            }
                            debug_assert_eq!(full_cycle.last(), Some(&seed));
                        }
                        // Drop the duplicated seed at the end.
                        full_cycle.pop();
                        stem.pop();
                        return SearchResult::Lasso {
                            stem,
                            cycle: {
                                let mut c = vec![seed];
                                c.extend(full_cycle.into_iter().skip(1));
                                c
                            },
                        };
                    }
                }
                on_stack.remove(&node);
                stack.pop();
            }
        }
    }
    SearchResult::Empty { explored: blue.len() }
}

/// Inner DFS from an accepting seed; returns a path `seed -> … -> t` where
/// `t` is on the outer stack (so a cycle through the seed exists), or
/// `None`.
fn red_dfs<N, FS>(
    seed: &N,
    succ: &mut FS,
    red: &mut BTreeSet<N>,
    on_outer_stack: &BTreeSet<N>,
    limit: Option<usize>,
    blue_count: usize,
) -> Option<Vec<N>>
where
    N: Clone + Ord,
    FS: FnMut(&N) -> Vec<N>,
{
    struct Frame<N> {
        node: N,
        children: Vec<N>,
        next_child: usize,
    }
    red.insert(seed.clone());
    let mut stack = vec![Frame { children: succ(seed), node: seed.clone(), next_child: 0 }];
    while let Some(top) = stack.last_mut() {
        if top.next_child < top.children.len() {
            let child = top.children[top.next_child].clone();
            top.next_child += 1;
            if on_outer_stack.contains(&child) {
                // Found the closing edge: path is the red stack + child.
                let mut path: Vec<N> = stack.iter().map(|f| f.node.clone()).collect();
                path.push(child);
                return Some(path);
            }
            if !red.contains(&child) {
                if let Some(l) = limit {
                    if red.len() + blue_count >= l.saturating_mul(2) {
                        return None; // red exploration budget tied to limit
                    }
                }
                red.insert(child.clone());
                let kids = succ(&child);
                stack.push(Frame { node: child, children: kids, next_child: 0 });
            }
        } else {
            stack.pop();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Explicit little graphs for testing: adjacency lists.
    fn run(
        n: usize,
        edges: &[(usize, usize)],
        inits: &[usize],
        acc: &[usize],
    ) -> SearchResult<usize> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
        }
        let accset: BTreeSet<usize> = acc.iter().copied().collect();
        find_accepting_lasso(
            inits.to_vec(),
            |u| adj[*u].clone(),
            |u| accset.contains(u),
            None,
        )
    }

    #[test]
    fn empty_graph() {
        let r = run(3, &[(0, 1)], &[0], &[2]);
        assert_eq!(r, SearchResult::Empty { explored: 2 });
    }

    #[test]
    fn self_loop_on_accepting() {
        let r = run(2, &[(0, 1), (1, 1)], &[0], &[1]);
        match r {
            SearchResult::Lasso { stem, cycle } => {
                assert_eq!(stem, vec![0]);
                assert_eq!(cycle, vec![1]);
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn cycle_through_accepting() {
        // 0 -> 1 -> 2 -> 1, accepting 2
        let r = run(3, &[(0, 1), (1, 2), (2, 1)], &[0], &[2]);
        match r {
            SearchResult::Lasso { stem, cycle } => {
                // cycle starts at the accepting seed 2 and returns via 1
                assert_eq!(cycle[0], 2);
                assert!(cycle.contains(&1));
                assert!(!stem.contains(&2));
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn accepting_not_on_cycle_rejected() {
        // 0 -> 1(acc) -> 2 -> 2 : the only cycle avoids the accepting node
        let r = run(3, &[(0, 1), (1, 2), (2, 2)], &[0], &[1]);
        assert!(matches!(r, SearchResult::Empty { .. }));
    }

    #[test]
    fn cycle_without_accepting_rejected() {
        let r = run(3, &[(0, 1), (1, 0)], &[0], &[2]);
        assert!(matches!(r, SearchResult::Empty { .. }));
    }

    #[test]
    fn multiple_inits() {
        let r = run(4, &[(0, 0), (1, 2), (2, 3), (3, 2)], &[0, 1], &[3]);
        assert!(r.is_lasso());
    }

    #[test]
    fn limit_stops_search() {
        // infinite-ish wide graph via counter nodes
        let r = find_accepting_lasso(
            vec![0usize],
            |u| vec![u + 1],
            |_| false,
            Some(100),
        );
        assert_eq!(r, SearchResult::LimitReached { limit: 100 });
    }

    #[test]
    fn lasso_validity_invariant() {
        // For any found lasso: consecutive stem/cycle nodes are edges and
        // cycle closes.
        let n = 6;
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (2, 5), (5, 5)];
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
        }
        let acc = BTreeSet::from([4]);
        let r = find_accepting_lasso(
            vec![0usize],
            |u| adj[*u].clone(),
            |u| acc.contains(u),
            None,
        );
        match r {
            SearchResult::Lasso { stem, cycle } => {
                let edge = |a: usize, b: usize| adj[a].contains(&b);
                let mut prev: Option<usize> = None;
                for &s in stem.iter().chain(cycle.iter()) {
                    if let Some(p) = prev {
                        assert!(edge(p, s), "missing edge {p}->{s}");
                    }
                    prev = Some(s);
                }
                assert!(edge(*cycle.last().unwrap(), cycle[0]), "cycle must close");
                assert!(cycle.iter().any(|u| acc.contains(u)));
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }
}
