//! Generic accepting-lasso search over implicit graphs.
//!
//! The Periodic-Run Lemma (Appendix A.1) reduces "some run violates φ" to
//! "some *periodic* run violates φ": an accepting cycle reachable from an
//! initial node in the product of the system with the Büchi automaton for
//! ¬φ. This module provides that search over *implicit* graphs — the
//! symbolic verifier never materializes its state space up front — in two
//! flavours:
//!
//! * [`find_accepting_lasso`] / [`find_accepting_lasso_stats`]: nested DFS
//!   (Courcoubetis–Vardi–Wolper–Yannakakis);
//! * [`find_accepting_scc`]: Tarjan SCC decomposition, returning a lasso
//!   through the first accepting component.
//!
//! Both operate on **interned node ids** ([`crate::interner::Interner`]):
//! each distinct node is hashed once, visited sets are bit vectors, and
//! successor generation is **memoized per node** — the red (inner) DFS of
//! the nested search reuses the successor lists the blue (outer) DFS
//! computed, instead of re-deriving them. [`SearchStats`] reports the
//! interning, memoization, and timing counters.
//!
//! Node budgets are sound: exhausting `limit` — in either DFS phase —
//! always surfaces as [`SearchResult::LimitReached`], never as a spurious
//! "empty" answer.

use std::hash::Hash;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::interner::Interner;

/// Counters describing one search (or one verification run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct nodes interned (discovered, whether or not expanded).
    pub nodes_interned: usize,
    /// Times a node was re-derived and found already interned.
    pub dedup_hits: u64,
    /// Distinct nodes whose successor list was computed and cached.
    pub successors_memoized: usize,
    /// Times a cached successor list was reused instead of recomputed.
    pub memo_hits: u64,
    /// Peak size of the search frontier (BFS layer width, or the deepest
    /// DFS stack, whichever the phase uses).
    pub peak_frontier: usize,
    /// Successor lists computed *ahead of* the search by overlap
    /// prefetch workers (zero when no workers ran). Scheduling-dependent:
    /// varies run to run and across thread counts, never the verdict.
    pub prefetched: usize,
    /// Search-side successor lookups served by a worker-prefetched entry.
    /// Scheduling-dependent, like [`SearchStats::prefetched`].
    pub prefetch_hits: u64,
    /// Wall time of the verdict-producing search phase.
    pub search_wall: Duration,
    /// Rules removed by the cone-of-influence slicer before the search
    /// (zero when slicing was off, refused, or not applicable).
    pub sliced_rules: usize,
    /// Schema relations removed by the cone-of-influence slicer.
    pub sliced_relations: usize,
    /// True when the verdict was replayed from a digest-keyed
    /// incremental tier instead of being searched for: the submitted
    /// property's cone-sliced service matched a previously verified
    /// one, so the prior verdict bytes were returned without consuming
    /// any search budget (every search counter above is zero).
    pub incremental: bool,
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interned {} (dedup {}), memoized {} (hits {}), peak frontier {}, \
             prefetched {} (hits {}), sliced {} rules / {} relations, search {:?}{}",
            self.nodes_interned,
            self.dedup_hits,
            self.successors_memoized,
            self.memo_hits,
            self.peak_frontier,
            self.prefetched,
            self.prefetch_hits,
            self.sliced_rules,
            self.sliced_relations,
            self.search_wall,
            if self.incremental {
                " [incremental replay]"
            } else {
                ""
            },
        )
    }
}

/// Result of the lasso search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchResult<N> {
    /// No accepting lasso exists (the product language is empty).
    Empty {
        /// Number of distinct nodes explored.
        explored: usize,
    },
    /// An accepting lasso was found: `stem` leads from an initial node to
    /// the cycle entry; `cycle` returns to the first node of itself and
    /// contains an accepting node.
    Lasso {
        /// Path from an initial node to the start of the cycle (exclusive).
        stem: Vec<N>,
        /// The cycle, starting at its entry node (the closing edge back to
        /// `cycle[0]` is implicit).
        cycle: Vec<N>,
    },
    /// The node budget was exhausted before the search finished.
    LimitReached {
        /// The configured budget.
        limit: usize,
    },
    /// The search was cancelled cooperatively (explicit cancel or
    /// deadline expiry on the supplied [`CancelToken`]) before an answer
    /// was reached. Like `LimitReached`, the answer is unknown.
    Cancelled,
}

impl<N> SearchResult<N> {
    /// True when a counterexample lasso was found.
    pub fn is_lasso(&self) -> bool {
        matches!(self, SearchResult::Lasso { .. })
    }
}

/// Shared machinery of both searches: the interner, the per-node
/// successor memo, the budget, and the cancellation token.
struct Core<N, FS> {
    interner: Interner<N>,
    /// Successor ids per node id, computed at most once per node.
    memo: Vec<Option<Vec<u32>>>,
    succ: FS,
    limit: Option<usize>,
    limit_hit: bool,
    cancel: CancelToken,
    cancel_hit: bool,
    memo_hits: u64,
    memoized: usize,
}

impl<N, FS> Core<N, FS>
where
    N: Clone + Eq + Hash,
    FS: FnMut(&N) -> Vec<N>,
{
    fn new(succ: FS, limit: Option<usize>, cancel: &CancelToken) -> Self {
        Core {
            interner: Interner::new(),
            memo: Vec::new(),
            succ,
            limit,
            limit_hit: false,
            cancel: cancel.clone(),
            cancel_hit: false,
            memo_hits: 0,
            memoized: 0,
        }
    }

    fn intern(&mut self, node: N) -> u32 {
        let (id, _) = self.interner.intern(node);
        if self.memo.len() < self.interner.len() {
            self.memo.resize(self.interner.len(), None);
        }
        if let Some(l) = self.limit {
            if self.interner.len() > l {
                self.limit_hit = true;
            }
        }
        id
    }

    /// Successor ids of `id` — memoized, so the red DFS reuses lists the
    /// blue DFS already derived. Expansion is the cancellation point:
    /// the token is polled once per call.
    fn succs(&mut self, id: u32) -> Vec<u32> {
        if self.cancel.is_cancelled() {
            self.cancel_hit = true;
            return Vec::new();
        }
        if let Some(v) = &self.memo[id as usize] {
            self.memo_hits += 1;
            return v.clone();
        }
        let node = self.interner.get(id).clone();
        let ids: Vec<u32> = (self.succ)(&node)
            .into_iter()
            .map(|k| self.intern(k))
            .collect();
        self.memo[id as usize] = Some(ids.clone());
        self.memoized += 1;
        ids
    }

    /// True when the search must unwind (budget exhausted or cancelled).
    fn stopped(&self) -> bool {
        self.limit_hit || self.cancel_hit
    }

    fn stats(&self, peak_frontier: usize, started: Instant) -> SearchStats {
        SearchStats {
            nodes_interned: self.interner.len(),
            dedup_hits: self.interner.dedup_hits(),
            successors_memoized: self.memoized,
            memo_hits: self.memo_hits,
            peak_frontier,
            prefetched: 0,
            prefetch_hits: 0,
            search_wall: started.elapsed(),
            sliced_rules: 0,
            sliced_relations: 0,
            incremental: false,
        }
    }

    /// The outcome to report when [`Core::stopped`] fired. Cancellation
    /// takes precedence: a cancelled search reports `Cancelled` even if
    /// the budget was also exhausted.
    fn stop_result<T>(&self) -> SearchResult<T> {
        if self.cancel_hit {
            SearchResult::Cancelled
        } else {
            SearchResult::LimitReached {
                limit: self.limit.expect("limit was configured"),
            }
        }
    }
}

fn mark(v: &mut Vec<bool>, id: u32) {
    let i = id as usize;
    if v.len() <= i {
        v.resize(i + 1, false);
    }
    v[i] = true;
}

fn unmark(v: &mut [bool], id: u32) {
    v[id as usize] = false;
}

fn has(v: &[bool], id: u32) -> bool {
    v.get(id as usize).copied().unwrap_or(false)
}

struct Frame {
    id: u32,
    children: Vec<u32>,
    next_child: usize,
}

/// Nested depth-first search for an accepting lasso.
///
/// * `inits` — the initial nodes.
/// * `succ` — successor function (the implicit edge relation).
/// * `accepting` — Büchi acceptance predicate on nodes.
/// * `limit` — optional cap on distinct interned nodes.
pub fn find_accepting_lasso<N, FS, FA>(
    inits: Vec<N>,
    succ: FS,
    accepting: FA,
    limit: Option<usize>,
) -> SearchResult<N>
where
    N: Clone + Eq + Hash + std::fmt::Debug,
    FS: FnMut(&N) -> Vec<N>,
    FA: Fn(&N) -> bool,
{
    find_accepting_lasso_stats(inits, succ, accepting, limit).0
}

/// [`find_accepting_lasso`] with the search counters.
pub fn find_accepting_lasso_stats<N, FS, FA>(
    inits: Vec<N>,
    succ: FS,
    accepting: FA,
    limit: Option<usize>,
) -> (SearchResult<N>, SearchStats)
where
    N: Clone + Eq + Hash + std::fmt::Debug,
    FS: FnMut(&N) -> Vec<N>,
    FA: Fn(&N) -> bool,
{
    find_accepting_lasso_stats_with(inits, succ, accepting, limit, &CancelToken::never())
}

/// [`find_accepting_lasso_stats`] with a cooperative [`CancelToken`]:
/// the token is polled at every node expansion, and a fired token makes
/// the search unwind with [`SearchResult::Cancelled`] — an inconclusive
/// answer, like a budget hit, never a spurious "empty".
pub fn find_accepting_lasso_stats_with<N, FS, FA>(
    inits: Vec<N>,
    succ: FS,
    accepting: FA,
    limit: Option<usize>,
    cancel: &CancelToken,
) -> (SearchResult<N>, SearchStats)
where
    N: Clone + Eq + Hash + std::fmt::Debug,
    FS: FnMut(&N) -> Vec<N>,
    FA: Fn(&N) -> bool,
{
    let started = Instant::now();
    let mut core = Core::new(succ, limit, cancel);
    let mut blue: Vec<bool> = Vec::new();
    let mut red: Vec<bool> = Vec::new();
    let mut blue_count = 0usize;
    let mut peak_depth = 0usize;

    let init_ids: Vec<u32> = inits.into_iter().map(|n| core.intern(n)).collect();
    if core.stopped() || core.cancel.is_cancelled() {
        core.cancel_hit |= core.cancel.is_cancelled();
        return (core.stop_result(), core.stats(peak_depth, started));
    }

    for init in init_ids {
        if has(&blue, init) {
            continue;
        }
        mark(&mut blue, init);
        blue_count += 1;
        let kids = core.succs(init);
        if core.stopped() {
            return (core.stop_result(), core.stats(peak_depth, started));
        }
        let mut stack = vec![Frame {
            id: init,
            children: kids,
            next_child: 0,
        }];
        let mut on_stack: Vec<bool> = Vec::new();
        mark(&mut on_stack, init);
        peak_depth = peak_depth.max(stack.len());

        while let Some(top) = stack.last_mut() {
            if top.next_child < top.children.len() {
                let child = top.children[top.next_child];
                top.next_child += 1;
                if !has(&blue, child) {
                    mark(&mut blue, child);
                    blue_count += 1;
                    mark(&mut on_stack, child);
                    let kids = core.succs(child);
                    if core.stopped() {
                        return (core.stop_result(), core.stats(peak_depth, started));
                    }
                    stack.push(Frame {
                        id: child,
                        children: kids,
                        next_child: 0,
                    });
                    peak_depth = peak_depth.max(stack.len());
                }
            } else {
                // Post-order: if accepting, run the inner (red) DFS.
                let nid = top.id;
                if accepting(core.interner.get(nid)) && !has(&red, nid) {
                    match red_dfs(&mut core, nid, &mut red, &on_stack) {
                        RedOutcome::Cycle(path) => {
                            let (stem, cycle) = build_lasso(&core.interner, &stack, path);
                            return (
                                SearchResult::Lasso { stem, cycle },
                                core.stats(peak_depth, started),
                            );
                        }
                        RedOutcome::Stopped => {
                            return (core.stop_result(), core.stats(peak_depth, started));
                        }
                        RedOutcome::NoCycle => {}
                    }
                }
                unmark(&mut on_stack, nid);
                stack.pop();
            }
        }
    }
    (
        SearchResult::Empty {
            explored: blue_count,
        },
        core.stats(peak_depth, started),
    )
}

enum RedOutcome {
    /// Id path `seed -> … -> t` where `t` is on the outer stack.
    Cycle(Vec<u32>),
    /// The node budget was exhausted (or the token cancelled) mid-phase —
    /// the answer is unknown, and must NOT be reported as "no cycle".
    Stopped,
    NoCycle,
}

/// Inner DFS from an accepting seed. Reuses the memoized successor lists,
/// so re-expansion is free for nodes the blue DFS already visited.
fn red_dfs<N, FS>(
    core: &mut Core<N, FS>,
    seed: u32,
    red: &mut Vec<bool>,
    on_outer_stack: &[bool],
) -> RedOutcome
where
    N: Clone + Eq + Hash,
    FS: FnMut(&N) -> Vec<N>,
{
    mark(red, seed);
    let kids = core.succs(seed);
    if core.stopped() {
        return RedOutcome::Stopped;
    }
    let mut stack = vec![Frame {
        id: seed,
        children: kids,
        next_child: 0,
    }];
    while let Some(top) = stack.last_mut() {
        if top.next_child < top.children.len() {
            let child = top.children[top.next_child];
            top.next_child += 1;
            if has(on_outer_stack, child) {
                // Found the closing edge: path is the red stack + child.
                let mut path: Vec<u32> = stack.iter().map(|f| f.id).collect();
                path.push(child);
                return RedOutcome::Cycle(path);
            }
            if !has(red, child) {
                mark(red, child);
                let kids = core.succs(child);
                if core.stopped() {
                    return RedOutcome::Stopped;
                }
                stack.push(Frame {
                    id: child,
                    children: kids,
                    next_child: 0,
                });
            }
        } else {
            stack.pop();
        }
    }
    RedOutcome::NoCycle
}

/// Reconstructs the lasso from the outer DFS stack and the red path
/// `seed -> … -> t` (with `t` on the outer stack).
fn build_lasso<N: Clone>(
    interner: &Interner<N>,
    stack: &[Frame],
    path: Vec<u32>,
) -> (Vec<N>, Vec<N>) {
    let mut stem: Vec<u32> = stack.iter().map(|f| f.id).collect();
    let seed = *stem.last().expect("outer stack is nonempty");
    let t = *path.last().expect("red path is nonempty");
    let mut full_cycle = path;
    if t != seed {
        // Complete the cycle along the outer stack from t back to seed.
        let pos = stack
            .iter()
            .position(|f| f.id == t)
            .expect("closing node is on the outer stack");
        for f in &stack[pos + 1..] {
            full_cycle.push(f.id);
        }
        debug_assert_eq!(full_cycle.last(), Some(&seed));
    }
    full_cycle.pop(); // drop the duplicated seed at the end
    stem.pop();
    let cycle_ids: Vec<u32> = std::iter::once(seed)
        .chain(full_cycle.into_iter().skip(1))
        .collect();
    (
        stem.into_iter()
            .map(|id| interner.get(id).clone())
            .collect(),
        cycle_ids
            .into_iter()
            .map(|id| interner.get(id).clone())
            .collect(),
    )
}

/// Accepting-lasso search by Tarjan SCC decomposition.
///
/// Finds the first strongly connected component (in DFS completion order)
/// that contains an accepting node and a cycle, and returns a lasso
/// through it: the stem is a shortest path over the explored edges, the
/// cycle a shortest cycle through the smallest accepting member — both
/// deterministic. Agrees with [`find_accepting_lasso`] on emptiness;
/// useful as an independent oracle and when whole components matter.
pub fn find_accepting_scc<N, FS, FA>(
    inits: Vec<N>,
    succ: FS,
    accepting: FA,
    limit: Option<usize>,
) -> (SearchResult<N>, SearchStats)
where
    N: Clone + Eq + Hash + std::fmt::Debug,
    FS: FnMut(&N) -> Vec<N>,
    FA: Fn(&N) -> bool,
{
    find_accepting_scc_with(inits, succ, accepting, limit, &CancelToken::never())
}

/// [`find_accepting_scc`] with a cooperative [`CancelToken`] (polled at
/// every node expansion; a fired token yields [`SearchResult::Cancelled`]).
pub fn find_accepting_scc_with<N, FS, FA>(
    inits: Vec<N>,
    succ: FS,
    accepting: FA,
    limit: Option<usize>,
    cancel: &CancelToken,
) -> (SearchResult<N>, SearchStats)
where
    N: Clone + Eq + Hash + std::fmt::Debug,
    FS: FnMut(&N) -> Vec<N>,
    FA: Fn(&N) -> bool,
{
    let started = Instant::now();
    let mut core = Core::new(succ, limit, cancel);
    let init_ids: Vec<u32> = inits.into_iter().map(|n| core.intern(n)).collect();
    if core.stopped() || core.cancel.is_cancelled() {
        core.cancel_hit |= core.cancel.is_cancelled();
        return (core.stop_result(), core.stats(0, started));
    }

    let mut index: Vec<Option<u32>> = Vec::new();
    let mut low: Vec<u32> = Vec::new();
    let mut on_stk: Vec<bool> = Vec::new();
    let mut stk: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut peak_depth = 0usize;
    let mut visited = 0usize;

    let set_index = |index: &mut Vec<Option<u32>>, low: &mut Vec<u32>, id: u32, v: u32| {
        let i = id as usize;
        if index.len() <= i {
            index.resize(i + 1, None);
            low.resize(i + 1, 0);
        }
        index[i] = Some(v);
        low[i] = v;
    };

    for &root in &init_ids {
        if index
            .get(root as usize)
            .map(|x| x.is_some())
            .unwrap_or(false)
        {
            continue;
        }
        set_index(&mut index, &mut low, root, next_index);
        next_index += 1;
        visited += 1;
        stk.push(root);
        mark(&mut on_stk, root);
        let kids = core.succs(root);
        if core.stopped() {
            return (core.stop_result(), core.stats(peak_depth, started));
        }
        let mut frames = vec![Frame {
            id: root,
            children: kids,
            next_child: 0,
        }];
        peak_depth = peak_depth.max(frames.len());

        while let Some(top) = frames.last_mut() {
            if top.next_child < top.children.len() {
                let w = top.children[top.next_child];
                top.next_child += 1;
                let w_index = index.get(w as usize).copied().flatten();
                match w_index {
                    None => {
                        set_index(&mut index, &mut low, w, next_index);
                        next_index += 1;
                        visited += 1;
                        stk.push(w);
                        mark(&mut on_stk, w);
                        let kids = core.succs(w);
                        if core.stopped() {
                            return (core.stop_result(), core.stats(peak_depth, started));
                        }
                        frames.push(Frame {
                            id: w,
                            children: kids,
                            next_child: 0,
                        });
                        peak_depth = peak_depth.max(frames.len());
                    }
                    Some(wi) if has(&on_stk, w) => {
                        let v = top.id as usize;
                        low[v] = low[v].min(wi);
                    }
                    Some(_) => {}
                }
            } else {
                let v = top.id;
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.id as usize;
                    low[p] = low[p].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize].expect("indexed") {
                    // Pop the component rooted at v.
                    let mut comp = Vec::new();
                    loop {
                        let w = stk.pop().expect("component members are on the stack");
                        unmark(&mut on_stk, w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    let has_cycle = comp.len() > 1
                        || core.memo[v as usize]
                            .as_ref()
                            .map(|s| s.contains(&v))
                            .unwrap_or(false);
                    let seed = comp
                        .iter()
                        .copied()
                        .find(|&w| accepting(core.interner.get(w)));
                    if let (true, Some(seed)) = (has_cycle, seed) {
                        let (stem, cycle) = scc_lasso(&core, &init_ids, &comp, seed);
                        return (
                            SearchResult::Lasso { stem, cycle },
                            core.stats(peak_depth, started),
                        );
                    }
                }
            }
        }
    }
    (
        SearchResult::Empty { explored: visited },
        core.stats(peak_depth, started),
    )
}

/// Builds a deterministic lasso through `seed` (an accepting member of
/// the SCC `comp`) from the memoized edges: shortest stem from the
/// initial nodes, shortest cycle inside the component.
fn scc_lasso<N, FS>(core: &Core<N, FS>, inits: &[u32], comp: &[u32], seed: u32) -> (Vec<N>, Vec<N>)
where
    N: Clone + Eq + Hash,
{
    let kids = |id: u32| -> &[u32] {
        core.memo
            .get(id as usize)
            .and_then(|m| m.as_deref())
            .unwrap_or(&[])
    };

    // Stem: BFS from the initial nodes to the seed over explored edges.
    let mut parent: Vec<Option<u32>> = vec![None; core.interner.len()];
    let mut seen: Vec<bool> = vec![false; core.interner.len()];
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    for &i in inits {
        if !seen[i as usize] {
            seen[i as usize] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        if u == seed {
            break;
        }
        for &w in kids(u) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = Some(u);
                queue.push_back(w);
            }
        }
    }
    let mut stem_ids = vec![seed];
    while let Some(p) = parent[*stem_ids.last().expect("nonempty") as usize] {
        stem_ids.push(p);
    }
    stem_ids.reverse();
    stem_ids.pop(); // the seed starts the cycle, not the stem

    // Cycle: shortest path seed -> seed inside the component.
    let in_comp = |w: u32| comp.binary_search(&w).is_ok();
    let cycle_ids = if kids(seed).contains(&seed) {
        vec![seed]
    } else {
        let mut parent: Vec<Option<u32>> = vec![None; core.interner.len()];
        let mut seen: Vec<bool> = vec![false; core.interner.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut closer = None;
        for &w in kids(seed) {
            if in_comp(w) && !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &w in kids(u) {
                if w == seed {
                    closer = Some(u);
                    break;
                }
                if in_comp(w) && !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = Some(u);
                    queue.push_back(w);
                }
            }
            if closer.is_some() {
                break;
            }
        }
        let mut back = vec![closer.expect("an SCC with >1 node closes through seed")];
        while let Some(p) = parent[*back.last().expect("nonempty") as usize] {
            back.push(p);
        }
        back.push(seed);
        back.reverse();
        back
    };

    (
        stem_ids
            .into_iter()
            .map(|id| core.interner.get(id).clone())
            .collect(),
        cycle_ids
            .into_iter()
            .map(|id| core.interner.get(id).clone())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Explicit little graphs for testing: adjacency lists.
    fn run(
        n: usize,
        edges: &[(usize, usize)],
        inits: &[usize],
        acc: &[usize],
    ) -> SearchResult<usize> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
        }
        let accset: BTreeSet<usize> = acc.iter().copied().collect();
        find_accepting_lasso(
            inits.to_vec(),
            |u| adj[*u].clone(),
            |u| accset.contains(u),
            None,
        )
    }

    fn run_scc(
        n: usize,
        edges: &[(usize, usize)],
        inits: &[usize],
        acc: &[usize],
    ) -> SearchResult<usize> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
        }
        let accset: BTreeSet<usize> = acc.iter().copied().collect();
        find_accepting_scc(
            inits.to_vec(),
            |u| adj[*u].clone(),
            |u| accset.contains(u),
            None,
        )
        .0
    }

    #[test]
    fn empty_graph() {
        let r = run(3, &[(0, 1)], &[0], &[2]);
        assert_eq!(r, SearchResult::Empty { explored: 2 });
    }

    #[test]
    fn self_loop_on_accepting() {
        let r = run(2, &[(0, 1), (1, 1)], &[0], &[1]);
        match r {
            SearchResult::Lasso { stem, cycle } => {
                assert_eq!(stem, vec![0]);
                assert_eq!(cycle, vec![1]);
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn cycle_through_accepting() {
        // 0 -> 1 -> 2 -> 1, accepting 2
        let r = run(3, &[(0, 1), (1, 2), (2, 1)], &[0], &[2]);
        match r {
            SearchResult::Lasso { stem, cycle } => {
                // cycle starts at the accepting seed 2 and returns via 1
                assert_eq!(cycle[0], 2);
                assert!(cycle.contains(&1));
                assert!(!stem.contains(&2));
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn accepting_not_on_cycle_rejected() {
        // 0 -> 1(acc) -> 2 -> 2 : the only cycle avoids the accepting node
        let r = run(3, &[(0, 1), (1, 2), (2, 2)], &[0], &[1]);
        assert!(matches!(r, SearchResult::Empty { .. }));
    }

    #[test]
    fn cycle_without_accepting_rejected() {
        let r = run(3, &[(0, 1), (1, 0)], &[0], &[2]);
        assert!(matches!(r, SearchResult::Empty { .. }));
    }

    #[test]
    fn multiple_inits() {
        let r = run(4, &[(0, 0), (1, 2), (2, 3), (3, 2)], &[0, 1], &[3]);
        assert!(r.is_lasso());
    }

    #[test]
    fn limit_stops_search() {
        // infinite-ish wide graph via counter nodes
        let r = find_accepting_lasso(vec![0usize], |u| vec![u + 1], |_| false, Some(100));
        assert_eq!(r, SearchResult::LimitReached { limit: 100 });
    }

    #[test]
    fn limit_exhausted_in_red_phase_is_not_empty() {
        // The accepting node sits on a cycle whose closing edge the red
        // DFS only reaches after expanding a long chain of fresh nodes.
        // With a budget that the blue phase survives but the red phase
        // exhausts, the answer must be LimitReached — never Empty (which
        // the caller would report as "property holds").
        //
        // Graph: 0(acc,init) -> 1 -> 2 -> … -> k -> 0; blue DFS interns
        // the chain, red DFS starts at 0 and must re-walk it. Budget
        // exactly the chain length: blue finishes, the search must not
        // claim emptiness anywhere. (With memoized successors the red
        // walk is cheap, but the *budget* semantics are what we pin.)
        let k = 50usize;
        let r = find_accepting_lasso(
            vec![0usize],
            |&u| vec![if u == k { 0 } else { u + 1 }],
            |&u| u == 0,
            Some(k + 1),
        );
        // Budget admits the whole graph: the lasso must be found.
        assert!(r.is_lasso(), "{r:?}");
        // Budget below the graph: must be LimitReached, not Empty.
        let r = find_accepting_lasso(
            vec![0usize],
            |&u| vec![if u == k { 0 } else { u + 1 }],
            |&u| u == 0,
            Some(k / 2),
        );
        assert_eq!(r, SearchResult::LimitReached { limit: k / 2 });
    }

    #[test]
    fn stats_count_interning_and_memo_reuse() {
        // 0 -> 1 -> 2 -> 1 (acc 2): red DFS re-expands 2 and 1 via memo.
        let adj = [vec![1usize], vec![2], vec![1]];
        let (r, stats) =
            find_accepting_lasso_stats(vec![0usize], |u| adj[*u].clone(), |u| *u == 2, None);
        assert!(r.is_lasso());
        assert_eq!(stats.nodes_interned, 3);
        assert!(stats.dedup_hits >= 1, "2 -> 1 rediscovers 1");
        assert_eq!(stats.successors_memoized, 3);
        assert!(stats.memo_hits >= 1, "red phase must reuse blue lists");
        assert!(stats.peak_frontier >= 2);
    }

    #[test]
    fn lasso_validity_invariant() {
        // For any found lasso: consecutive stem/cycle nodes are edges and
        // cycle closes.
        let n = 6;
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (2, 5), (5, 5)];
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
        }
        let acc = BTreeSet::from([4]);
        let check = |r: SearchResult<usize>| match r {
            SearchResult::Lasso { stem, cycle } => {
                let edge = |a: usize, b: usize| adj[a].contains(&b);
                let mut prev: Option<usize> = None;
                for &s in stem.iter().chain(cycle.iter()) {
                    if let Some(p) = prev {
                        assert!(edge(p, s), "missing edge {p}->{s}");
                    }
                    prev = Some(s);
                }
                assert!(edge(*cycle.last().unwrap(), cycle[0]), "cycle must close");
                assert!(cycle.iter().any(|u| acc.contains(u)));
            }
            other => panic!("expected lasso, got {other:?}"),
        };
        check(find_accepting_lasso(
            vec![0usize],
            |u| adj[*u].clone(),
            |u| acc.contains(u),
            None,
        ));
        check(find_accepting_scc(vec![0usize], |u| adj[*u].clone(), |u| acc.contains(u), None).0);
    }

    type Case<'a> = (usize, &'a [(usize, usize)], &'a [usize], &'a [usize]);

    #[test]
    fn scc_agrees_with_nested_dfs_on_small_cases() {
        let cases: &[Case] = &[
            (3, &[(0, 1)], &[0], &[2]),
            (2, &[(0, 1), (1, 1)], &[0], &[1]),
            (3, &[(0, 1), (1, 2), (2, 1)], &[0], &[2]),
            (3, &[(0, 1), (1, 2), (2, 2)], &[0], &[1]),
            (3, &[(0, 1), (1, 0)], &[0], &[2]),
            (4, &[(0, 0), (1, 2), (2, 3), (3, 2)], &[0, 1], &[3]),
        ];
        for &(n, edges, inits, acc) in cases {
            let a = run(n, edges, inits, acc).is_lasso();
            let b = run_scc(n, edges, inits, acc).is_lasso();
            assert_eq!(a, b, "disagreement on n={n} edges={edges:?}");
        }
    }

    #[test]
    fn scc_agrees_with_nested_dfs_on_random_graphs() {
        // Tiny xorshift so this module needs no RNG dependency.
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for case in 0..200 {
            let n = 2 + (next() % 7) as usize;
            let m = (next() % 12) as usize;
            let mut adj = vec![Vec::new(); n];
            for _ in 0..m {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                adj[a].push(b);
            }
            let acc: BTreeSet<usize> = (0..n).filter(|_| next() % 3 == 0).collect();
            let a =
                find_accepting_lasso(vec![0usize], |u| adj[*u].clone(), |u| acc.contains(u), None);
            let (b, _) =
                find_accepting_scc(vec![0usize], |u| adj[*u].clone(), |u| acc.contains(u), None);
            assert_eq!(
                a.is_lasso(),
                b.is_lasso(),
                "case {case}: adj={adj:?} acc={acc:?}\nnested={a:?}\nscc={b:?}"
            );
        }
    }

    /// An unbounded chain graph: never terminates without a budget or a
    /// cancellation, so any non-stop result here would hang the test.
    fn chain_succ(u: &u64) -> Vec<u64> {
        vec![u + 1]
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled_nested() {
        let t = CancelToken::new();
        t.cancel();
        let (res, _) = find_accepting_lasso_stats_with(vec![0u64], chain_succ, |_| true, None, &t);
        assert_eq!(res, SearchResult::Cancelled);
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled_scc() {
        let t = CancelToken::new();
        t.cancel();
        let (res, _) = find_accepting_scc_with(vec![0u64], chain_succ, |_| true, None, &t);
        assert_eq!(res, SearchResult::Cancelled);
    }

    #[test]
    fn expired_deadline_cancels_mid_search() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        let (res, _) = find_accepting_lasso_stats_with(vec![0u64], chain_succ, |_| false, None, &t);
        assert_eq!(res, SearchResult::Cancelled);
        let (res, _) = find_accepting_scc_with(vec![0u64], chain_succ, |_| false, None, &t);
        assert_eq!(res, SearchResult::Cancelled);
    }

    #[test]
    fn cancellation_takes_precedence_over_limit() {
        let t = CancelToken::new();
        t.cancel();
        let (res, _) =
            find_accepting_lasso_stats_with(vec![0u64], chain_succ, |_| false, Some(1), &t);
        assert_eq!(res, SearchResult::Cancelled);
    }

    #[test]
    fn never_token_leaves_results_unchanged() {
        let adj = [vec![1usize], vec![0]];
        let acc: BTreeSet<usize> = [1].into_iter().collect();
        let plain =
            find_accepting_lasso(vec![0usize], |u| adj[*u].clone(), |u| acc.contains(u), None);
        let (with, _) = find_accepting_lasso_stats_with(
            vec![0usize],
            |u| adj[*u].clone(),
            |u| acc.contains(u),
            None,
            &CancelToken::never(),
        );
        assert_eq!(plain, with);
        assert!(plain.is_lasso());
    }
}
