//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] carries a shared stop flag plus an optional
//! deadline. Search loops poll [`CancelToken::is_cancelled`] at their
//! expansion points and unwind with a `Cancelled` outcome — never a
//! panic — so a verification service can bound every job and keep its
//! worker pool alive (the paper's WAVE prototype ran exactly such
//! request-level infrastructure on top of the symbolic search).
//!
//! Tokens are cheap to clone (an `Arc` under the hood) and a default /
//! [`CancelToken::never`] token is entirely free: it carries no
//! allocation and every poll is a constant `false`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation handle shared between a controller (the
/// scheduler, a signal handler, a client disconnect) and a search loop.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that can be cancelled but has no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that is never cancelled. Polling it is free (no shared
    /// state is consulted). This is the [`Default`].
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A token that auto-cancels once `budget` wall time has elapsed
    /// (measured from this call). It can additionally be cancelled
    /// explicitly before the deadline.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            })),
        }
    }

    /// Requests cancellation. Idempotent; a no-op on [`never`] tokens.
    ///
    /// [`never`]: CancelToken::never
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The configured deadline, if any (for diagnostics).
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("armable", &self.inner.is_some())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_never_cancelled() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op, must not panic
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn explicit_cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled(), "zero budget expires immediately");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        far.cancel();
        assert!(far.is_cancelled(), "explicit cancel beats the deadline");
    }

    #[test]
    fn default_is_never() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
