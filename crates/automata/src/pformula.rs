//! Propositional CTL\* syntax.
//!
//! The verifiers lower `wave-logic`'s [`TFormula`](wave_logic::TFormula) —
//! whose atoms are FO formulas — into this purely propositional form by
//! abstracting each FO component to a proposition (exactly the abstraction
//! step of Example 4.3 / Theorem 4.4). `PFormula` keeps the CTL\* shape;
//! conversion to [`Pnf`] is available for pure path (LTL) formulas.

use std::fmt;

use crate::pltl::Pnf;
use crate::props::PropId;

/// A propositional CTL\* formula.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PFormula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Atomic proposition.
    Prop(PropId),
    /// Negation.
    Not(Box<PFormula>),
    /// N-ary conjunction.
    And(Vec<PFormula>),
    /// N-ary disjunction.
    Or(Vec<PFormula>),
    /// Next.
    X(Box<PFormula>),
    /// Until.
    U(Box<PFormula>, Box<PFormula>),
    /// Eventually.
    F(Box<PFormula>),
    /// Always.
    G(Box<PFormula>),
    /// Exists path.
    E(Box<PFormula>),
    /// All paths.
    A(Box<PFormula>),
}

impl PFormula {
    /// Smart negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PFormula) -> Self {
        match f {
            PFormula::Not(g) => *g,
            PFormula::True => PFormula::False,
            PFormula::False => PFormula::True,
            other => PFormula::Not(Box::new(other)),
        }
    }

    /// Smart conjunction.
    pub fn and(fs: impl IntoIterator<Item = PFormula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                PFormula::True => {}
                PFormula::False => return PFormula::False,
                PFormula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PFormula::True,
            1 => out.pop().expect("len checked"),
            _ => PFormula::And(out),
        }
    }

    /// Smart disjunction.
    pub fn or(fs: impl IntoIterator<Item = PFormula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                PFormula::False => {}
                PFormula::True => return PFormula::True,
                PFormula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PFormula::False,
            1 => out.pop().expect("len checked"),
            _ => PFormula::Or(out),
        }
    }

    /// Implication.
    pub fn implies(a: PFormula, b: PFormula) -> Self {
        PFormula::or([PFormula::not(a), b])
    }

    /// `Xφ`.
    pub fn next(f: PFormula) -> Self {
        PFormula::X(Box::new(f))
    }

    /// `φ U ψ`.
    pub fn until(a: PFormula, b: PFormula) -> Self {
        PFormula::U(Box::new(a), Box::new(b))
    }

    /// `Fφ`.
    pub fn eventually(f: PFormula) -> Self {
        PFormula::F(Box::new(f))
    }

    /// `Gφ`.
    pub fn always(f: PFormula) -> Self {
        PFormula::G(Box::new(f))
    }

    /// `Eφ`.
    pub fn exists_path(f: PFormula) -> Self {
        PFormula::E(Box::new(f))
    }

    /// `Aφ`.
    pub fn all_paths(f: PFormula) -> Self {
        PFormula::A(Box::new(f))
    }

    /// True if no path quantifier occurs.
    pub fn is_path_only(&self) -> bool {
        match self {
            PFormula::True | PFormula::False | PFormula::Prop(_) => true,
            PFormula::Not(f) | PFormula::X(f) | PFormula::F(f) | PFormula::G(f) => f.is_path_only(),
            PFormula::And(fs) | PFormula::Or(fs) => fs.iter().all(|f| f.is_path_only()),
            PFormula::U(a, b) => a.is_path_only() && b.is_path_only(),
            PFormula::E(_) | PFormula::A(_) => false,
        }
    }

    /// True if this is a CTL *state* formula: every temporal operator is
    /// immediately under a path quantifier.
    pub fn is_ctl(&self) -> bool {
        match self {
            PFormula::True | PFormula::False | PFormula::Prop(_) => true,
            PFormula::Not(f) => f.is_ctl(),
            PFormula::And(fs) | PFormula::Or(fs) => fs.iter().all(|f| f.is_ctl()),
            PFormula::X(_) | PFormula::U(..) | PFormula::F(_) | PFormula::G(_) => false,
            PFormula::E(f) | PFormula::A(f) => match f.as_ref() {
                PFormula::X(g) | PFormula::F(g) | PFormula::G(g) => g.is_ctl(),
                PFormula::U(a, b) => a.is_ctl() && b.is_ctl(),
                _ => false,
            },
        }
    }

    /// Converts a pure path (LTL) formula to positive normal form.
    /// Returns `None` if a path quantifier occurs.
    pub fn to_pnf(&self) -> Option<Pnf> {
        self.pnf_with_polarity(true)
    }

    fn pnf_with_polarity(&self, positive: bool) -> Option<Pnf> {
        Some(match (self, positive) {
            (PFormula::True, true) | (PFormula::False, false) => Pnf::True,
            (PFormula::True, false) | (PFormula::False, true) => Pnf::False,
            (PFormula::Prop(p), pos) => Pnf::Lit {
                prop: *p,
                positive: pos,
            },
            (PFormula::Not(f), pos) => f.pnf_with_polarity(!pos)?,
            (PFormula::And(fs), true) | (PFormula::Or(fs), false) => Pnf::and(
                fs.iter()
                    .map(|f| f.pnf_with_polarity(positive))
                    .collect::<Option<Vec<_>>>()?,
            ),
            (PFormula::Or(fs), true) | (PFormula::And(fs), false) => Pnf::or(
                fs.iter()
                    .map(|f| f.pnf_with_polarity(positive))
                    .collect::<Option<Vec<_>>>()?,
            ),
            (PFormula::X(f), pos) => Pnf::next(f.pnf_with_polarity(pos)?),
            (PFormula::U(a, b), true) => {
                Pnf::until(a.pnf_with_polarity(true)?, b.pnf_with_polarity(true)?)
            }
            (PFormula::U(a, b), false) => {
                Pnf::release(a.pnf_with_polarity(false)?, b.pnf_with_polarity(false)?)
            }
            (PFormula::F(f), true) => Pnf::eventually(f.pnf_with_polarity(true)?),
            (PFormula::F(f), false) => Pnf::always(f.pnf_with_polarity(false)?),
            (PFormula::G(f), true) => Pnf::always(f.pnf_with_polarity(true)?),
            (PFormula::G(f), false) => Pnf::eventually(f.pnf_with_polarity(false)?),
            (PFormula::E(_), _) | (PFormula::A(_), _) => return None,
        })
    }

    /// Node count.
    pub fn size(&self) -> usize {
        let mut n = 1;
        match self {
            PFormula::Not(f)
            | PFormula::X(f)
            | PFormula::F(f)
            | PFormula::G(f)
            | PFormula::E(f)
            | PFormula::A(f) => n += f.size(),
            PFormula::And(fs) | PFormula::Or(fs) => {
                n += fs.iter().map(PFormula::size).sum::<usize>()
            }
            PFormula::U(a, b) => n += a.size() + b.size(),
            _ => {}
        }
        n
    }
}

impl fmt::Debug for PFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PFormula::True => write!(f, "true"),
            PFormula::False => write!(f, "false"),
            PFormula::Prop(p) => write!(f, "p{p}"),
            PFormula::Not(g) => write!(f, "!{g:?}"),
            PFormula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            PFormula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            PFormula::X(g) => write!(f, "X {g:?}"),
            PFormula::U(a, b) => write!(f, "({a:?} U {b:?})"),
            PFormula::F(g) => write!(f, "F {g:?}"),
            PFormula::G(g) => write!(f, "G {g:?}"),
            PFormula::E(g) => write!(f, "E {g:?}"),
            PFormula::A(g) => write!(f, "A {g:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let ctl = PFormula::all_paths(PFormula::always(PFormula::exists_path(
            PFormula::eventually(PFormula::Prop(0)),
        )));
        assert!(ctl.is_ctl());
        assert!(!ctl.is_path_only());

        let ltl = PFormula::always(PFormula::eventually(PFormula::Prop(0)));
        assert!(ltl.is_path_only());
        assert!(!ltl.is_ctl());

        let star = PFormula::all_paths(PFormula::eventually(PFormula::always(PFormula::Prop(0))));
        assert!(!star.is_ctl());
        assert!(!star.is_path_only());
    }

    #[test]
    fn pnf_conversion_duals() {
        // !(p U q) -> (!p R !q)
        let f = PFormula::not(PFormula::until(PFormula::Prop(0), PFormula::Prop(1)));
        assert_eq!(
            f.to_pnf().unwrap(),
            Pnf::release(Pnf::nprop(0), Pnf::nprop(1))
        );
        // !G p -> F !p
        let g = PFormula::not(PFormula::always(PFormula::Prop(2)));
        assert_eq!(g.to_pnf().unwrap(), Pnf::eventually(Pnf::nprop(2)));
    }

    #[test]
    fn pnf_rejects_path_quantifiers() {
        let f = PFormula::exists_path(PFormula::eventually(PFormula::Prop(0)));
        assert!(f.to_pnf().is_none());
    }

    #[test]
    fn smart_constructors() {
        assert_eq!(
            PFormula::not(PFormula::not(PFormula::Prop(1))),
            PFormula::Prop(1)
        );
        assert_eq!(PFormula::and([]), PFormula::True);
        assert_eq!(
            PFormula::or([PFormula::False, PFormula::Prop(0)]),
            PFormula::Prop(0)
        );
        assert!(PFormula::implies(PFormula::Prop(0), PFormula::Prop(1)).size() >= 3);
    }
}
