//! Kripke structures (Definition A.4).
//!
//! A Kripke structure over a set `AP` of atomic propositions is a finite
//! set of states with a **total** transition relation and a labeling
//! `L : S → 2^AP`. The propositional verifiers build these from Web
//! services: Lemma A.12 constructs one per database for a propositional
//! input-bounded service; Theorem 4.6 does so for fully propositional
//! services; Theorem 4.9 interprets satisfying structures of a CTL formula
//! as services with input-driven search.

use crate::props::PropSet;

/// An explicit Kripke structure.
#[derive(Clone, Debug, Default)]
pub struct Kripke {
    /// Per-state proposition labels.
    pub labels: Vec<PropSet>,
    /// Per-state successor lists.
    pub succ: Vec<Vec<usize>>,
    /// Initial states.
    pub initial: Vec<usize>,
}

impl Kripke {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state with the given label; returns its id.
    pub fn add_state(&mut self, label: PropSet) -> usize {
        self.labels.push(label);
        self.succ.push(Vec::new());
        self.labels.len() - 1
    }

    /// Adds an edge (duplicates are tolerated but skipped).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        if !self.succ[from].contains(&to) {
            self.succ[from].push(to);
        }
    }

    /// Marks a state initial.
    pub fn add_initial(&mut self, s: usize) {
        if !self.initial.contains(&s) {
            self.initial.push(s);
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the structure has no states.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Whether the transition relation is total (every state has a
    /// successor), as Definition A.4 requires.
    pub fn is_total(&self) -> bool {
        self.succ.iter().all(|s| !s.is_empty())
    }

    /// Makes the relation total by adding self-loops to dead ends —
    /// the paper's "fake loops" device for representing finite runs as
    /// infinite ones (Section 2).
    pub fn close_with_self_loops(&mut self) {
        for (i, s) in self.succ.iter_mut().enumerate() {
            if s.is_empty() {
                s.push(i);
            }
        }
    }

    /// Predecessor lists (computed on demand).
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut pred = vec![Vec::new(); self.len()];
        for (u, vs) in self.succ.iter().enumerate() {
            for &v in vs {
                pred[v].push(u);
            }
        }
        pred
    }

    /// States reachable from the initial states.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = self.initial.clone();
        for &s in &self.initial {
            seen[s] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in &self.succ[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn build_and_query() {
        let mut k = Kripke::new();
        let a = k.add_state(ps(&[0]));
        let b = k.add_state(ps(&[1]));
        k.add_edge(a, b);
        k.add_edge(a, b); // duplicate ignored
        k.add_initial(a);
        assert_eq!(k.len(), 2);
        assert_eq!(k.num_edges(), 1);
        assert!(!k.is_total());
        k.close_with_self_loops();
        assert!(k.is_total());
        assert_eq!(k.succ[b], vec![b]);
    }

    #[test]
    fn predecessors_and_reachability() {
        let mut k = Kripke::new();
        let a = k.add_state(ps(&[]));
        let b = k.add_state(ps(&[]));
        let c = k.add_state(ps(&[]));
        k.add_edge(a, b);
        k.add_edge(b, a);
        k.add_edge(c, a);
        k.add_initial(a);
        let pred = k.predecessors();
        assert_eq!(pred[a], vec![b, c]);
        let reach = k.reachable();
        assert!(reach[a] && reach[b]);
        assert!(!reach[c]);
    }
}
