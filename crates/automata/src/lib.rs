//! # wave-automata
//!
//! Propositional temporal machinery shared by every decision procedure in
//! the `wave` verifier:
//!
//! * [`props`] — proposition registries and compact bit-set labels.
//! * [`pltl`] — propositional LTL in positive normal form, with semantics
//!   on ultimately-periodic (lasso) words.
//! * [`ltl2buchi`] — the GPVW tableau translation from LTL to generalized
//!   Büchi automata, plus degeneralization.
//! * [`buchi`] — Büchi automata and guarded transitions.
//! * [`interner`] — hash-consing node interner mapping large search nodes
//!   to dense `u32` ids.
//! * [`cancel`] — cooperative cancellation tokens (deadline / explicit)
//!   polled by the search loops.
//! * [`search`] — accepting-lasso search over implicit product graphs on
//!   interned ids, as nested DFS and as Tarjan SCC decomposition (the
//!   engine behind Theorem 3.5's periodic-run check).
//! * [`store`] — a keyed cache of LTL→Büchi translations with a
//!   deterministic byte codec, for incremental re-verification hosts.
//! * [`kripke`] — explicit Kripke structures (Definition A.4).
//! * [`pformula`] — propositional CTL\* syntax.
//! * [`ctl_mc`] — the standard CTL labeling model checker (Lemma A.12 /
//!   Theorem 4.4 back end).
//! * [`ctlstar_mc`] — CTL\* model checking by recursive elimination of
//!   path subformulas through Büchi products.
//! * [`ctl_sat`] — CTL satisfiability via the Emerson–Halpern tableau
//!   (the decision procedure behind Theorem 4.9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buchi;
pub mod cancel;
pub mod ctl_mc;
pub mod ctl_sat;
pub mod ctlstar_mc;
pub mod interner;
pub mod kripke;
pub mod ltl2buchi;
pub mod pformula;
pub mod pltl;
pub mod props;
pub mod search;
pub mod store;

pub use buchi::Buchi;
pub use cancel::CancelToken;
pub use interner::Interner;
pub use kripke::Kripke;
pub use pformula::PFormula;
pub use pltl::Pnf;
pub use props::{PropRegistry, PropSet};
pub use search::SearchStats;
