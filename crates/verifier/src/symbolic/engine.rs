//! The symbolic product search: Theorem 3.5's decision procedure.
//!
//! The negated property is abstracted over its FO components into
//! propositional LTL, translated to a Büchi automaton, and the product
//! with the symbolic configuration graph is searched for an accepting
//! lasso with nested DFS. By the Periodic-Run Lemma a lasso exists iff
//! some database and user behaviour produce a violating run; by the
//! freshness discipline of the symbolic semantics the lasso is always
//! realizable (soundness).
//!
//! # Architecture: interned ids, memoized successors, overlapped prefetch
//!
//! Product nodes `(SymConfig, büchi state)` are hash-consed to dense ids
//! by the [`wave_automata::interner::Interner`] inside the nested DFS;
//! successor generation is memoized per node, so the inner (red) DFS
//! reuses the lists the outer (blue) DFS derived.
//!
//! On top of that, the engine memoizes the **expensive half** of
//! successor generation — `successors(cfg)` composed with the FO-component
//! letter evaluation — once per *configuration* (shared by every Büchi
//! state paired with it). With `threads > 1` this memo is populated
//! **concurrently with the search**: `std::thread::scope` prefetch
//! workers expand the configuration graph ahead of the nested DFS,
//! publishing entries into a sharded table (plain `std` only — no
//! external registry is required from CI). There is **no phase barrier**:
//! the search starts immediately, never waits for a worker, and computes
//! any entry it needs before the prefetchers reach it. (An earlier design
//! warmed the *entire* memo behind a barrier before the search started,
//! which made threads strictly slower — the warming phase rebuilt the
//! whole graph even when the search needed a fraction of it.)
//!
//! The prefetch is a pure cache: every memo value is a pure function of
//! its configuration, and the verdict — including counterexample lassos —
//! is always produced by the same sequential nested DFS over the same
//! deterministically ordered successor lists, so outcomes are
//! **byte-identical for every thread count**.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wave_core::classify;
use wave_core::service::Service;
use wave_logic::bounded::BoundedError;
use wave_logic::schema::ConstKind;
use wave_logic::temporal::{Property, TemporalClass};

pub use wave_automata::cancel::CancelToken;
use wave_automata::interner::Interner;
use wave_automata::ltl2buchi::translate;
use wave_automata::props::PropSet;
pub use wave_automata::search::SearchStats;
use wave_automata::search::{find_accepting_lasso_stats_with, SearchResult};

use crate::abstraction::{to_pnf, FoAbstraction};

use super::config::SymConfig;
use super::eval::{eval_branching, Ctx};
use super::step::{initial_configs, successors};
use super::table::{CTable, Sym};

/// The node budget used when a caller passes the degenerate
/// `node_limit == 0` (see [`SymbolicOptions::normalized`]).
pub const DEFAULT_NODE_LIMIT: usize = 500_000;

/// Options for the symbolic verifier.
#[derive(Clone, Debug)]
pub struct SymbolicOptions {
    /// Budget on distinct product nodes. Exhausting it always surfaces
    /// as [`Verdict::LimitReached`] — never as a spurious "holds".
    /// The degenerate value `0` is normalized to [`DEFAULT_NODE_LIMIT`]
    /// (a zero-node search could never answer anything).
    pub node_limit: usize,
    /// Total threads for the run, search thread included: `1` (the
    /// default) runs purely sequentially, `0` means one per available
    /// core, `n > 1` lets up to `n - 1` prefetch workers warm the
    /// successor memo **concurrently with** the search (capped at the
    /// machine's available parallelism unless
    /// [`SymbolicOptions::force_overlap`] is set — oversubscribing a
    /// smaller machine only adds scheduling overhead). The verdict is
    /// byte-identical for every value — workers only pre-populate the
    /// successor memo.
    pub threads: usize,
    /// Spawn `threads - 1` prefetch workers even when the machine reports
    /// fewer available cores. The default (`false`) is right for
    /// production; tests and the differential oracle set it so the
    /// concurrent machinery is genuinely exercised on any machine.
    pub force_overlap: bool,
    /// Cooperative cancellation: polled at every node expansion. A fired
    /// token surfaces as [`Verdict::Cancelled`] — never a panic. The
    /// default ([`CancelToken::never`]) costs nothing to poll.
    pub cancel: CancelToken,
    /// Run the cone-of-influence slicer (`wave_core::slice`) between
    /// admission and search: rules, pages and relations the property and
    /// the control flow provably cannot observe are removed before the
    /// state space is built. Verdict-preserving (DESIGN.md §12, enforced
    /// by wave-qa's `SliceDivergence` leg); on by default. The slicer
    /// refuses by itself where its argument does not apply, so disabling
    /// this is only useful for differential testing.
    pub slice: bool,
    /// Shared LTL→Büchi translation cache: when set, [`verify_ltl`]
    /// looks the negated property's automaton up by the property's
    /// canonical fingerprint before running the GPVW translation, and
    /// publishes fresh translations back. Sound because the translation
    /// is a deterministic pure function of the property (the FO
    /// abstraction table is built from the property alone, never the
    /// service), and its effect on the outcome is byte-invisible: a hit
    /// skips reconstruction work, nothing else. `None` (the default)
    /// translates every time.
    pub automata: Option<Arc<wave_automata::store::AutomatonCache>>,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            node_limit: DEFAULT_NODE_LIMIT,
            threads: 1,
            force_overlap: false,
            cancel: CancelToken::never(),
            slice: true,
            automata: None,
        }
    }
}

impl SymbolicOptions {
    /// Replaces degenerate settings with their documented meanings:
    ///
    /// * `node_limit == 0` → [`DEFAULT_NODE_LIMIT`]. A literal zero
    ///   budget would report [`Verdict::LimitReached`] before interning a
    ///   single node, which no caller ever wants; `0` therefore means
    ///   "default budget".
    /// * `threads == 0` → one per available core (as reported by
    ///   `std::thread::available_parallelism`, falling back to `1`).
    ///
    /// Both entry points ([`verify_ltl`], [`is_error_free`]) normalize on
    /// entry, so callers never need to pre-sanitize.
    pub fn normalized(&self) -> SymbolicOptions {
        SymbolicOptions {
            node_limit: if self.node_limit == 0 {
                DEFAULT_NODE_LIMIT
            } else {
                self.node_limit
            },
            threads: if self.threads == 0 {
                available_cores()
            } else {
                self.threads
            },
            force_overlap: self.force_overlap,
            cancel: self.cancel.clone(),
            slice: self.slice,
            automata: self.automata.clone(),
        }
    }

    /// Effective prefetch worker count for normalized options: one less
    /// than the thread budget (the search thread takes the first slot),
    /// capped at the machine's parallelism unless `force_overlap`.
    fn overlap_workers(&self) -> usize {
        if self.threads <= 1 {
            return 0;
        }
        if self.force_overlap {
            return self.threads - 1;
        }
        self.threads.min(available_cores()).saturating_sub(1)
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Why verification could not start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymbolicError {
    /// The service is not input-bounded (Theorem 3.5's hypothesis; the
    /// relaxations are undecidable per Theorems 3.7–3.9).
    ServiceNotInputBounded(Vec<(String, String, BoundedError)>),
    /// The property is not input-bounded.
    PropertyNotInputBounded(BoundedError),
    /// The property contains path quantifiers (Theorem 4.2 shows the
    /// combination is undecidable; use the CTL verifiers on the
    /// propositional classes instead).
    NotLtl,
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::ServiceNotInputBounded(vs) => {
                write!(f, "service is not input-bounded ({} violations)", vs.len())
            }
            SymbolicError::PropertyNotInputBounded(e) => {
                write!(f, "property is not input-bounded: {e}")
            }
            SymbolicError::NotLtl => write!(f, "property is not LTL-FO"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// The answer of a verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every run over every database satisfies the property.
    Holds {
        /// Distinct product nodes explored.
        explored: usize,
    },
    /// A violating pseudo-run (realizable by a concrete database and user
    /// behaviour) was found.
    Violated {
        /// Rendered configurations leading into the violating cycle.
        stem: Vec<String>,
        /// The repeating cycle.
        cycle: Vec<String>,
    },
    /// The node budget was exhausted before an answer — the result is
    /// **inconclusive**, not a proof.
    LimitReached,
    /// The run was cancelled (explicit cancel or deadline expiry on
    /// [`SymbolicOptions::cancel`]) before an answer — inconclusive,
    /// like `LimitReached`.
    Cancelled,
    /// The request is quarantined: repeated worker panics on the same
    /// fingerprint convicted the job of crashing its worker, so the
    /// service refuses to run it again and answers with this typed
    /// verdict instead of eroding the pool. Inconclusive, like
    /// `LimitReached`; the verifier itself never produces it — only the
    /// service layer does.
    Poisoned,
}

/// The verdict together with the search counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The answer. Deterministic: byte-identical for every `threads`
    /// setting.
    pub verdict: Verdict,
    /// Interning / memoization / timing counters for this run. Wall
    /// times vary run to run; everything else is deterministic.
    pub stats: SearchStats,
}

impl VerifyOutcome {
    /// True when the property was verified.
    pub fn holds(&self) -> bool {
        matches!(self.verdict, Verdict::Holds { .. })
    }

    /// True when a counterexample was found.
    pub fn violated(&self) -> bool {
        matches!(self.verdict, Verdict::Violated { .. })
    }
}

/// Per-configuration memo value: the letter-annotated successor
/// configurations, shared by every Büchi state.
type SuccPairs = Vec<(SymConfig, PropSet)>;

/// The automaton-tier key for a property: a domain-tagged canonical
/// fingerprint of exactly what the LTL→Büchi translation consumes.
/// Public so hosts persisting the automaton tier (wave-serve) seed
/// recovered entries under the same key [`verify_ltl`] will look up.
pub fn buchi_key(property: &Property) -> u128 {
    use wave_logic::fingerprint::{Canonical, Fnv128};
    let mut h = Fnv128::new();
    h.write_str("wave-inc/buchi/v1");
    property.canon(&mut h);
    h.finish()
}

/// Verifies an input-bounded LTL-FO property on an input-bounded service,
/// over **all** databases and runs (Theorem 3.5).
pub fn verify_ltl(
    service: &Service,
    property: &Property,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    let opts = opts.normalized();
    if property.classify() != TemporalClass::Ltl {
        return Err(SymbolicError::NotLtl);
    }
    let violations = classify::input_bounded_violations(service);
    if !violations.is_empty() {
        return Err(SymbolicError::ServiceNotInputBounded(violations));
    }
    property
        .check_input_bounded(&service.schema)
        .map_err(SymbolicError::PropertyNotInputBounded)?;

    // Cone-of-influence slicing, after admission (so refusals and blame
    // always speak about the service as submitted) and before the state
    // space is built. Dropping rules can only *remove* input-boundedness
    // violations, so the sliced service stays admitted. The slicer
    // refuses (identity slice) wherever its soundness argument does not
    // apply — see `wave_core::slice` and DESIGN.md §12.
    let sliced = if opts.slice {
        Some(wave_core::slice::slice(service, property))
    } else {
        None
    };
    let (service, sliced_rules, sliced_relations) = match &sliced {
        Some(r) => (
            &r.service,
            r.report.sliced_rules(),
            r.report.sliced_relations(),
        ),
        None => (service, 0, 0),
    };

    // ¬φ as a Büchi automaton over FO components. The abstraction table
    // and the PNF are pure functions of the property — never the
    // service — so a shared automaton cache keyed by the property's
    // canonical fingerprint can skip the GPVW translation entirely.
    let mut table = FoAbstraction::default();
    let pnf = to_pnf(&property.body, true, &mut table).ok_or(SymbolicError::NotLtl)?;
    let aut = match &opts.automata {
        Some(cache) => cache.get_or_insert(buchi_key(property), || translate(&pnf)),
        None => Arc::new(translate(&pnf)),
    };

    let ctable = CTable::build(service, property);
    // Witness environment: each universally quantified variable maps to
    // its Skolem symbol in C.
    let env: BTreeMap<String, Sym> = property
        .vars
        .iter()
        .map(|v| {
            (
                v.clone(),
                Sym::C(ctable.witness_sym(v).expect("witnesses are in C")),
            )
        })
        .collect();
    let ctx = Ctx {
        service,
        table: &ctable,
        ephemeral: Vec::new(),
    };

    // Letter evaluation with branching: every branch yields a (config,
    // letter) pair. A component mentioning an unprovided input constant is
    // not satisfied (Definition 3.1's satisfaction condition). Pure in
    // `cfg`, so its results can be cached and computed on any thread.
    let letters = |cfg: &SymConfig| -> SuccPairs {
        let mut acc: SuccPairs = vec![(cfg.clone(), PropSet::new())];
        for (i, comp) in table.components.iter().enumerate() {
            let mentions_unprovided = comp.constants_used().iter().any(|c| {
                service.schema.constant(c) == Some(ConstKind::Input)
                    && ctable
                        .const_sym(c)
                        .map(|s| !cfg.is_provided(s))
                        .unwrap_or(true)
            });
            let mut next = Vec::new();
            for (c, letter) in acc {
                if mentions_unprovided {
                    next.push((c, letter));
                    continue;
                }
                let (evals, unprov) = eval_branching(&ctx, &c, &env, comp);
                debug_assert!(!unprov, "provision pre-checked");
                for (c2, v) in evals {
                    let mut l2 = letter.clone();
                    if v {
                        l2.insert(i as u32);
                    }
                    next.push((c2, l2));
                }
            }
            acc = next;
        }
        acc
    };

    // The expensive half of product successor generation, memoized per
    // configuration: raw successors composed with letter branching.
    let expand = |cfg: &SymConfig| -> SuccPairs {
        let mut pairs = Vec::new();
        for s in successors(service, &ctable, cfg) {
            pairs.extend(letters(&s));
        }
        pairs
    };

    // Initial product nodes.
    let mut inits: Vec<(SymConfig, usize)> = Vec::new();
    for c0 in initial_configs(service, &ctable) {
        for (c1, letter) in letters(&c0) {
            for &q in &aut.initial {
                if aut.guard[q].accepts(&letter) {
                    inits.push((c1.clone(), q));
                }
            }
        }
    }

    // Büchi product expansion of a memoized successor list.
    let product = |pairs: &SuccPairs, q: usize| -> Vec<(SymConfig, usize)> {
        let mut out = Vec::new();
        for (s2, letter) in pairs {
            for &q2 in &aut.succ[q] {
                if aut.guard[q2].accepts(letter) {
                    out.push((s2.clone(), q2));
                }
            }
        }
        out
    };

    // The search, with the per-configuration memo populated either lazily
    // on the search thread alone (`workers == 0`) or concurrently by
    // prefetch workers racing ahead of it. No phase barrier in either
    // case: the nested DFS starts immediately and never waits on a
    // worker — a missing entry is computed on the spot. Every memo value
    // is a pure function of the configuration, so prefetched and
    // search-computed entries are interchangeable and the traversal
    // (successor-list content order, never id or thread order) is
    // byte-identical for every worker count.
    let workers = opts.overlap_workers();
    let accepting = |&(_, q): &(SymConfig, usize)| aut.accepting[q];
    let (result, stats) = if workers == 0 {
        let mut memo: HashMap<SymConfig, Arc<SuccPairs>> = HashMap::new();
        let succ = |(cfg, q): &(SymConfig, usize)| -> Vec<(SymConfig, usize)> {
            let pairs = match memo.get(cfg) {
                Some(p) => p.clone(),
                None => {
                    let p = Arc::new(expand(cfg));
                    memo.insert(cfg.clone(), p.clone());
                    p
                }
            };
            product(&pairs, *q)
        };
        find_accepting_lasso_stats_with(inits, succ, accepting, Some(opts.node_limit), &opts.cancel)
    } else {
        let shared = PrefetchShared::new(opts.node_limit);
        {
            let mut q = shared.queue.lock().expect("prefetch queue poisoned");
            q.extend(inits.iter().map(|(c, _)| c.clone()));
        }
        let mut prefetch_hits = 0u64;
        let (result, mut stats) = std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| shared.worker(&expand, &opts.cancel));
            }
            let succ = |(cfg, q): &(SymConfig, usize)| -> Vec<(SymConfig, usize)> {
                let (pairs, by_worker) = shared.fetch_or_compute(cfg, &expand);
                if by_worker {
                    prefetch_hits += 1;
                }
                // Feed the discovered frontier to the prefetchers.
                shared.enqueue_fresh(&pairs);
                product(&pairs, *q)
            };
            let out = find_accepting_lasso_stats_with(
                inits,
                succ,
                accepting,
                Some(opts.node_limit),
                &opts.cancel,
            );
            // Release the workers before the scope joins them.
            shared.shutdown();
            out
        });
        stats.prefetched = shared.prefetched.load(Ordering::Relaxed);
        stats.prefetch_hits = prefetch_hits;
        (result, stats)
    };

    let verdict = match result {
        SearchResult::Empty { explored } => Verdict::Holds { explored },
        SearchResult::Lasso { stem, cycle } => Verdict::Violated {
            stem: stem.iter().map(|(c, _)| c.render(&ctable)).collect(),
            cycle: cycle.iter().map(|(c, _)| c.render(&ctable)).collect(),
        },
        SearchResult::LimitReached { .. } => Verdict::LimitReached,
        SearchResult::Cancelled => Verdict::Cancelled,
    };
    let mut stats = stats;
    stats.sliced_rules = sliced_rules;
    stats.sliced_relations = sliced_relations;
    Ok(VerifyOutcome { verdict, stats })
}

/// Number of shards in the prefetch memo (and claim) table.
const SHARDS: usize = 64;

/// One shard of the shared prefetch memo.
#[derive(Default)]
struct Shard {
    /// Configurations some thread has taken responsibility for, so no
    /// successor list is computed twice by the *workers* (the search
    /// thread deliberately never waits on an in-flight claim — it
    /// recomputes, which is wasted work but never wasted wall time).
    claimed: HashSet<SymConfig>,
    /// Published successor lists; the flag records whether a prefetch
    /// worker (true) or the search thread (false) computed the entry.
    ready: HashMap<SymConfig, (Arc<SuccPairs>, bool)>,
}

/// State shared between the verdict-producing search thread and the
/// prefetch workers. Purely a cache: racy claim order may vary *which*
/// thread computes an entry, but every entry's value is a pure function
/// of its key, so the search is oblivious to the race.
struct PrefetchShared {
    shards: Vec<Mutex<Shard>>,
    /// Work queue of configurations worth prefetching, fed by both the
    /// search thread (its discovered frontier) and the workers (their
    /// expansions' successors).
    queue: Mutex<VecDeque<SymConfig>>,
    /// Wakes idle workers on new work or shutdown.
    wake: Condvar,
    /// Set once the search has its answer; workers drain out.
    done: AtomicBool,
    /// Expansion tickets claimed by workers; bounded by the node limit so
    /// prefetching can never outrun the budget of the search it serves.
    tickets: AtomicUsize,
    ticket_limit: usize,
    /// Successor lists computed by workers (the `prefetched` stat).
    prefetched: AtomicUsize,
}

impl PrefetchShared {
    fn new(ticket_limit: usize) -> PrefetchShared {
        PrefetchShared {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            done: AtomicBool::new(false),
            tickets: AtomicUsize::new(0),
            ticket_limit,
            prefetched: AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, cfg: &SymConfig) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        cfg.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Search-thread lookup: returns the published successor list, or
    /// computes it **immediately** (never blocking on an in-flight
    /// worker). The flag reports whether a worker supplied the entry.
    fn fetch_or_compute(
        &self,
        cfg: &SymConfig,
        expand: &(impl Fn(&SymConfig) -> SuccPairs + Sync),
    ) -> (Arc<SuccPairs>, bool) {
        if let Some(hit) = self
            .shard_of(cfg)
            .lock()
            .expect("prefetch shard poisoned")
            .ready
            .get(cfg)
        {
            return hit.clone();
        }
        let pairs = Arc::new(expand(cfg));
        let mut shard = self.shard_of(cfg).lock().expect("prefetch shard poisoned");
        shard.claimed.insert(cfg.clone());
        // A worker may have published meanwhile; both values are
        // identical (pure function of the key), keep the first.
        let entry = shard
            .ready
            .entry(cfg.clone())
            .or_insert((pairs, false))
            .clone();
        entry
    }

    /// Queues the configurations of a successor list that no thread has
    /// claimed or published yet, and wakes the workers.
    fn enqueue_fresh(&self, pairs: &SuccPairs) {
        let mut fresh = Vec::new();
        for (c, _) in pairs {
            let shard = self.shard_of(c).lock().expect("prefetch shard poisoned");
            if !shard.claimed.contains(c) && !shard.ready.contains_key(c) {
                fresh.push(c.clone());
            }
        }
        if !fresh.is_empty() {
            let mut q = self.queue.lock().expect("prefetch queue poisoned");
            q.extend(fresh);
            self.wake.notify_all();
        }
    }

    /// Signals the workers to exit (called by the search thread once the
    /// verdict is in, *before* the surrounding scope joins them — so a
    /// scoped worker can never wedge the scope).
    fn shutdown(&self) {
        self.done.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// Worker loop: claim a queued configuration, expand it, publish the
    /// list, queue its successors. Exits on shutdown, cancellation, or
    /// ticket exhaustion; the condvar wait is bounded so a missed wakeup
    /// degrades to a short poll, never a hang.
    fn worker(&self, expand: &(impl Fn(&SymConfig) -> SuccPairs + Sync), cancel: &CancelToken) {
        loop {
            if self.done.load(Ordering::Acquire) || cancel.is_cancelled() {
                return;
            }
            let job = {
                let mut q = self.queue.lock().expect("prefetch queue poisoned");
                loop {
                    if self.done.load(Ordering::Acquire) || cancel.is_cancelled() {
                        return;
                    }
                    if let Some(j) = q.pop_front() {
                        break j;
                    }
                    q = self
                        .wake
                        .wait_timeout(q, Duration::from_millis(5))
                        .expect("prefetch queue poisoned")
                        .0;
                }
            };
            {
                let mut shard = self.shard_of(&job).lock().expect("prefetch shard poisoned");
                if shard.ready.contains_key(&job) || !shard.claimed.insert(job.clone()) {
                    continue; // another thread owns it
                }
            }
            // Budget: claim a ticket; exactly `ticket_limit` succeed, so
            // prefetching cannot intern-storm past the search's limit.
            if self.tickets.fetch_add(1, Ordering::Relaxed) >= self.ticket_limit {
                return;
            }
            let pairs = Arc::new(expand(&job));
            self.enqueue_fresh(&pairs);
            self.shard_of(&job)
                .lock()
                .expect("prefetch shard poisoned")
                .ready
                .entry(job)
                .or_insert((pairs, true));
            self.prefetched.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Diagnostic: breadth-first exploration of the symbolic configuration
/// graph (no automaton product), returning renders of the first `limit`
/// configurations. Useful to understand where a search blows up.
pub fn explore(service: &Service, property: &Property, limit: usize) -> Vec<String> {
    let ctable = CTable::build(service, property);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<SymConfig> =
        initial_configs(service, &ctable).into_iter().collect();
    while let Some(c) = queue.pop_front() {
        if !seen.insert(c.clone()) {
            continue;
        }
        out.push(format!(
            "{} | fresh={} facts={}",
            c.render(&ctable),
            c.n_fresh,
            c.st.persistent_facts()
        ));
        if out.len() >= limit {
            break;
        }
        for s in successors(service, &ctable, &c) {
            queue.push_back(s);
        }
    }
    out
}

/// Decides error-freeness (Theorem 3.5(i)): is the error page unreachable
/// on every database and run? Implemented as layered breadth-first
/// reachability over the symbolic configuration graph (no automaton
/// needed — "error free" is the safety property `G ¬W_err`). With
/// `threads > 1` each layer's successor computations are fanned out to
/// scoped workers; the layers are merged in frontier order, so the
/// witness path is byte-identical for every thread count.
pub fn is_error_free(
    service: &Service,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    let opts = opts.normalized();
    let violations = classify::input_bounded_violations(service);
    if !violations.is_empty() {
        return Err(SymbolicError::ServiceNotInputBounded(violations));
    }
    let property = Property::close(wave_logic::temporal::TFormula::always(
        wave_logic::temporal::TFormula::fo(wave_logic::formula::Formula::True),
    ));
    let ctable = CTable::build(service, &property);
    // Layer fan-out width: oversubscribing a smaller machine only adds
    // scheduling overhead, so cap at the available cores unless the
    // caller insists (tests exercising the concurrent path).
    let threads = if opts.force_overlap {
        opts.threads
    } else {
        opts.threads.min(available_cores())
    };
    let t0 = Instant::now();

    let mut interner: Interner<SymConfig> = Interner::new();
    // BFS-tree parent of each interned config (None for initial ones).
    let mut parent: Vec<Option<u32>> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut expanded = 0usize;
    let mut init_limit_hit = false;
    for c in initial_configs(service, &ctable) {
        let (id, new) = interner.intern(c);
        if new {
            parent.push(None);
            frontier.push(id);
            // Clamp here too: a service with a very wide entry fan-out
            // must not intern past the budget before the loop starts.
            if interner.len() > opts.node_limit {
                init_limit_hit = true;
                break;
            }
        }
    }
    let mut peak = frontier.len();

    let stats = |interner: &Interner<SymConfig>, expanded: usize, peak: usize| SearchStats {
        nodes_interned: interner.len(),
        dedup_hits: interner.dedup_hits(),
        successors_memoized: expanded,
        memo_hits: 0,
        peak_frontier: peak,
        prefetched: 0,
        prefetch_hits: 0,
        search_wall: t0.elapsed(),
        // Error-freeness is never sliced: every rule can influence the
        // error conditions (ambiguous/dead targets, constant provision),
        // so the cone is the whole service by definition — and for the
        // same reason it never replays from the incremental tier.
        sliced_rules: 0,
        sliced_relations: 0,
        incremental: false,
    };
    let witness = |interner: &Interner<SymConfig>, parent: &[Option<u32>], id: u32| {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(i) = cur {
            path.push(interner.get(i).render(&ctable));
            cur = parent[i as usize];
        }
        path.reverse();
        Verdict::Violated {
            stem: path,
            cycle: Vec::new(),
        }
    };

    // Initial configurations start on the home page, but stay defensive.
    for &id in &frontier {
        if interner.get(id).page == service.error_page {
            return Ok(VerifyOutcome {
                verdict: witness(&interner, &parent, id),
                stats: stats(&interner, expanded, peak),
            });
        }
    }
    if init_limit_hit {
        let verdict = if opts.cancel.is_cancelled() {
            Verdict::Cancelled
        } else {
            Verdict::LimitReached
        };
        return Ok(VerifyOutcome {
            verdict,
            stats: stats(&interner, expanded, peak),
        });
    }

    while !frontier.is_empty() {
        if opts.cancel.is_cancelled() {
            return Ok(VerifyOutcome {
                verdict: Verdict::Cancelled,
                stats: stats(&interner, expanded, peak),
            });
        }
        if interner.len() > opts.node_limit {
            return Ok(VerifyOutcome {
                verdict: Verdict::LimitReached,
                stats: stats(&interner, expanded, peak),
            });
        }
        let nodes: Vec<(u32, SymConfig)> = frontier
            .iter()
            .map(|&id| (id, interner.get(id).clone()))
            .collect();
        expanded += nodes.len();
        // Successor computation is pure; fan the layer out to workers and
        // merge the per-chunk results in frontier order (deterministic).
        let results: Vec<Vec<(u32, Vec<SymConfig>)>> = if threads > 1 && nodes.len() > 1 {
            let chunk = nodes.len().div_ceil(threads);
            let ct = &ctable;
            std::thread::scope(|scope| {
                let handles: Vec<_> = nodes
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|(id, cfg)| (*id, successors(service, ct, cfg)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        } else {
            vec![nodes
                .iter()
                .map(|(id, cfg)| (*id, successors(service, &ctable, cfg)))
                .collect()]
        };
        let mut next = Vec::new();
        for (pid, succs) in results.into_iter().flatten() {
            for s in succs {
                let (id, new) = interner.intern(s);
                if new {
                    parent.push(Some(pid));
                    // The witness check outranks the budget: an error
                    // page reached by the very node that exhausts the
                    // limit is still a definite answer.
                    if interner.get(id).page == service.error_page {
                        return Ok(VerifyOutcome {
                            verdict: witness(&interner, &parent, id),
                            stats: stats(&interner, expanded, peak),
                        });
                    }
                    // Clamp *within* the layer: a wide layer must not
                    // intern arbitrarily far past the budget before the
                    // per-layer check at the top of the loop would fire.
                    // Cancellation outranks the budget, as everywhere.
                    if interner.len() > opts.node_limit {
                        let verdict = if opts.cancel.is_cancelled() {
                            Verdict::Cancelled
                        } else {
                            Verdict::LimitReached
                        };
                        return Ok(VerifyOutcome {
                            verdict,
                            stats: stats(&interner, expanded, peak),
                        });
                    }
                    next.push(id);
                }
            }
        }
        peak = peak.max(next.len());
        frontier = next;
    }
    Ok(VerifyOutcome {
        verdict: Verdict::Holds {
            explored: interner.len(),
        },
        stats: stats(&interner, expanded, peak),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn toggle() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn safety_holds_on_toggle() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn liveness_fails_on_toggle() {
        let s = toggle();
        let p = parse_property("F Q").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn before_operator_holds() {
        // "Q cannot happen before P": every run starts on P, so P B Q.
        let s = toggle();
        let p = parse_property("P B Q").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // Weak until: P persists until the (optional) switch to Q.
        let w = parse_property("(P U Q) | G P").unwrap();
        let out2 = verify_ltl(&s, &w, &SymbolicOptions::default()).unwrap();
        assert!(out2.holds(), "{out2:?}");
    }

    #[test]
    fn toggle_is_error_free() {
        let s = toggle();
        let out = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    fn login() -> Service {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP");
        b.build().unwrap()
    }

    #[test]
    fn login_invariant_holds_over_all_databases() {
        // G(CP → logged_in): for EVERY database — the paper's headline
        // capability; no enumeration of databases happens.
        let s = login();
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn login_reachability_witnessed_by_some_database() {
        // G ¬CP must FAIL: some database contains user(name, password).
        let s = login();
        let p = parse_property("G !CP").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn login_is_not_error_free() {
        // Idling on HP forever re-requests name/password: condition (ii).
        let s = login();
        let out = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn rejects_non_input_bounded_service() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .state_prop("s")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], "exists x . d(x)");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        assert!(matches!(
            verify_ltl(&s, &p, &SymbolicOptions::default()),
            Err(SymbolicError::ServiceNotInputBounded(_))
        ));
    }

    #[test]
    fn rejects_ctl_property() {
        let s = toggle();
        let p = parse_property("A G (E F P)").unwrap();
        assert_eq!(
            verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap_err(),
            SymbolicError::NotLtl
        );
    }

    #[test]
    fn witnessed_property() {
        // ∀x G ¬(go-with-arg...) — use a parameterized input instead.
        let mut b = ServiceBuilder::new("P");
        b.database_relation("item", 1)
            .input_relation("pick", 1)
            .state_relation("chosen", 1)
            .page("P")
            .input_rule("pick", &["y"], "item(y)")
            .insert_rule("chosen", &["y"], "pick(y)");
        let s = b.build().unwrap();
        // ∀x: G (chosen(x) → item(x)): anything recorded was a db item.
        let p = parse_property("forall x . G (!(exists q . (pick(q) & q = x)) | item(x))").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // ∀x: G ¬pick(x) must fail (a pick is possible).
        let q = parse_property("forall x . G !(exists q . (pick(q) & q = x))").unwrap();
        let out2 = verify_ltl(&s, &q, &SymbolicOptions::default()).unwrap();
        assert!(out2.violated(), "{out2:?}");
    }

    #[test]
    fn node_limit_never_reports_spurious_holds() {
        // `F Q` is VIOLATED on the toggle; with a budget of one node the
        // search cannot finish — the answer must be LimitReached, never
        // Holds (which would be unsound) and never a crash.
        let s = toggle();
        let p = parse_property("F Q").unwrap();
        let opts = SymbolicOptions {
            node_limit: 1,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(out.verdict, Verdict::LimitReached, "{out:?}");
        // Same for a property that holds: with budget 1 the engine must
        // admit it does not know.
        let q = parse_property("G (P | Q)").unwrap();
        let out2 = verify_ltl(&s, &q, &opts).unwrap();
        assert_eq!(out2.verdict, Verdict::LimitReached, "{out2:?}");
        // And for error-freeness reachability.
        let ef = is_error_free(&s, &opts).unwrap();
        assert_eq!(ef.verdict, Verdict::LimitReached, "{ef:?}");
    }

    #[test]
    fn zero_node_limit_normalizes_to_default_budget() {
        // Regression: a literal zero budget used to report LimitReached
        // before interning a single node. `0` now means "default budget".
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let opts = SymbolicOptions {
            node_limit: 0,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert!(out.holds(), "{out:?}");
        let ef = is_error_free(&s, &opts).unwrap();
        assert!(ef.holds(), "{ef:?}");
        assert_eq!(opts.normalized().node_limit, DEFAULT_NODE_LIMIT);
    }

    #[test]
    fn zero_threads_normalizes_to_available_cores() {
        // Regression: `threads: 0` means one worker per core, and must
        // produce the same verdict as the sequential default.
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let opts = SymbolicOptions {
            threads: 0,
            ..SymbolicOptions::default()
        };
        assert!(opts.normalized().threads >= 1);
        let out = verify_ltl(&s, &p, &opts).unwrap();
        let base = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert_eq!(out.verdict, base.verdict);
    }

    #[test]
    fn cancelled_token_yields_cancelled_verdict() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let opts = SymbolicOptions {
            cancel,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Cancelled, "{out:?}");
        let ef = is_error_free(&s, &opts).unwrap();
        assert_eq!(ef.verdict, Verdict::Cancelled, "{ef:?}");
    }

    #[test]
    fn expired_deadline_yields_cancelled_verdict() {
        let s = login();
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let opts = SymbolicOptions {
            cancel: CancelToken::with_deadline(Duration::ZERO),
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Cancelled, "{out:?}");
        // A run with prefetch workers must respect the deadline too.
        let opts2 = SymbolicOptions {
            cancel: CancelToken::with_deadline(Duration::ZERO),
            threads: 2,
            force_overlap: true,
            ..SymbolicOptions::default()
        };
        let out2 = verify_ltl(&s, &p, &opts2).unwrap();
        assert_eq!(out2.verdict, Verdict::Cancelled, "{out2:?}");
    }

    #[test]
    fn cancel_fired_mid_search_with_workers_in_flight() {
        // A token cancelled while prefetch workers are live must yield
        // Cancelled (taking precedence over LimitReached), join every
        // scoped worker (the call returning at all proves no wedge), and
        // leave nothing behind that poisons a later clean run.
        let s = login();
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let cancel = CancelToken::new();
        let canceller = {
            let token = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                token.cancel();
            })
        };
        let opts = SymbolicOptions {
            threads: 4,
            force_overlap: true,
            node_limit: 1, // also exhausted: Cancelled must still win
            cancel,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        canceller.join().unwrap();
        assert!(
            matches!(out.verdict, Verdict::Cancelled | Verdict::LimitReached),
            "{out:?}"
        );
        // If the token fired before the budget tripped, Cancelled won; we
        // can't control the interleaving, but a *pre-fired* token always
        // outranks the (already exhausted) budget:
        let fired = CancelToken::new();
        fired.cancel();
        let opts2 = SymbolicOptions {
            threads: 4,
            force_overlap: true,
            node_limit: 1,
            cancel: fired,
            ..SymbolicOptions::default()
        };
        let out2 = verify_ltl(&s, &p, &opts2).unwrap();
        assert_eq!(out2.verdict, Verdict::Cancelled, "{out2:?}");
        // The memo is per-run state: a clean run afterwards is unaffected
        // by the cancelled ones.
        let clean = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(clean.holds(), "{clean:?}");
        let clean_par = verify_ltl(
            &s,
            &p,
            &SymbolicOptions {
                threads: 4,
                force_overlap: true,
                ..SymbolicOptions::default()
            },
        )
        .unwrap();
        assert_eq!(clean_par.verdict, clean.verdict);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        // The determinism contract: verdict AND lasso bytes (Verdict's
        // equality covers the rendered stem/cycle) identical for every
        // thread count, with the concurrent machinery genuinely running
        // (force_overlap) regardless of the host's core count. The
        // structural stats are part of the contract too.
        let s = login();
        for prop in ["G (!CP | logged_in)", "G !CP", "F CP"] {
            let p = parse_property(prop).unwrap();
            let base = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
            for threads in [2usize, 8] {
                let opts = SymbolicOptions {
                    threads,
                    force_overlap: true,
                    ..SymbolicOptions::default()
                };
                let out = verify_ltl(&s, &p, &opts).unwrap();
                assert_eq!(
                    out.verdict, base.verdict,
                    "threads={threads} diverged on {prop}"
                );
                assert_eq!(
                    out.stats.nodes_interned, base.stats.nodes_interned,
                    "threads={threads} interned differently on {prop}"
                );
                assert_eq!(
                    out.stats.successors_memoized, base.stats.successors_memoized,
                    "threads={threads} memoized differently on {prop}"
                );
                assert_eq!(out.stats.dedup_hits, base.stats.dedup_hits);
                assert_eq!(out.stats.memo_hits, base.stats.memo_hits);
                assert_eq!(out.stats.peak_frontier, base.stats.peak_frontier);
            }
        }
        let base = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        for threads in [2usize, 8] {
            let opts = SymbolicOptions {
                threads,
                force_overlap: true,
                ..SymbolicOptions::default()
            };
            let out = is_error_free(&s, &opts).unwrap();
            assert_eq!(out.verdict, base.verdict, "threads={threads} diverged");
            assert_eq!(out.stats.nodes_interned, base.stats.nodes_interned);
        }
    }

    #[test]
    fn error_free_limit_clamps_within_a_layer() {
        // The home page of the login service fans out into a wide first
        // layer. A tiny budget must stop interning *within* the layer —
        // at most one node past the limit (the one that trips the check),
        // never the rest of the layer. (A definite witness found before
        // the trip still outranks the budget, so only Violated may ever
        // replace LimitReached here.)
        let s = login();
        for limit in [1usize, 2, 3] {
            let opts = SymbolicOptions {
                node_limit: limit,
                ..SymbolicOptions::default()
            };
            let out = is_error_free(&s, &opts).unwrap();
            assert!(
                matches!(
                    out.verdict,
                    Verdict::LimitReached | Verdict::Violated { .. }
                ),
                "limit={limit} {out:?}"
            );
            assert!(
                out.stats.nodes_interned <= limit + 1,
                "limit={limit} overshot: interned {}",
                out.stats.nodes_interned
            );
        }
        // Exact-limit behavior on an error-free service: a budget of
        // exactly the reachable graph size suffices for the full answer;
        // one node less is LimitReached.
        let t = toggle();
        let full = is_error_free(&t, &SymbolicOptions::default()).unwrap();
        assert!(full.holds(), "{full:?}");
        let n = full.stats.nodes_interned;
        let exact = is_error_free(
            &t,
            &SymbolicOptions {
                node_limit: n,
                ..SymbolicOptions::default()
            },
        )
        .unwrap();
        assert_eq!(exact.verdict, full.verdict, "exact budget {n} must suffice");
        let short = is_error_free(
            &t,
            &SymbolicOptions {
                node_limit: n - 1,
                ..SymbolicOptions::default()
            },
        )
        .unwrap();
        assert_eq!(short.verdict, Verdict::LimitReached);
    }

    #[test]
    fn stats_are_populated() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.stats.nodes_interned > 0);
        assert!(out.stats.successors_memoized > 0);
        assert!(out.stats.peak_frontier > 0);
        // A sequential run reports no prefetch activity.
        assert_eq!(out.stats.prefetched, 0);
        assert_eq!(out.stats.prefetch_hits, 0);
        // A run with prefetch workers: same verdict, same structural
        // counters; only the overlap counters may differ (and they are
        // scheduling-dependent, so no exact value is pinned).
        let opts = SymbolicOptions {
            threads: 2,
            force_overlap: true,
            ..SymbolicOptions::default()
        };
        let warm = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(warm.verdict, out.verdict);
        assert_eq!(warm.stats.nodes_interned, out.stats.nodes_interned);
        assert_eq!(
            warm.stats.successors_memoized,
            out.stats.successors_memoized
        );
        assert_eq!(warm.stats.memo_hits, out.stats.memo_hits);
    }

    /// The login service plus dead logic nothing observes: an unreachable
    /// admin page, a write-only audit state, and an unread noise input.
    fn login_with_dead_logic() -> Service {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .input_relation("noise", 0)
            .state_prop("logged_in")
            .state_prop("audited")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .input_prop_on_page("noise")
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .insert_rule("audited", &[], "noise")
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP")
            .page("ADMIN")
            .insert_rule("audited", &[], "true")
            .target("HP", "true");
        b.build().unwrap()
    }

    #[test]
    fn slicing_preserves_verdicts_and_shrinks_the_search() {
        let s = login_with_dead_logic();
        let off = SymbolicOptions {
            slice: false,
            ..SymbolicOptions::default()
        };
        for prop in ["G (!CP | logged_in)", "G !CP", "F CP"] {
            let p = parse_property(prop).unwrap();
            let sliced = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
            let full = verify_ltl(&s, &p, &off).unwrap();
            assert_eq!(
                std::mem::discriminant(&sliced.verdict),
                std::mem::discriminant(&full.verdict),
                "slice changed the verdict on {prop}: {sliced:?} vs {full:?}"
            );
            assert!(sliced.stats.sliced_rules > 0, "{prop}: nothing sliced");
            assert!(sliced.stats.sliced_relations > 0);
            assert_eq!(full.stats.sliced_rules, 0);
            assert!(
                sliced.stats.nodes_interned < full.stats.nodes_interned,
                "{prop}: slicing did not shrink the space \
                 ({} vs {})",
                sliced.stats.nodes_interned,
                full.stats.nodes_interned
            );
        }
    }

    #[test]
    fn slicing_keeps_observed_dead_logic() {
        // A property observing the "dead" audit state keeps it in the
        // cone — and both configurations agree it can become true via
        // the noise input.
        let s = login_with_dead_logic();
        let p = parse_property("G !audited").unwrap();
        let sliced = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        let full = verify_ltl(
            &s,
            &p,
            &SymbolicOptions {
                slice: false,
                ..SymbolicOptions::default()
            },
        )
        .unwrap();
        assert!(sliced.violated(), "{sliced:?}");
        assert!(full.violated(), "{full:?}");
    }

    #[test]
    fn slicing_is_identity_on_minimal_services() {
        // Every symbol of the toggle is in the cone of `G (P | Q)`:
        // slicing must change nothing, including the structural stats.
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let sliced = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        let full = verify_ltl(
            &s,
            &p,
            &SymbolicOptions {
                slice: false,
                ..SymbolicOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sliced.verdict, full.verdict);
        assert_eq!(sliced.stats.nodes_interned, full.stats.nodes_interned);
        assert_eq!(sliced.stats.sliced_rules, 0);
        assert_eq!(sliced.stats.sliced_relations, 0);
    }
}
