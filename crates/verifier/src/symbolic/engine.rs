//! The symbolic product search: Theorem 3.5's decision procedure.
//!
//! The negated property is abstracted over its FO components into
//! propositional LTL, translated to a Büchi automaton, and the product
//! with the symbolic configuration graph is searched for an accepting
//! lasso with nested DFS. By the Periodic-Run Lemma a lasso exists iff
//! some database and user behaviour produce a violating run; by the
//! freshness discipline of the symbolic semantics the lasso is always
//! realizable (soundness).
//!
//! # Architecture: interned ids, memoized successors, parallel frontier
//!
//! Product nodes `(SymConfig, büchi state)` are hash-consed to dense ids
//! by the [`wave_automata::interner::Interner`] inside the nested DFS;
//! successor generation is memoized per node, so the inner (red) DFS
//! reuses the lists the outer (blue) DFS derived.
//!
//! On top of that, the engine memoizes the **expensive half** of
//! successor generation — `successors(cfg)` composed with the FO-component
//! letter evaluation — once per *configuration* (shared by every Büchi
//! state paired with it). With `threads > 1` a parallel frontier phase
//! warms this memo ahead of the search: `std::thread::scope` workers
//! expand BFS layers of the configuration graph, deduplicating through a
//! sharded claim table (plain `std` only — the registry is not always
//! reachable from CI). The phase is a pure cache: the verdict — including
//! counterexample lassos — is always produced by the same sequential
//! nested DFS over the same deterministically ordered successor lists, so
//! outcomes are **byte-identical for every thread count**.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wave_core::classify;
use wave_core::service::Service;
use wave_logic::bounded::BoundedError;
use wave_logic::schema::ConstKind;
use wave_logic::temporal::{Property, TemporalClass};

pub use wave_automata::cancel::CancelToken;
use wave_automata::interner::Interner;
use wave_automata::ltl2buchi::translate;
use wave_automata::props::PropSet;
pub use wave_automata::search::SearchStats;
use wave_automata::search::{find_accepting_lasso_stats_with, SearchResult};

use crate::abstraction::{to_pnf, FoAbstraction};

use super::config::SymConfig;
use super::eval::{eval_branching, Ctx};
use super::step::{initial_configs, successors};
use super::table::{CTable, Sym};

/// The node budget used when a caller passes the degenerate
/// `node_limit == 0` (see [`SymbolicOptions::normalized`]).
pub const DEFAULT_NODE_LIMIT: usize = 500_000;

/// Options for the symbolic verifier.
#[derive(Clone, Debug)]
pub struct SymbolicOptions {
    /// Budget on distinct product nodes. Exhausting it always surfaces
    /// as [`Verdict::LimitReached`] — never as a spurious "holds".
    /// The degenerate value `0` is normalized to [`DEFAULT_NODE_LIMIT`]
    /// (a zero-node search could never answer anything).
    pub node_limit: usize,
    /// Worker threads for the frontier-warming phase: `1` (the default)
    /// skips the phase entirely, `0` means one per available core. The
    /// verdict is byte-identical for every value — threads only
    /// pre-populate the successor memo.
    pub threads: usize,
    /// Cooperative cancellation: polled at every node expansion. A fired
    /// token surfaces as [`Verdict::Cancelled`] — never a panic. The
    /// default ([`CancelToken::never`]) costs nothing to poll.
    pub cancel: CancelToken,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            node_limit: DEFAULT_NODE_LIMIT,
            threads: 1,
            cancel: CancelToken::never(),
        }
    }
}

impl SymbolicOptions {
    /// Replaces degenerate settings with their documented meanings:
    ///
    /// * `node_limit == 0` → [`DEFAULT_NODE_LIMIT`]. A literal zero
    ///   budget would report [`Verdict::LimitReached`] before interning a
    ///   single node, which no caller ever wants; `0` therefore means
    ///   "default budget".
    /// * `threads == 0` → one worker per available core (as reported by
    ///   `std::thread::available_parallelism`, falling back to `1`).
    ///
    /// Both entry points ([`verify_ltl`], [`is_error_free`]) normalize on
    /// entry, so callers never need to pre-sanitize.
    pub fn normalized(&self) -> SymbolicOptions {
        SymbolicOptions {
            node_limit: if self.node_limit == 0 {
                DEFAULT_NODE_LIMIT
            } else {
                self.node_limit
            },
            threads: resolve_threads(self.threads),
            cancel: self.cancel.clone(),
        }
    }
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Why verification could not start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymbolicError {
    /// The service is not input-bounded (Theorem 3.5's hypothesis; the
    /// relaxations are undecidable per Theorems 3.7–3.9).
    ServiceNotInputBounded(Vec<(String, String, BoundedError)>),
    /// The property is not input-bounded.
    PropertyNotInputBounded(BoundedError),
    /// The property contains path quantifiers (Theorem 4.2 shows the
    /// combination is undecidable; use the CTL verifiers on the
    /// propositional classes instead).
    NotLtl,
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::ServiceNotInputBounded(vs) => {
                write!(f, "service is not input-bounded ({} violations)", vs.len())
            }
            SymbolicError::PropertyNotInputBounded(e) => {
                write!(f, "property is not input-bounded: {e}")
            }
            SymbolicError::NotLtl => write!(f, "property is not LTL-FO"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// The answer of a verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every run over every database satisfies the property.
    Holds {
        /// Distinct product nodes explored.
        explored: usize,
    },
    /// A violating pseudo-run (realizable by a concrete database and user
    /// behaviour) was found.
    Violated {
        /// Rendered configurations leading into the violating cycle.
        stem: Vec<String>,
        /// The repeating cycle.
        cycle: Vec<String>,
    },
    /// The node budget was exhausted before an answer — the result is
    /// **inconclusive**, not a proof.
    LimitReached,
    /// The run was cancelled (explicit cancel or deadline expiry on
    /// [`SymbolicOptions::cancel`]) before an answer — inconclusive,
    /// like `LimitReached`.
    Cancelled,
    /// The request is quarantined: repeated worker panics on the same
    /// fingerprint convicted the job of crashing its worker, so the
    /// service refuses to run it again and answers with this typed
    /// verdict instead of eroding the pool. Inconclusive, like
    /// `LimitReached`; the verifier itself never produces it — only the
    /// service layer does.
    Poisoned,
}

/// The verdict together with the search counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The answer. Deterministic: byte-identical for every `threads`
    /// setting.
    pub verdict: Verdict,
    /// Interning / memoization / timing counters for this run. Wall
    /// times vary run to run; everything else is deterministic.
    pub stats: SearchStats,
}

impl VerifyOutcome {
    /// True when the property was verified.
    pub fn holds(&self) -> bool {
        matches!(self.verdict, Verdict::Holds { .. })
    }

    /// True when a counterexample was found.
    pub fn violated(&self) -> bool {
        matches!(self.verdict, Verdict::Violated { .. })
    }
}

/// Per-configuration memo value: the letter-annotated successor
/// configurations, shared by every Büchi state.
type SuccPairs = Vec<(SymConfig, PropSet)>;

/// Verifies an input-bounded LTL-FO property on an input-bounded service,
/// over **all** databases and runs (Theorem 3.5).
pub fn verify_ltl(
    service: &Service,
    property: &Property,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    let opts = opts.normalized();
    if property.classify() != TemporalClass::Ltl {
        return Err(SymbolicError::NotLtl);
    }
    let violations = classify::input_bounded_violations(service);
    if !violations.is_empty() {
        return Err(SymbolicError::ServiceNotInputBounded(violations));
    }
    property
        .check_input_bounded(&service.schema)
        .map_err(SymbolicError::PropertyNotInputBounded)?;

    // ¬φ as a Büchi automaton over FO components.
    let mut table = FoAbstraction::default();
    let pnf = to_pnf(&property.body, true, &mut table).ok_or(SymbolicError::NotLtl)?;
    let aut = translate(&pnf);

    let ctable = CTable::build(service, property);
    // Witness environment: each universally quantified variable maps to
    // its Skolem symbol in C.
    let env: BTreeMap<String, Sym> = property
        .vars
        .iter()
        .map(|v| {
            (
                v.clone(),
                Sym::C(ctable.witness_sym(v).expect("witnesses are in C")),
            )
        })
        .collect();
    let ctx = Ctx {
        service,
        table: &ctable,
        ephemeral: Vec::new(),
    };

    // Letter evaluation with branching: every branch yields a (config,
    // letter) pair. A component mentioning an unprovided input constant is
    // not satisfied (Definition 3.1's satisfaction condition). Pure in
    // `cfg`, so its results can be cached and computed on any thread.
    let letters = |cfg: &SymConfig| -> SuccPairs {
        let mut acc: SuccPairs = vec![(cfg.clone(), PropSet::new())];
        for (i, comp) in table.components.iter().enumerate() {
            let mentions_unprovided = comp.constants_used().iter().any(|c| {
                service.schema.constant(c) == Some(ConstKind::Input)
                    && ctable
                        .const_sym(c)
                        .map(|s| !cfg.is_provided(s))
                        .unwrap_or(true)
            });
            let mut next = Vec::new();
            for (c, letter) in acc {
                if mentions_unprovided {
                    next.push((c, letter));
                    continue;
                }
                let (evals, unprov) = eval_branching(&ctx, &c, &env, comp);
                debug_assert!(!unprov, "provision pre-checked");
                for (c2, v) in evals {
                    let mut l2 = letter.clone();
                    if v {
                        l2.insert(i as u32);
                    }
                    next.push((c2, l2));
                }
            }
            acc = next;
        }
        acc
    };

    // The expensive half of product successor generation, memoized per
    // configuration: raw successors composed with letter branching.
    let expand = |cfg: &SymConfig| -> SuccPairs {
        let mut pairs = Vec::new();
        for s in successors(service, &ctable, cfg) {
            pairs.extend(letters(&s));
        }
        pairs
    };

    // Initial product nodes.
    let mut inits: Vec<(SymConfig, usize)> = Vec::new();
    for c0 in initial_configs(service, &ctable) {
        for (c1, letter) in letters(&c0) {
            for &q in &aut.initial {
                if aut.guard[q].accepts(&letter) {
                    inits.push((c1.clone(), q));
                }
            }
        }
    }

    // Phase 1 (optional): parallel frontier warming of the memo. The
    // cancel token bounds the warming rounds too — a deadline must not be
    // spent entirely inside the cache warmer.
    let threads = opts.threads;
    let mut memo: HashMap<SymConfig, SuccPairs> = HashMap::new();
    let mut frontier_wall = Duration::ZERO;
    let mut peak_frontier = 0usize;
    if threads > 1 {
        let t0 = Instant::now();
        let seeds: Vec<SymConfig> = inits.iter().map(|(c, _)| c.clone()).collect();
        (memo, peak_frontier) = warm_memo(seeds, &expand, threads, opts.node_limit, &opts.cancel);
        frontier_wall = t0.elapsed();
    }

    // Phase 2: the verdict-producing sequential nested DFS. Every memo
    // value is a pure function of the configuration, so warm entries and
    // cold (lazily computed) entries are interchangeable — the traversal
    // follows successor-list content order, never id or thread order.
    let mut warm_hits = 0u64;
    let succ = |(cfg, q): &(SymConfig, usize)| -> Vec<(SymConfig, usize)> {
        let pairs = match memo.get(cfg) {
            Some(p) => {
                warm_hits += 1;
                p.clone()
            }
            None => {
                let p = expand(cfg);
                memo.insert(cfg.clone(), p.clone());
                p
            }
        };
        let mut out = Vec::new();
        for (s2, letter) in &pairs {
            for &q2 in &aut.succ[*q] {
                if aut.guard[q2].accepts(letter) {
                    out.push((s2.clone(), q2));
                }
            }
        }
        out
    };
    let (result, mut stats) = find_accepting_lasso_stats_with(
        inits,
        succ,
        |(_, q)| aut.accepting[*q],
        Some(opts.node_limit),
        &opts.cancel,
    );
    stats.frontier_wall = frontier_wall;
    stats.peak_frontier = stats.peak_frontier.max(peak_frontier);
    stats.memo_hits += warm_hits;

    let verdict = match result {
        SearchResult::Empty { explored } => Verdict::Holds { explored },
        SearchResult::Lasso { stem, cycle } => Verdict::Violated {
            stem: stem.iter().map(|(c, _)| c.render(&ctable)).collect(),
            cycle: cycle.iter().map(|(c, _)| c.render(&ctable)).collect(),
        },
        SearchResult::LimitReached { .. } => Verdict::LimitReached,
        SearchResult::Cancelled => Verdict::Cancelled,
    };
    Ok(VerifyOutcome { verdict, stats })
}

/// Parallel BFS over the configuration graph, computing the per-config
/// successor memo with `std::thread::scope` workers over a **sharded
/// claim table**: each shard is a mutex-guarded set of configurations
/// some worker has taken responsibility for, so no configuration is
/// expanded twice. Returns the memo and the peak frontier width.
///
/// Purely a cache warmer: racy claim order may vary which worker computes
/// an entry, but every entry's *value* is a pure function of its key.
fn warm_memo(
    seeds: Vec<SymConfig>,
    expand: &(impl Fn(&SymConfig) -> SuccPairs + Sync),
    threads: usize,
    node_limit: usize,
    cancel: &CancelToken,
) -> (HashMap<SymConfig, SuccPairs>, usize) {
    const SHARDS: usize = 64;
    let claimed: Vec<Mutex<HashSet<SymConfig>>> =
        (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect();
    let shard_of = |cfg: &SymConfig| -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        cfg.hash(&mut h);
        (h.finish() as usize) % SHARDS
    };

    let mut memo: HashMap<SymConfig, SuccPairs> = HashMap::new();
    let mut frontier = seeds;
    let mut peak = 0usize;
    while !frontier.is_empty() && memo.len() < node_limit && !cancel.is_cancelled() {
        peak = peak.max(frontier.len());
        let chunk = frontier.len().div_ceil(threads);
        let results: Vec<Vec<(SymConfig, SuccPairs)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .map(|part| {
                    let claimed = &claimed;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for cfg in part {
                            if !claimed[shard_of(cfg)]
                                .lock()
                                .expect("claim shard poisoned")
                                .insert(cfg.clone())
                            {
                                continue; // another worker owns it
                            }
                            out.push((cfg.clone(), expand(cfg)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut next = Vec::new();
        let mut queued: HashSet<SymConfig> = HashSet::new();
        for (cfg, pairs) in results.into_iter().flatten() {
            memo.insert(cfg, pairs);
        }
        for pairs in memo.values() {
            // Only the newly reachable configs matter; cheap filter below.
            for (c, _) in pairs {
                if !memo.contains_key(c) && !queued.contains(c) {
                    queued.insert(c.clone());
                    next.push(c.clone());
                }
            }
        }
        frontier = next;
    }
    (memo, peak)
}

/// Diagnostic: breadth-first exploration of the symbolic configuration
/// graph (no automaton product), returning renders of the first `limit`
/// configurations. Useful to understand where a search blows up.
pub fn explore(service: &Service, property: &Property, limit: usize) -> Vec<String> {
    let ctable = CTable::build(service, property);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<SymConfig> =
        initial_configs(service, &ctable).into_iter().collect();
    while let Some(c) = queue.pop_front() {
        if !seen.insert(c.clone()) {
            continue;
        }
        out.push(format!(
            "{} | fresh={} facts={}",
            c.render(&ctable),
            c.n_fresh,
            c.st.persistent_facts()
        ));
        if out.len() >= limit {
            break;
        }
        for s in successors(service, &ctable, &c) {
            queue.push_back(s);
        }
    }
    out
}

/// Decides error-freeness (Theorem 3.5(i)): is the error page unreachable
/// on every database and run? Implemented as layered breadth-first
/// reachability over the symbolic configuration graph (no automaton
/// needed — "error free" is the safety property `G ¬W_err`). With
/// `threads > 1` each layer's successor computations are fanned out to
/// scoped workers; the layers are merged in frontier order, so the
/// witness path is byte-identical for every thread count.
pub fn is_error_free(
    service: &Service,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    let opts = opts.normalized();
    let violations = classify::input_bounded_violations(service);
    if !violations.is_empty() {
        return Err(SymbolicError::ServiceNotInputBounded(violations));
    }
    let property = Property::close(wave_logic::temporal::TFormula::always(
        wave_logic::temporal::TFormula::fo(wave_logic::formula::Formula::True),
    ));
    let ctable = CTable::build(service, &property);
    let threads = opts.threads;
    let t0 = Instant::now();

    let mut interner: Interner<SymConfig> = Interner::new();
    // BFS-tree parent of each interned config (None for initial ones).
    let mut parent: Vec<Option<u32>> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut expanded = 0usize;
    for c in initial_configs(service, &ctable) {
        let (id, new) = interner.intern(c);
        if new {
            parent.push(None);
            frontier.push(id);
        }
    }
    let mut peak = frontier.len();

    let stats = |interner: &Interner<SymConfig>, expanded: usize, peak: usize| SearchStats {
        nodes_interned: interner.len(),
        dedup_hits: interner.dedup_hits(),
        successors_memoized: expanded,
        memo_hits: 0,
        peak_frontier: peak,
        frontier_wall: t0.elapsed(),
        search_wall: Duration::ZERO,
    };
    let witness = |interner: &Interner<SymConfig>, parent: &[Option<u32>], id: u32| {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(i) = cur {
            path.push(interner.get(i).render(&ctable));
            cur = parent[i as usize];
        }
        path.reverse();
        Verdict::Violated {
            stem: path,
            cycle: Vec::new(),
        }
    };

    // Initial configurations start on the home page, but stay defensive.
    for &id in &frontier {
        if interner.get(id).page == service.error_page {
            return Ok(VerifyOutcome {
                verdict: witness(&interner, &parent, id),
                stats: stats(&interner, expanded, peak),
            });
        }
    }

    while !frontier.is_empty() {
        if opts.cancel.is_cancelled() {
            return Ok(VerifyOutcome {
                verdict: Verdict::Cancelled,
                stats: stats(&interner, expanded, peak),
            });
        }
        if interner.len() > opts.node_limit {
            return Ok(VerifyOutcome {
                verdict: Verdict::LimitReached,
                stats: stats(&interner, expanded, peak),
            });
        }
        let nodes: Vec<(u32, SymConfig)> = frontier
            .iter()
            .map(|&id| (id, interner.get(id).clone()))
            .collect();
        expanded += nodes.len();
        // Successor computation is pure; fan the layer out to workers and
        // merge the per-chunk results in frontier order (deterministic).
        let results: Vec<Vec<(u32, Vec<SymConfig>)>> = if threads > 1 && nodes.len() > 1 {
            let chunk = nodes.len().div_ceil(threads);
            let ct = &ctable;
            std::thread::scope(|scope| {
                let handles: Vec<_> = nodes
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|(id, cfg)| (*id, successors(service, ct, cfg)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        } else {
            vec![nodes
                .iter()
                .map(|(id, cfg)| (*id, successors(service, &ctable, cfg)))
                .collect()]
        };
        let mut next = Vec::new();
        for (pid, succs) in results.into_iter().flatten() {
            for s in succs {
                let (id, new) = interner.intern(s);
                if new {
                    parent.push(Some(pid));
                    if interner.get(id).page == service.error_page {
                        return Ok(VerifyOutcome {
                            verdict: witness(&interner, &parent, id),
                            stats: stats(&interner, expanded, peak),
                        });
                    }
                    next.push(id);
                }
            }
        }
        peak = peak.max(next.len());
        frontier = next;
    }
    Ok(VerifyOutcome {
        verdict: Verdict::Holds {
            explored: interner.len(),
        },
        stats: stats(&interner, expanded, peak),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn toggle() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn safety_holds_on_toggle() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn liveness_fails_on_toggle() {
        let s = toggle();
        let p = parse_property("F Q").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn before_operator_holds() {
        // "Q cannot happen before P": every run starts on P, so P B Q.
        let s = toggle();
        let p = parse_property("P B Q").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // Weak until: P persists until the (optional) switch to Q.
        let w = parse_property("(P U Q) | G P").unwrap();
        let out2 = verify_ltl(&s, &w, &SymbolicOptions::default()).unwrap();
        assert!(out2.holds(), "{out2:?}");
    }

    #[test]
    fn toggle_is_error_free() {
        let s = toggle();
        let out = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    fn login() -> Service {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP");
        b.build().unwrap()
    }

    #[test]
    fn login_invariant_holds_over_all_databases() {
        // G(CP → logged_in): for EVERY database — the paper's headline
        // capability; no enumeration of databases happens.
        let s = login();
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn login_reachability_witnessed_by_some_database() {
        // G ¬CP must FAIL: some database contains user(name, password).
        let s = login();
        let p = parse_property("G !CP").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn login_is_not_error_free() {
        // Idling on HP forever re-requests name/password: condition (ii).
        let s = login();
        let out = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn rejects_non_input_bounded_service() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .state_prop("s")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], "exists x . d(x)");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        assert!(matches!(
            verify_ltl(&s, &p, &SymbolicOptions::default()),
            Err(SymbolicError::ServiceNotInputBounded(_))
        ));
    }

    #[test]
    fn rejects_ctl_property() {
        let s = toggle();
        let p = parse_property("A G (E F P)").unwrap();
        assert_eq!(
            verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap_err(),
            SymbolicError::NotLtl
        );
    }

    #[test]
    fn witnessed_property() {
        // ∀x G ¬(go-with-arg...) — use a parameterized input instead.
        let mut b = ServiceBuilder::new("P");
        b.database_relation("item", 1)
            .input_relation("pick", 1)
            .state_relation("chosen", 1)
            .page("P")
            .input_rule("pick", &["y"], "item(y)")
            .insert_rule("chosen", &["y"], "pick(y)");
        let s = b.build().unwrap();
        // ∀x: G (chosen(x) → item(x)): anything recorded was a db item.
        let p = parse_property("forall x . G (!(exists q . (pick(q) & q = x)) | item(x))").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // ∀x: G ¬pick(x) must fail (a pick is possible).
        let q = parse_property("forall x . G !(exists q . (pick(q) & q = x))").unwrap();
        let out2 = verify_ltl(&s, &q, &SymbolicOptions::default()).unwrap();
        assert!(out2.violated(), "{out2:?}");
    }

    #[test]
    fn node_limit_never_reports_spurious_holds() {
        // `F Q` is VIOLATED on the toggle; with a budget of one node the
        // search cannot finish — the answer must be LimitReached, never
        // Holds (which would be unsound) and never a crash.
        let s = toggle();
        let p = parse_property("F Q").unwrap();
        let opts = SymbolicOptions {
            node_limit: 1,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(out.verdict, Verdict::LimitReached, "{out:?}");
        // Same for a property that holds: with budget 1 the engine must
        // admit it does not know.
        let q = parse_property("G (P | Q)").unwrap();
        let out2 = verify_ltl(&s, &q, &opts).unwrap();
        assert_eq!(out2.verdict, Verdict::LimitReached, "{out2:?}");
        // And for error-freeness reachability.
        let ef = is_error_free(&s, &opts).unwrap();
        assert_eq!(ef.verdict, Verdict::LimitReached, "{ef:?}");
    }

    #[test]
    fn zero_node_limit_normalizes_to_default_budget() {
        // Regression: a literal zero budget used to report LimitReached
        // before interning a single node. `0` now means "default budget".
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let opts = SymbolicOptions {
            node_limit: 0,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert!(out.holds(), "{out:?}");
        let ef = is_error_free(&s, &opts).unwrap();
        assert!(ef.holds(), "{ef:?}");
        assert_eq!(opts.normalized().node_limit, DEFAULT_NODE_LIMIT);
    }

    #[test]
    fn zero_threads_normalizes_to_available_cores() {
        // Regression: `threads: 0` means one worker per core, and must
        // produce the same verdict as the sequential default.
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let opts = SymbolicOptions {
            threads: 0,
            ..SymbolicOptions::default()
        };
        assert!(opts.normalized().threads >= 1);
        let out = verify_ltl(&s, &p, &opts).unwrap();
        let base = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert_eq!(out.verdict, base.verdict);
    }

    #[test]
    fn cancelled_token_yields_cancelled_verdict() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let opts = SymbolicOptions {
            cancel,
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Cancelled, "{out:?}");
        let ef = is_error_free(&s, &opts).unwrap();
        assert_eq!(ef.verdict, Verdict::Cancelled, "{ef:?}");
    }

    #[test]
    fn expired_deadline_yields_cancelled_verdict() {
        let s = login();
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let opts = SymbolicOptions {
            cancel: CancelToken::with_deadline(Duration::ZERO),
            ..SymbolicOptions::default()
        };
        let out = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Cancelled, "{out:?}");
        // A parallel run must respect the deadline too (warm phase).
        let opts2 = SymbolicOptions {
            cancel: CancelToken::with_deadline(Duration::ZERO),
            threads: 2,
            ..SymbolicOptions::default()
        };
        let out2 = verify_ltl(&s, &p, &opts2).unwrap();
        assert_eq!(out2.verdict, Verdict::Cancelled, "{out2:?}");
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let s = login();
        for prop in ["G (!CP | logged_in)", "G !CP", "F CP"] {
            let p = parse_property(prop).unwrap();
            let base = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
            for threads in [2usize, 8] {
                let opts = SymbolicOptions {
                    threads,
                    ..SymbolicOptions::default()
                };
                let out = verify_ltl(&s, &p, &opts).unwrap();
                assert_eq!(
                    out.verdict, base.verdict,
                    "threads={threads} diverged on {prop}"
                );
            }
        }
        let base = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        for threads in [2usize, 8] {
            let opts = SymbolicOptions {
                threads,
                ..SymbolicOptions::default()
            };
            let out = is_error_free(&s, &opts).unwrap();
            assert_eq!(out.verdict, base.verdict, "threads={threads} diverged");
        }
    }

    #[test]
    fn stats_are_populated() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.stats.nodes_interned > 0);
        assert!(out.stats.successors_memoized > 0);
        assert!(out.stats.peak_frontier > 0);
        // Parallel run warms the memo: the search phase should hit it.
        let opts = SymbolicOptions {
            threads: 2,
            ..SymbolicOptions::default()
        };
        let warm = verify_ltl(&s, &p, &opts).unwrap();
        assert_eq!(warm.verdict, out.verdict);
        assert!(warm.stats.frontier_wall > Duration::ZERO);
    }
}
