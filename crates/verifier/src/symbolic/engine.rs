//! The symbolic product search: Theorem 3.5's decision procedure.
//!
//! The negated property is abstracted over its FO components into
//! propositional LTL, translated to a Büchi automaton, and the product
//! with the symbolic configuration graph is searched for an accepting
//! lasso with nested DFS. By the Periodic-Run Lemma a lasso exists iff
//! some database and user behaviour produce a violating run; by the
//! freshness discipline of the symbolic semantics the lasso is always
//! realizable (soundness).

use std::collections::BTreeMap;
use std::fmt;

use wave_core::classify;
use wave_core::service::Service;
use wave_logic::bounded::BoundedError;
use wave_logic::schema::ConstKind;
use wave_logic::temporal::{Property, TemporalClass};

use wave_automata::ltl2buchi::translate;
use wave_automata::props::PropSet;
use wave_automata::search::{find_accepting_lasso, SearchResult};

use crate::abstraction::{to_pnf, FoAbstraction};

use super::config::SymConfig;
use super::eval::{eval_branching, Ctx};
use super::step::{initial_configs, successors};
use super::table::{CTable, Sym};

/// Options for the symbolic verifier.
#[derive(Clone, Debug)]
pub struct SymbolicOptions {
    /// Budget on distinct product nodes.
    pub node_limit: usize,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions { node_limit: 500_000 }
    }
}

/// Why verification could not start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymbolicError {
    /// The service is not input-bounded (Theorem 3.5's hypothesis; the
    /// relaxations are undecidable per Theorems 3.7–3.9).
    ServiceNotInputBounded(Vec<(String, String, BoundedError)>),
    /// The property is not input-bounded.
    PropertyNotInputBounded(BoundedError),
    /// The property contains path quantifiers (Theorem 4.2 shows the
    /// combination is undecidable; use the CTL verifiers on the
    /// propositional classes instead).
    NotLtl,
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::ServiceNotInputBounded(vs) => {
                write!(f, "service is not input-bounded ({} violations)", vs.len())
            }
            SymbolicError::PropertyNotInputBounded(e) => {
                write!(f, "property is not input-bounded: {e}")
            }
            SymbolicError::NotLtl => write!(f, "property is not LTL-FO"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// The verdict.
#[derive(Clone, Debug)]
pub enum VerifyOutcome {
    /// Every run over every database satisfies the property.
    Holds {
        /// Distinct product nodes explored.
        explored: usize,
    },
    /// A violating pseudo-run (realizable by a concrete database and user
    /// behaviour) was found.
    Violated {
        /// Rendered configurations leading into the violating cycle.
        stem: Vec<String>,
        /// The repeating cycle.
        cycle: Vec<String>,
    },
    /// The node budget was exhausted before an answer.
    LimitReached,
}

impl VerifyOutcome {
    /// True when the property was verified.
    pub fn holds(&self) -> bool {
        matches!(self, VerifyOutcome::Holds { .. })
    }

    /// True when a counterexample was found.
    pub fn violated(&self) -> bool {
        matches!(self, VerifyOutcome::Violated { .. })
    }
}

/// Verifies an input-bounded LTL-FO property on an input-bounded service,
/// over **all** databases and runs (Theorem 3.5).
pub fn verify_ltl(
    service: &Service,
    property: &Property,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    if property.classify() != TemporalClass::Ltl {
        return Err(SymbolicError::NotLtl);
    }
    let violations = classify::input_bounded_violations(service);
    if !violations.is_empty() {
        return Err(SymbolicError::ServiceNotInputBounded(violations));
    }
    property
        .check_input_bounded(&service.schema)
        .map_err(SymbolicError::PropertyNotInputBounded)?;

    // ¬φ as a Büchi automaton over FO components.
    let mut table = FoAbstraction::default();
    let pnf = to_pnf(&property.body, true, &mut table).ok_or(SymbolicError::NotLtl)?;
    let aut = translate(&pnf);

    let ctable = CTable::build(service, property);
    // Witness environment: each universally quantified variable maps to
    // its Skolem symbol in C.
    let env: BTreeMap<String, Sym> = property
        .vars
        .iter()
        .map(|v| {
            (
                v.clone(),
                Sym::C(ctable.witness_sym(v).expect("witnesses are in C")),
            )
        })
        .collect();
    let ctx = Ctx { service, table: &ctable, ephemeral: Vec::new() };

    // Letter evaluation with branching: every branch yields a (config,
    // letter) pair. A component mentioning an unprovided input constant is
    // not satisfied (Definition 3.1's satisfaction condition).
    let letters = |cfg: &SymConfig| -> Vec<(SymConfig, PropSet)> {
        let mut acc: Vec<(SymConfig, PropSet)> = vec![(cfg.clone(), PropSet::new())];
        for (i, comp) in table.components.iter().enumerate() {
            let mentions_unprovided = comp.constants_used().iter().any(|c| {
                service.schema.constant(c) == Some(ConstKind::Input)
                    && ctable
                        .const_sym(c)
                        .map(|s| !cfg.is_provided(s))
                        .unwrap_or(true)
            });
            let mut next = Vec::new();
            for (c, letter) in acc {
                if mentions_unprovided {
                    next.push((c, letter));
                    continue;
                }
                let (evals, unprov) = eval_branching(&ctx, &c, &env, comp);
                debug_assert!(!unprov, "provision pre-checked");
                for (c2, v) in evals {
                    let mut l2 = letter.clone();
                    if v {
                        l2.insert(i as u32);
                    }
                    next.push((c2, l2));
                }
            }
            acc = next;
        }
        acc
    };

    // Initial product nodes.
    let mut inits: Vec<(SymConfig, usize)> = Vec::new();
    for c0 in initial_configs(service, &ctable) {
        for (c1, letter) in letters(&c0) {
            for &q in &aut.initial {
                if aut.guard[q].accepts(&letter) {
                    inits.push((c1.clone(), q));
                }
            }
        }
    }

    let result = find_accepting_lasso(
        inits,
        |(cfg, q)| {
            let mut out = Vec::new();
            for s in successors(service, &ctable, cfg) {
                for (s2, letter) in letters(&s) {
                    for &q2 in &aut.succ[*q] {
                        if aut.guard[q2].accepts(&letter) {
                            out.push((s2.clone(), q2));
                        }
                    }
                }
            }
            out
        },
        |(_, q)| aut.accepting[*q],
        Some(opts.node_limit),
    );

    Ok(match result {
        SearchResult::Empty { explored } => VerifyOutcome::Holds { explored },
        SearchResult::Lasso { stem, cycle } => VerifyOutcome::Violated {
            stem: stem.iter().map(|(c, _)| c.render(&ctable)).collect(),
            cycle: cycle.iter().map(|(c, _)| c.render(&ctable)).collect(),
        },
        SearchResult::LimitReached { .. } => VerifyOutcome::LimitReached,
    })
}

/// Diagnostic: breadth-first exploration of the symbolic configuration
/// graph (no automaton product), returning renders of the first `limit`
/// configurations. Useful to understand where a search blows up.
pub fn explore(service: &Service, property: &Property, limit: usize) -> Vec<String> {
    let ctable = CTable::build(service, property);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<SymConfig> =
        initial_configs(service, &ctable).into_iter().collect();
    while let Some(c) = queue.pop_front() {
        if !seen.insert(c.clone()) {
            continue;
        }
        out.push(format!("{} | fresh={} facts={}", c.render(&ctable), c.n_fresh, c.st.persistent_facts()));
        if out.len() >= limit {
            break;
        }
        for s in successors(service, &ctable, &c) {
            queue.push_back(s);
        }
    }
    out
}

/// Decides error-freeness (Theorem 3.5(i)): is the error page unreachable
/// on every database and run? Implemented as plain reachability over the
/// symbolic configuration graph (no automaton needed — "error free" is the
/// safety property `G ¬W_err`).
pub fn is_error_free(
    service: &Service,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    let violations = classify::input_bounded_violations(service);
    if !violations.is_empty() {
        return Err(SymbolicError::ServiceNotInputBounded(violations));
    }
    let property = Property::close(wave_logic::temporal::TFormula::always(
        wave_logic::temporal::TFormula::fo(wave_logic::formula::Formula::True),
    ));
    let ctable = CTable::build(service, &property);

    // DFS for a configuration on the error page.
    let mut seen = std::collections::BTreeSet::new();
    let mut parents: BTreeMap<SymConfig, SymConfig> = BTreeMap::new();
    let mut stack = initial_configs(service, &ctable);
    for c in &stack {
        seen.insert(c.clone());
    }
    while let Some(c) = stack.pop() {
        if c.page == service.error_page {
            // Reconstruct the witness path.
            let mut path = vec![c.render(&ctable)];
            let mut cur = c;
            while let Some(p) = parents.get(&cur) {
                path.push(p.render(&ctable));
                cur = p.clone();
            }
            path.reverse();
            return Ok(VerifyOutcome::Violated { stem: path, cycle: Vec::new() });
        }
        if seen.len() > opts.node_limit {
            return Ok(VerifyOutcome::LimitReached);
        }
        for s in successors(service, &ctable, &c) {
            if seen.insert(s.clone()) {
                parents.insert(s.clone(), c.clone());
                stack.push(s);
            }
        }
    }
    Ok(VerifyOutcome::Holds { explored: seen.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn toggle() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn safety_holds_on_toggle() {
        let s = toggle();
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn liveness_fails_on_toggle() {
        let s = toggle();
        let p = parse_property("F Q").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn before_operator_holds() {
        // "Q cannot happen before P": every run starts on P, so P B Q.
        let s = toggle();
        let p = parse_property("P B Q").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // Weak until: P persists until the (optional) switch to Q.
        let w = parse_property("(P U Q) | G P").unwrap();
        let out2 = verify_ltl(&s, &w, &SymbolicOptions::default()).unwrap();
        assert!(out2.holds(), "{out2:?}");
    }

    #[test]
    fn toggle_is_error_free() {
        let s = toggle();
        let out = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    fn login() -> Service {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .insert_rule("logged_in", &[], r#"user(name, password) & button("login")"#)
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP");
        b.build().unwrap()
    }

    #[test]
    fn login_invariant_holds_over_all_databases() {
        // G(CP → logged_in): for EVERY database — the paper's headline
        // capability; no enumeration of databases happens.
        let s = login();
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn login_reachability_witnessed_by_some_database() {
        // G ¬CP must FAIL: some database contains user(name, password).
        let s = login();
        let p = parse_property("G !CP").unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn login_is_not_error_free() {
        // Idling on HP forever re-requests name/password: condition (ii).
        let s = login();
        let out = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(out.violated(), "{out:?}");
    }

    #[test]
    fn rejects_non_input_bounded_service() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .state_prop("s")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], "exists x . d(x)");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        assert!(matches!(
            verify_ltl(&s, &p, &SymbolicOptions::default()),
            Err(SymbolicError::ServiceNotInputBounded(_))
        ));
    }

    #[test]
    fn rejects_ctl_property() {
        let s = toggle();
        let p = parse_property("A G (E F P)").unwrap();
        assert_eq!(
            verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap_err(),
            SymbolicError::NotLtl
        );
    }

    #[test]
    fn witnessed_property() {
        // ∀x G ¬(go-with-arg...) — use a parameterized input instead.
        let mut b = ServiceBuilder::new("P");
        b.database_relation("item", 1)
            .input_relation("pick", 1)
            .state_relation("chosen", 1)
            .page("P")
            .input_rule("pick", &["y"], "item(y)")
            .insert_rule("chosen", &["y"], "pick(y)");
        let s = b.build().unwrap();
        // ∀x: G (chosen(x) → item(x)): anything recorded was a db item.
        let p = parse_property(
            "forall x . G (!(exists q . (pick(q) & q = x)) | item(x))",
        )
        .unwrap();
        let out = verify_ltl(&s, &p, &SymbolicOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // ∀x: G ¬pick(x) must fail (a pick is possible).
        let q = parse_property("forall x . G !(exists q . (pick(q) & q = x))").unwrap();
        let out2 = verify_ltl(&s, &q, &SymbolicOptions::default()).unwrap();
        assert!(out2.violated(), "{out2:?}");
    }
}
