//! The symbol set `C` of the Local-Run Lemma and the symbolic values.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wave_core::service::Service;
use wave_logic::schema::ConstKind;
use wave_logic::temporal::Property;
use wave_logic::value::Value;

/// Index into the constant table.
pub type CSym = u16;

/// A symbolic value: a `C`-symbol or a live fresh symbol (canonically
/// numbered per configuration).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sym {
    /// A member of the designated symbol set `C`.
    C(CSym),
    /// A fresh element introduced by a recent user input (or an ephemeral
    /// ∃FO witness); distinct from every `C`-symbol and from other fresh
    /// symbols with different ids.
    F(u16),
}

/// What a `C`-symbol denotes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CSymKind {
    /// A literal of the specification or property — fixed, pairwise
    /// distinct values.
    Literal(Value),
    /// A named database constant (interpretation chosen with the database).
    DbConst(String),
    /// An input constant (value provided by the user during the run).
    InputConst(String),
    /// A Skolem witness for a universally quantified property variable.
    Witness(String),
}

/// The designated symbol set `C`.
///
/// # Layout invariant: literals first
///
/// The literal symbols occupy the **prefix** `0..n_literals()` of the
/// table. Combined with the union–find convention that a class
/// representative is its smallest member, this makes "does this class
/// contain a literal, and which?" an O(1) question: a class contains a
/// literal iff its representative is one (see
/// [`SymState::eq_status`](super::state::SymState::eq_status)).
#[derive(Clone, Debug, Default)]
pub struct CTable {
    syms: Vec<CSymKind>,
    /// Literals occupy `syms[0..n_literals]` (see the type-level
    /// invariant).
    n_literals: usize,
    /// Lookup indices: the `syms` scan they replace sits on the
    /// successor-generation hot path (every term resolution).
    by_literal: BTreeMap<Value, CSym>,
    by_const: BTreeMap<String, CSym>,
    by_witness: BTreeMap<String, CSym>,
}

impl CTable {
    /// Builds `C` from a service and a property: all literals, database
    /// constants, input constants, and one witness per property variable.
    pub fn build(service: &Service, property: &Property) -> CTable {
        let mut literals: BTreeSet<Value> = BTreeSet::new();
        for page in service.pages.values() {
            for (body, _) in page.all_bodies() {
                literals.extend(body.literals_used());
            }
        }
        for comp in property.body.fo_components() {
            literals.extend(comp.literals_used());
        }
        let mut syms = Vec::new();
        for v in literals {
            syms.push(CSymKind::Literal(v));
        }
        let n_literals = syms.len();
        for (name, kind) in service.schema.constants() {
            match kind {
                ConstKind::Database => syms.push(CSymKind::DbConst(name.to_string())),
                ConstKind::Input => syms.push(CSymKind::InputConst(name.to_string())),
            }
        }
        for v in &property.vars {
            syms.push(CSymKind::Witness(v.clone()));
        }
        let mut by_literal = BTreeMap::new();
        let mut by_const = BTreeMap::new();
        let mut by_witness = BTreeMap::new();
        for (i, kind) in syms.iter().enumerate() {
            match kind {
                CSymKind::Literal(v) => {
                    by_literal.insert(v.clone(), i as CSym);
                }
                CSymKind::DbConst(n) | CSymKind::InputConst(n) => {
                    by_const.insert(n.clone(), i as CSym);
                }
                CSymKind::Witness(v) => {
                    by_witness.insert(v.clone(), i as CSym);
                }
            }
        }
        CTable {
            syms,
            n_literals,
            by_literal,
            by_const,
            by_witness,
        }
    }

    /// Number of literal symbols; they occupy indices `0..n_literals()`.
    pub fn n_literals(&self) -> usize {
        self.n_literals
    }

    /// Number of symbols in `C`.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when `C` is empty.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The kind of a symbol.
    pub fn kind(&self, s: CSym) -> &CSymKind {
        &self.syms[s as usize]
    }

    /// The literal value of a symbol, if it is a literal.
    pub fn literal(&self, s: CSym) -> Option<&Value> {
        match self.kind(s) {
            CSymKind::Literal(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up the symbol for a literal value.
    pub fn literal_sym(&self, v: &Value) -> Option<CSym> {
        self.by_literal.get(v).copied()
    }

    /// Looks up the symbol for a named constant (database or input).
    pub fn const_sym(&self, name: &str) -> Option<CSym> {
        self.by_const.get(name).copied()
    }

    /// Looks up the witness symbol for a property variable.
    pub fn witness_sym(&self, var: &str) -> Option<CSym> {
        self.by_witness.get(var).copied()
    }

    /// True when the symbol is an input constant.
    pub fn is_input_const(&self, s: CSym) -> bool {
        matches!(self.kind(s), CSymKind::InputConst(_))
    }

    /// Renders a symbol for diagnostics.
    pub fn render(&self, s: Sym) -> String {
        match s {
            Sym::F(i) => format!("✶{i}"),
            Sym::C(c) => match self.kind(c) {
                CSymKind::Literal(v) => format!("{v:?}"),
                CSymKind::DbConst(n) => format!("@{n}"),
                CSymKind::InputConst(n) => format!("?{n}"),
                CSymKind::Witness(v) => format!("${v}"),
            },
        }
    }
}

impl fmt::Display for CTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C = {{")?;
        for i in 0..self.syms.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.render(Sym::C(i as CSym)))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    #[test]
    fn table_collects_all_symbol_sources() {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .database_constant("min")
            .input_constant("name")
            .input_relation("button", 1)
            .page("HP")
            .solicit_constant("name")
            .input_rule("button", &["x"], r#"x = "login" | x = "clear""#);
        let s = b.build().unwrap();
        let p = parse_property("forall pid . G !ship(pid)").unwrap();
        let t = CTable::build(&s, &p);
        assert!(t.literal_sym(&Value::str("login")).is_some());
        assert!(t.literal_sym(&Value::str("clear")).is_some());
        assert!(t.const_sym("min").is_some());
        assert!(t.const_sym("name").is_some());
        assert!(t.witness_sym("pid").is_some());
        assert_eq!(t.len(), 5);
        let name = t.const_sym("name").unwrap();
        assert!(t.is_input_const(name));
        assert!(!t.is_input_const(t.const_sym("min").unwrap()));
    }

    #[test]
    fn rendering() {
        let mut b = ServiceBuilder::new("HP");
        b.input_relation("button", 1)
            .page("HP")
            .input_rule("button", &["x"], r#"x = "go""#);
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        let t = CTable::build(&s, &p);
        let go = t.literal_sym(&Value::str("go")).unwrap();
        assert_eq!(t.render(Sym::C(go)), "\"go\"");
        assert_eq!(t.render(Sym::F(2)), "✶2");
    }
}
