//! Symbolic successor generation — Definition 2.3 over symbols.
//!
//! Mirrors the concrete interpreter's split into a *transition core*
//! (targets with ambiguity detection, state update on `C`-tuples with
//! conflict-no-op semantics, action firing, `prev` shift) and a *page
//! entry* (constant provisioning with the (i)/(ii) error conditions, and
//! the user's input choice). Where the concrete interpreter evaluates over
//! one database, every step here *branches*: on undecided database
//! literals and `C`-equalities, on the equality type of each new input
//! component (a `C`-class or a fresh element), and on the ∃FO witnesses
//! needed to put the chosen tuple inside the page's input options.

use std::collections::BTreeMap;

use wave_core::page::Page;
use wave_core::service::Service;
use wave_logic::formula::Var;
use wave_logic::schema::{ConstKind, RelKind};

use super::config::SymConfig;
use super::eval::{eval_branching, Ctx};
use super::table::{CSym, CTable, Sym};

/// Base id for ephemeral ∃FO witnesses (never collides with live fresh
/// symbols, whose count stays far below this).
const EPHEMERAL_BASE: u16 = 10_000;

/// All initial configurations `σ_0`: every symbolic way to enter the home
/// page.
pub fn initial_configs(service: &Service, table: &CTable) -> Vec<SymConfig> {
    let blank = SymConfig::initial(service, table);
    enter_page(service, table, blank, &service.home.clone())
}

/// All symbolic successors of `cfg`.
pub fn successors(service: &Service, table: &CTable, cfg: &SymConfig) -> Vec<SymConfig> {
    if cfg.page == service.error_page {
        return vec![cfg.clone()];
    }
    if cfg.err_pending {
        return vec![cfg.to_error(service)];
    }
    let page = service
        .page(&cfg.page)
        .expect("non-error configurations sit on defined pages");

    // --- targets: branch over rule bodies; ambiguity → error page ---
    // Each branch carries (config-with-knowledge, Some(next page) so far).
    let mut branches: Vec<(SymConfig, Option<String>, bool)> = vec![(cfg.clone(), None, false)];
    let ctx = Ctx {
        service,
        table,
        ephemeral: Vec::new(),
    };
    for rule in &page.target_rules {
        let mut next = Vec::new();
        for (c, target, dead) in branches {
            if dead {
                next.push((c, target, dead));
                continue;
            }
            let (evals, unprovided) = eval_branching(&ctx, &c, &BTreeMap::new(), &rule.body);
            if unprovided {
                // Structurally prevented by err_pending, but stay faithful:
                // a missing constant at rule evaluation dooms the step.
                next.push((c, None, true));
                continue;
            }
            for (c2, v) in evals {
                if !v {
                    next.push((c2, target.clone(), false));
                } else {
                    match &target {
                        Some(t) if t != &rule.target => next.push((c2, None, true)),
                        _ => next.push((c2, Some(rule.target.clone()), false)),
                    }
                }
            }
        }
        branches = next;
    }

    let mut out = Vec::new();
    for (c, target, dead) in branches {
        if dead {
            out.push(c.to_error(service));
            continue;
        }
        let next_page = target.unwrap_or_else(|| cfg.page.clone());
        for core in transition_cores(service, table, page, c) {
            out.extend(enter_page(service, table, core, &next_page));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Computes the state/action/prev part of the transition from a branch
/// whose target is already decided. The knowledge store keeps evolving —
/// state memberships are accumulated against pre-step tuples and
/// re-canonicalized at the end (a merge that collapses tuples with
/// different membership kills the branch).
fn transition_cores(
    service: &Service,
    table: &CTable,
    page: &Page,
    cfg: SymConfig,
) -> Vec<SymConfig> {
    type Acc = Vec<(String, Vec<CSym>, bool)>; // (relation, pre-step tuple, next-membership)
    let ctx = Ctx {
        service,
        table,
        ephemeral: Vec::new(),
    };
    let base_reps = cfg.st.reps();

    let mut branches: Vec<(SymConfig, Acc, Acc)> = vec![(cfg.clone(), Vec::new(), Vec::new())];

    // State rules.
    for rel in service.schema.relations_of(RelKind::State) {
        let rule = page.state_rule(&rel.name);
        for tuple in tuples_over(&base_reps, rel.arity) {
            let mut next = Vec::new();
            for (c, mut sacc, aacc) in branches {
                let current = c.state.contains(&(rel.name.clone(), tuple.clone()));
                match rule {
                    None => {
                        if current {
                            sacc.push((rel.name.clone(), tuple.clone(), true));
                        }
                        next.push((c, sacc, aacc));
                    }
                    Some(r) => {
                        let env: BTreeMap<Var, Sym> = r
                            .vars
                            .iter()
                            .cloned()
                            .zip(tuple.iter().map(|&t| Sym::C(t)))
                            .collect();
                        let ins_branches = match &r.insert {
                            Some(body) => eval_branching(&ctx, &c, &env, body).0,
                            None => vec![(c.clone(), false)],
                        };
                        for (c2, ins) in ins_branches {
                            let del_branches = match &r.delete {
                                Some(body) => eval_branching(&ctx, &c2, &env, body).0,
                                None => vec![(c2.clone(), false)],
                            };
                            for (c3, del) in del_branches {
                                let member = (ins && !del) || (current && (ins == del));
                                let mut s2 = sacc.clone();
                                if member {
                                    s2.push((rel.name.clone(), tuple.clone(), true));
                                }
                                next.push((c3, s2, aacc.clone()));
                            }
                        }
                    }
                }
            }
            branches = next;
        }
    }

    // Action rules.
    for rule in &page.action_rules {
        let arity = service
            .schema
            .relation(&rule.relation)
            .map(|r| r.arity)
            .unwrap_or(0);
        for tuple in tuples_over(&base_reps, arity) {
            let mut next = Vec::new();
            for (c, sacc, mut aacc) in branches {
                let env: BTreeMap<Var, Sym> = rule
                    .vars
                    .iter()
                    .cloned()
                    .zip(tuple.iter().map(|&t| Sym::C(t)))
                    .collect();
                for (c2, fired) in eval_branching(&ctx, &c, &env, &rule.body).0 {
                    let mut a2 = aacc.clone();
                    if fired {
                        a2.push((rule.relation.clone(), tuple.clone(), true));
                    }
                    next.push((c2, sacc.clone(), a2));
                }
                aacc.clear(); // moved into clones above
            }
            branches = next;
        }
    }

    // Finalize each branch: canonicalize accumulated facts, shift prev,
    // retire dead fresh symbols.
    let mut out = Vec::new();
    'branch: for (mut c, sacc, aacc) in branches {
        let mut state = std::collections::BTreeSet::new();
        let mut decided: BTreeMap<(String, Vec<CSym>), bool> = BTreeMap::new();
        for reps in tuples_decisions(&sacc, &c) {
            let ((rel, tuple), member) = reps;
            match decided.insert((rel.clone(), tuple.clone()), member) {
                Some(old) if old != member => continue 'branch, // collapse conflict
                _ => {}
            }
            if member {
                state.insert((rel, tuple));
            }
        }
        // Memberships default to false: also check that collapsed
        // *positive* tuples don't meet implicit negatives — the map above
        // covers explicit entries; implicit false entries correspond to
        // tuples never pushed, which collapse conflicts are caught by
        // `SymConfig::assert` at merge time for previously-stored facts.
        let mut action = std::collections::BTreeSet::new();
        for (rel, tuple, member) in &aacc {
            let canon: Vec<CSym> = tuple.iter().map(|&t| c.st.find(t)).collect();
            if *member {
                action.insert((rel.clone(), canon));
            }
        }
        c.state = state;
        c.action = action;

        // prev := current inputs of this page (arity > 0 only).
        let mut prev = BTreeMap::new();
        for rel in &page.inputs {
            if let Some(r) = service.schema.relation(rel) {
                if r.arity > 0 {
                    if let Some(t) = c.inputs.get(rel) {
                        prev.insert(rel.clone(), t.clone());
                    }
                }
            }
        }
        c.inputs = BTreeMap::new();
        c.prev = prev;

        // Renumber live fresh symbols (those surviving in prev).
        let mut rename: BTreeMap<u16, u16> = BTreeMap::new();
        for t in c.prev.values() {
            for s in t {
                if let Sym::F(i) = s {
                    let n = rename.len() as u16;
                    rename.entry(*i).or_insert(n);
                }
            }
        }
        let map = rename.clone();
        c.st.retire_fresh(&move |i| map.get(&i).copied());
        for t in c.prev.values_mut() {
            for s in t.iter_mut() {
                if let Sym::F(i) = s {
                    *s = Sym::F(rename[i]);
                }
            }
        }
        c.n_fresh = rename.len() as u16;
        out.push(c);
    }
    out
}

fn tuples_decisions(
    acc: &[(String, Vec<CSym>, bool)],
    c: &SymConfig,
) -> Vec<((String, Vec<CSym>), bool)> {
    acc.iter()
        .map(|(rel, tuple, member)| {
            let canon: Vec<CSym> = tuple.iter().map(|&t| c.st.find(t)).collect();
            ((rel.clone(), canon), *member)
        })
        .collect()
}

fn tuples_over(reps: &[CSym], arity: usize) -> Vec<Vec<CSym>> {
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * reps.len());
        for t in &out {
            for &r in reps {
                let mut u = t.clone();
                u.push(r);
                next.push(u);
            }
        }
        out = next;
    }
    out
}

/// Enters `page_name` with the carried configuration: provisions input
/// constants (conditions (i)/(ii)), then branches over every input choice,
/// asserting option membership for chosen tuples.
fn enter_page(
    service: &Service,
    table: &CTable,
    mut cfg: SymConfig,
    page_name: &str,
) -> Vec<SymConfig> {
    if page_name == service.error_page {
        let mut e = cfg.to_error(service);
        e.page = service.error_page.clone();
        return vec![e];
    }
    cfg.page = page_name.to_string();
    let page = service.page(page_name).expect("defined page");

    // Condition (ii): re-request of a provided constant.
    let page_consts: Vec<CSym> = page
        .input_constants
        .iter()
        .filter_map(|c| table.const_sym(c))
        .collect();
    let rerequest = page_consts.iter().any(|c| cfg.is_provided(*c));
    if !rerequest {
        for c in &page_consts {
            cfg.provided.insert(*c);
        }
    }

    // Condition (i): a rule formula uses a still-unprovided constant.
    let missing = page.constants_used().into_iter().any(|c| {
        service.schema.constant(&c) == Some(ConstKind::Input)
            && table
                .const_sym(&c)
                .map(|s| !cfg.is_provided(s))
                .unwrap_or(true)
    });
    cfg.err_pending = rerequest || missing;

    // Input choices, relation by relation.
    let mut branches = vec![cfg];
    let mut inputs_sorted = page.inputs.clone();
    inputs_sorted.sort();
    for rel in &inputs_sorted {
        let arity = service.schema.relation(rel).map(|r| r.arity).unwrap_or(0);
        let mut next = Vec::new();
        for c in branches {
            if arity == 0 {
                // Propositional input: free truth value.
                next.push(c.clone());
                let mut c2 = c;
                c2.inputs.insert(rel.clone(), Vec::new());
                next.push(c2);
                continue;
            }
            // No pick.
            next.push(c.clone());
            // Every equality type for the picked tuple.
            for tuple in component_choices(&c, arity) {
                let mut c2 = c.clone();
                let max_fresh = tuple
                    .iter()
                    .filter_map(|s| match s {
                        Sym::F(i) => Some(*i + 1),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(c2.n_fresh);
                c2.n_fresh = c2.n_fresh.max(max_fresh);
                c2.inputs.insert(rel.clone(), tuple.clone());
                // The pick must come from the page's options.
                if cfg_err_pending_blocks_options(&c2) {
                    // Options unavailable (missing constant): per the
                    // concrete semantics the option set is empty, so no
                    // tuple can be picked.
                    continue;
                }
                let Some(rule) = page.input_rule(rel) else {
                    continue;
                };
                let env: BTreeMap<Var, Sym> = rule
                    .vars
                    .iter()
                    .cloned()
                    .zip(tuple.iter().copied())
                    .collect();
                let n_eph = count_quantified(&rule.body);
                let ephemeral: Vec<Sym> = (0..n_eph as u16)
                    .map(|i| Sym::F(EPHEMERAL_BASE + i))
                    .collect();
                let ctx = Ctx {
                    service,
                    table,
                    ephemeral,
                };
                for (c3, ok) in eval_branching(&ctx, &c2, &env, &rule.body).0 {
                    if !ok {
                        continue;
                    }
                    let mut c4 = c3;
                    // Ephemeral witnesses die immediately; their database
                    // facts are realizable by globally fresh elements.
                    c4.st
                        .retire_fresh(&|i| if i < EPHEMERAL_BASE { Some(i) } else { None });
                    next.push(c4);
                }
            }
        }
        branches = next;
    }
    branches.sort();
    branches.dedup();
    branches
}

fn cfg_err_pending_blocks_options(c: &SymConfig) -> bool {
    // entry_options in the concrete semantics yields an empty option set
    // when a rule needs a missing constant; err_pending covers both error
    // conditions, of which only (i) affects options. Being conservative
    // here only prunes runs that are headed to the error page anyway.
    c.err_pending
}

/// Candidate tuples for a picked input: every component is a `C`-class
/// representative, an existing live fresh symbol, or a new fresh symbol
/// (numbered in restricted-growth fashion so patterns are canonical).
fn component_choices(cfg: &SymConfig, arity: usize) -> Vec<Vec<Sym>> {
    let reps = cfg.st.reps();
    let mut out: Vec<(Vec<Sym>, u16)> = vec![(Vec::new(), cfg.n_fresh)];
    for _ in 0..arity {
        let mut next = Vec::new();
        for (t, next_new) in &out {
            for &r in &reps {
                let mut u = t.clone();
                u.push(Sym::C(r));
                next.push((u, *next_new));
            }
            // existing live fresh and earlier new-fresh in this tuple
            for i in 0..*next_new {
                let mut u = t.clone();
                u.push(Sym::F(i));
                next.push((u, *next_new));
            }
            // a brand-new fresh element
            let mut u = t.clone();
            u.push(Sym::F(*next_new));
            next.push((u, next_new + 1));
        }
        out = next;
    }
    out.into_iter().map(|(t, _)| t).collect()
}

fn count_quantified(f: &wave_logic::formula::Formula) -> usize {
    let mut n = 0;
    f.walk(&mut |g| {
        if let wave_logic::formula::Formula::Exists(vars, _)
        | wave_logic::formula::Formula::Forall(vars, _) = g
        {
            n += vars.len();
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn toggle() -> (Service, CTable) {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        let t = CTable::build(&s, &p);
        (s, t)
    }

    #[test]
    fn initial_configs_enumerate_prop_input() {
        let (s, t) = toggle();
        let inits = initial_configs(&s, &t);
        // go pressed or not
        assert_eq!(inits.len(), 2);
        assert!(inits.iter().all(|c| c.page == "P"));
        assert!(inits.iter().any(|c| c.inputs.contains_key("go")));
        assert!(inits.iter().any(|c| !c.inputs.contains_key("go")));
    }

    #[test]
    fn toggle_successors_move_pages() {
        let (s, t) = toggle();
        let inits = initial_configs(&s, &t);
        let pressed = inits.iter().find(|c| c.inputs.contains_key("go")).unwrap();
        let succs = successors(&s, &t, pressed);
        assert!(succs.iter().all(|c| c.page == "Q"));
        let idle = inits.iter().find(|c| !c.inputs.contains_key("go")).unwrap();
        let succs2 = successors(&s, &t, idle);
        assert!(succs2.iter().all(|c| c.page == "P"));
    }

    fn login() -> (Service, CTable) {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        let t = CTable::build(&s, &p);
        (s, t)
    }

    #[test]
    fn login_reaches_cp_only_with_db_fact() {
        let (s, t) = login();
        let inits = initial_configs(&s, &t);
        // Some initial config presses login.
        let pressed: Vec<_> = inits
            .iter()
            .filter(|c| c.inputs.contains_key("button"))
            .collect();
        assert!(!pressed.is_empty());
        let mut reached_cp = false;
        let mut stayed = false;
        for c in pressed {
            for s2 in successors(&s, &t, c) {
                match s2.page.as_str() {
                    "CP" => {
                        reached_cp = true;
                        // the branch assumed user(name, password)
                        assert!(s2.state.contains(&("logged_in".into(), vec![])));
                    }
                    "HP" => stayed = true,
                    other => panic!("unexpected page {other}"),
                }
            }
        }
        assert!(reached_cp, "a database with user(name,password) exists");
        assert!(stayed, "a database without the row exists");
    }

    #[test]
    fn rerequest_dooms_next_step() {
        let (s, t) = login();
        let inits = initial_configs(&s, &t);
        // Idle on HP: stay → re-entry re-requests name/password.
        let idle = inits
            .iter()
            .find(|c| !c.inputs.contains_key("button"))
            .unwrap();
        let succs = successors(&s, &t, idle);
        let back_home: Vec<_> = succs.iter().filter(|c| c.page == "HP").collect();
        assert!(!back_home.is_empty());
        assert!(back_home.iter().all(|c| c.err_pending));
        for c in back_home {
            let nexts = successors(&s, &t, c);
            assert!(nexts.iter().all(|n| n.page == s.error_page));
        }
    }

    #[test]
    fn options_constrain_picks() {
        // Input options require a database fact: picking forces the fact.
        let mut b = ServiceBuilder::new("P");
        b.database_relation("item", 1)
            .input_relation("pick", 1)
            .page("P")
            .input_rule("pick", &["y"], "item(y)");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        let t = CTable::build(&s, &p);
        let inits = initial_configs(&s, &t);
        for c in &inits {
            if let Some(tuple) = c.inputs.get("pick") {
                // the knowledge store must contain item(tuple) = true
                assert_eq!(
                    c.st.fact_status("item", tuple),
                    Some(true),
                    "picked tuples must satisfy the options rule"
                );
            }
        }
        // And both a fresh pick and a no-pick branch exist.
        assert!(inits.iter().any(|c| c.inputs.is_empty()));
        assert!(inits
            .iter()
            .any(|c| matches!(c.inputs.get("pick").map(|t| t[0]), Some(Sym::F(0)))));
    }
}
