//! Symbolic LTL-FO verification of input-bounded Web services
//! (Theorem 3.5).
//!
//! The paper proves decidability by reducing to finite satisfiability of
//! E+TC formulas; the underlying combinatorics are Spielmann's **Local-Run
//! Lemma** (only the restriction of states/actions to a designated finite
//! symbol set `C` matters) and **Periodic-Run Lemma** (a violating run
//! exists iff a *periodic* one does). We implement those lemmas directly
//! as an on-the-fly search — the architecture the authors themselves chose
//! for their WAVE prototype:
//!
//! * **Symbol set `C`** ([`table`]): the literals of the specification and
//!   property, the database constants, the input constants, and one Skolem
//!   witness per universally quantified property variable.
//! * **Symbolic configurations** ([`config`]): current page, provided
//!   constants, state/action facts restricted to `C`, the current and
//!   previous input tuples (components are `C`-symbols or canonically
//!   numbered fresh symbols), plus the accumulated knowledge about the
//!   existentially quantified database: an equality partition of `C` with
//!   disequalities, persistent database literals over `C`, and *local*
//!   literals mentioning live fresh symbols ([`state`]).
//! * **Branching evaluation** ([`eval`]): a database literal or a
//!   `C`-equality not yet decided forks the search; the knowledge store
//!   grows monotonically along a path, so the space is finite.
//! * **Successor generation** ([`step`]): Definition 2.3 transposed to
//!   symbols — option satisfaction asserts ∃FO facts with ephemeral
//!   witnesses, the three error conditions route to the error page, state
//!   update uses conflict-no-op semantics on `C`-tuples, and input
//!   freshness exploits the one-step `prev` window (exactly what breaks
//!   for lossless input, Theorem 3.9).
//! * **The product search** ([`engine`]): the negated property becomes a
//!   Büchi automaton over its FO components; nested DFS hunts for an
//!   accepting lasso — a symbolic pseudo-run that, by construction, is
//!   realizable by a concrete database and user behaviour.
//!
//! Soundness and completeness (relative to the paper's theorems) are
//! cross-checked against the enumerative verifier in the integration
//! tests.

mod bits;
mod config;
mod engine;
mod eval;
mod state;
mod step;
mod table;

pub use config::SymConfig;
pub use engine::{
    buchi_key, explore, is_error_free, verify_ltl, CancelToken, SearchStats, SymbolicError,
    SymbolicOptions, Verdict, VerifyOutcome, DEFAULT_NODE_LIMIT,
};
pub use table::{CTable, Sym};
