//! A packed bitset over `C`-symbol indices.
//!
//! [`SymConfig`](super::config::SymConfig) keys the search's dedup tables,
//! so its membership sets are compared, ordered, and hashed on every
//! interning probe. Packing the monotone `provided` set into machine
//! words turns those probes (and the per-letter provision checks in the
//! engine's hot loop) into word operations instead of `BTreeSet` walks.
//!
//! # Canonical representation
//!
//! Equality, ordering, and hashing derive from the word vector, so the
//! representation must be a pure function of the *content*: the vector
//! never carries trailing zero words (it grows only when a set bit needs
//! the room, and bits are never cleared — the sets packed here are
//! monotone). Two `CBits` with the same members are therefore always
//! byte-identical.

use super::table::CSym;

/// A set of `C`-symbol indices packed into 64-bit words.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CBits {
    /// Little-endian words; invariant: the last word (if any) is nonzero.
    words: Vec<u64>,
}

impl CBits {
    /// The empty set.
    pub fn new() -> CBits {
        CBits::default()
    }

    /// Inserts a symbol index.
    pub fn insert(&mut self, c: CSym) {
        let (w, b) = (c as usize / 64, c as usize % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << b;
    }

    /// Membership test.
    pub fn contains(&self, c: CSym) -> bool {
        let (w, b) = (c as usize / 64, c as usize % 64);
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// True when no symbol is a member.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CSym> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| (w * 64 + b) as CSym)
        })
    }
}

impl FromIterator<CSym> for CBits {
    fn from_iter<I: IntoIterator<Item = CSym>>(iter: I) -> CBits {
        let mut s = CBits::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn insert_contains_iter() {
        let mut s = CBits::new();
        assert!(s.is_empty());
        for c in [0u16, 3, 63, 64, 130] {
            assert!(!s.contains(c));
            s.insert(c);
            assert!(s.contains(c));
        }
        assert!(!s.is_empty());
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 63, 64, 130]);
        // Re-insertion is idempotent.
        let before = s.clone();
        s.insert(63);
        assert_eq!(s, before);
    }

    #[test]
    fn representation_is_canonical() {
        // Same members, different insertion orders: byte-identical.
        let a: CBits = [5u16, 70, 1].into_iter().collect();
        let b: CBits = [70u16, 1, 5].into_iter().collect();
        assert_eq!(a, b);
        let h = |s: &CBits| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
        // A set that only ever saw low bits carries no high words, so it
        // compares equal to one built the same way from scratch.
        let mut low = CBits::new();
        low.insert(2);
        let low2: CBits = [2u16].into_iter().collect();
        assert_eq!(low, low2);
        assert!(low < a || a < low); // total order is defined
    }
}
