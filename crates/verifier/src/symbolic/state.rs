//! The knowledge store: what the search has assumed about the
//! existentially quantified database.
//!
//! A path through the symbolic search accumulates three kinds of
//! assumptions, all monotone:
//!
//! * an equality partition of `C` (union–find) with recorded
//!   **disequalities** — the equality type of the constants the paper's
//!   reduction guesses up front, here guessed lazily;
//! * **persistent database literals** over `C` (canonicalized);
//! * **local database literals** mentioning live fresh symbols — dropped
//!   when the symbols age out of the one-step `prev` window (their
//!   elements can then be realized as globally fresh, which is the crux of
//!   why the restriction to one-step `prev` is decidable while lossless
//!   input is not, Theorem 3.9).

use std::collections::{BTreeMap, BTreeSet};

use super::table::{CSym, CTable, Sym};

/// An assumption the evaluator may need decided.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Assumption {
    /// Membership of a database tuple (args may include fresh symbols).
    DbFact {
        /// Relation name.
        rel: String,
        /// Argument symbols.
        args: Vec<Sym>,
    },
    /// Equality of two `C`-symbols.
    EqC(CSym, CSym),
}

/// A contradiction with previously recorded knowledge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Conflict;

/// The store of database knowledge.
///
/// Stores are compared, ordered, and hashed **structurally** (they key
/// the search's dedup tables), so the union–find keeps a canonical
/// representation: after every merge the parent array is fully
/// compressed — `parent[c]` is the class representative (its smallest
/// member) for every `c`, regardless of merge order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SymState {
    /// Union–find parents over `C` (rep = smallest member; kept fully
    /// compressed, see the type-level invariant).
    parent: Vec<CSym>,
    /// Disequalities between canonical representatives.
    diseq: BTreeSet<(CSym, CSym)>,
    /// Persistent database literals over canonical `C` tuples.
    facts: BTreeMap<(String, Vec<CSym>), bool>,
    /// Local literals involving at least one fresh symbol.
    local: BTreeMap<(String, Vec<Sym>), bool>,
}

impl SymState {
    /// A fresh store over a `C` of the given size.
    pub fn new(n_csyms: usize) -> Self {
        SymState {
            parent: (0..n_csyms as CSym).collect(),
            diseq: BTreeSet::new(),
            facts: BTreeMap::new(),
            local: BTreeMap::new(),
        }
    }

    /// Canonical representative of a `C`-symbol.
    ///
    /// The parent array is kept fully compressed between public calls,
    /// so this is one hop; the loop only matters transiently inside a
    /// merge cascade.
    pub fn find(&self, mut c: CSym) -> CSym {
        while self.parent[c as usize] != c {
            c = self.parent[c as usize];
        }
        c
    }

    /// Canonical representative with **path halving**: every visited
    /// node is re-pointed at its grandparent, so chains flatten as they
    /// are traversed and amortized cost is O(α(n)).
    pub fn find_compress(&mut self, mut c: CSym) -> CSym {
        while self.parent[c as usize] != c {
            let gp = self.parent[self.parent[c as usize] as usize];
            self.parent[c as usize] = gp;
            c = gp;
        }
        c
    }

    /// Restores the canonical representation: points every symbol
    /// directly at its class representative. Called after each merge so
    /// structural equality/hashing of stores coincides with semantic
    /// equality of their partitions (merge-order independence).
    fn normalize(&mut self) {
        for c in 0..self.parent.len() as CSym {
            let r = self.find_compress(c);
            self.parent[c as usize] = r;
        }
    }

    /// Canonicalizes a symbolic value.
    pub fn canon(&self, s: Sym) -> Sym {
        match s {
            Sym::C(c) => Sym::C(self.find(c)),
            f => f,
        }
    }

    /// The current canonical representatives (one per class).
    pub fn reps(&self) -> Vec<CSym> {
        (0..self.parent.len() as CSym)
            .filter(|&c| self.find(c) == c)
            .collect()
    }

    /// Equality status of two symbolic values: `Some(b)` when decided.
    /// Fresh symbols are equal only to themselves; fresh vs `C` is false
    /// by the freshness discipline (equality with a `C`-symbol is chosen
    /// at introduction time, yielding the `C`-symbol itself).
    pub fn eq_status(&self, table: &CTable, a: Sym, b: Sym) -> Option<bool> {
        match (self.canon(a), self.canon(b)) {
            (Sym::F(i), Sym::F(j)) => Some(i == j),
            (Sym::F(_), Sym::C(_)) | (Sym::C(_), Sym::F(_)) => Some(false),
            (Sym::C(x), Sym::C(y)) => {
                if x == y {
                    return Some(true);
                }
                let key = ordered(x, y);
                if self.diseq.contains(&key) {
                    return Some(false);
                }
                match (self.literal_of(table, x), self.literal_of(table, y)) {
                    (Some(u), Some(v)) => Some(u == v),
                    _ => None,
                }
            }
        }
    }

    /// The literal value of a class, if any member is a literal.
    ///
    /// O(1): literals occupy the table prefix and the representative is
    /// the smallest member of its class, so a class contains a literal
    /// iff its representative *is* one. (Two distinct literals in one
    /// class is a [`Conflict`] rejected at merge time, so the
    /// representative's value is *the* value.)
    fn literal_of<'t>(&self, table: &'t CTable, rep: CSym) -> Option<&'t wave_logic::value::Value> {
        table.literal(rep)
    }

    /// Status of a database literal: `Some(b)` when recorded.
    pub fn fact_status(&self, rel: &str, args: &[Sym]) -> Option<bool> {
        let canon: Vec<Sym> = args.iter().map(|&s| self.canon(s)).collect();
        if let Some(cs) = all_c(&canon) {
            self.facts.get(&(rel.to_string(), cs)).copied()
        } else {
            self.local.get(&(rel.to_string(), canon)).copied()
        }
    }

    /// Records a database literal.
    pub fn assert_fact(&mut self, rel: &str, args: &[Sym], val: bool) -> Result<(), Conflict> {
        let canon: Vec<Sym> = args.iter().map(|&s| self.canon(s)).collect();
        if let Some(cs) = all_c(&canon) {
            let key = (rel.to_string(), cs);
            match self.facts.get(&key) {
                Some(old) if *old != val => Err(Conflict),
                _ => {
                    self.facts.insert(key, val);
                    Ok(())
                }
            }
        } else {
            let key = (rel.to_string(), canon);
            match self.local.get(&key) {
                Some(old) if *old != val => Err(Conflict),
                _ => {
                    self.local.insert(key, val);
                    Ok(())
                }
            }
        }
    }

    /// Records an equality or disequality between `C`-symbols.
    pub fn assert_eq_c(
        &mut self,
        table: &CTable,
        a: CSym,
        b: CSym,
        equal: bool,
    ) -> Result<(), Conflict> {
        match self.eq_status(table, Sym::C(a), Sym::C(b)) {
            Some(v) if v == equal => return Ok(()),
            Some(_) => return Err(Conflict),
            None => {}
        }
        let (x, y) = (self.find(a), self.find(b));
        if !equal {
            self.diseq.insert(ordered(x, y));
            return Ok(());
        }
        // Merge classes: smaller index becomes the representative.
        let (rep, other) = if x < y { (x, y) } else { (y, x) };
        self.parent[other as usize] = rep;
        self.normalize();
        // Re-canonicalize disequalities; a pair collapsing to one class is
        // a contradiction (prevented above, but merges can cascade).
        let old_diseq = std::mem::take(&mut self.diseq);
        for (p, q) in old_diseq {
            let (p, q) = (self.find(p), self.find(q));
            if p == q {
                return Err(Conflict);
            }
            self.diseq.insert(ordered(p, q));
        }
        // Re-canonicalize facts; a collision with opposite polarity is a
        // contradiction.
        let old_facts = std::mem::take(&mut self.facts);
        for ((rel, args), v) in old_facts {
            let canon: Vec<CSym> = args.iter().map(|&c| self.find(c)).collect();
            match self.facts.insert((rel, canon), v) {
                Some(old) if old != v => return Err(Conflict),
                _ => {}
            }
        }
        let old_local = std::mem::take(&mut self.local);
        for ((rel, args), v) in old_local {
            let canon: Vec<Sym> = args.iter().map(|&s| self.canon(s)).collect();
            match self.local.insert((rel, canon), v) {
                Some(old) if old != v => return Err(Conflict),
                _ => {}
            }
        }
        // Literal classes must not carry two distinct literal values.
        // Only the literal prefix of the table can contribute.
        let mut values: BTreeMap<CSym, &wave_logic::value::Value> = BTreeMap::new();
        for c in 0..table.n_literals() as CSym {
            if let Some(v) = table.literal(c) {
                let r = self.find(c);
                if let Some(prev) = values.insert(r, v) {
                    if prev != v {
                        return Err(Conflict);
                    }
                }
            }
        }
        Ok(())
    }

    /// Records an assumption with the given truth value.
    pub fn assert(&mut self, table: &CTable, a: &Assumption, val: bool) -> Result<(), Conflict> {
        match a {
            Assumption::DbFact { rel, args } => self.assert_fact(rel, args, val),
            Assumption::EqC(x, y) => self.assert_eq_c(table, *x, *y, val),
        }
    }

    /// Drops (and forgets) every local literal mentioning a fresh symbol
    /// not in `keep`, then renames the surviving fresh symbols via `map`.
    pub fn retire_fresh(&mut self, keep: &dyn Fn(u16) -> Option<u16>) {
        let old = std::mem::take(&mut self.local);
        'fact: for ((rel, args), v) in old {
            let mut renamed = Vec::with_capacity(args.len());
            for s in args {
                match s {
                    Sym::F(i) => match keep(i) {
                        Some(j) => renamed.push(Sym::F(j)),
                        None => continue 'fact, // symbol died: drop the literal
                    },
                    c => renamed.push(c),
                }
            }
            self.local.insert((rel, renamed), v);
        }
    }

    /// Number of persistent facts (for reporting).
    pub fn persistent_facts(&self) -> usize {
        self.facts.len()
    }
}

fn ordered(a: CSym, b: CSym) -> (CSym, CSym) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn all_c(args: &[Sym]) -> Option<Vec<CSym>> {
    args.iter()
        .map(|s| match s {
            Sym::C(c) => Some(*c),
            Sym::F(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn table() -> CTable {
        // literals "a", "b"; db const c0; input const name; witness w
        let mut b = ServiceBuilder::new("P");
        b.database_constant("c0")
            .input_constant("name")
            .input_relation("i", 1)
            .page("P")
            .solicit_constant("name")
            .input_rule("i", &["x"], r#"x = "a" | x = "b""#);
        let s = b.build().unwrap();
        let p = parse_property("forall w . G !r(w)").unwrap();
        CTable::build(&s, &p)
    }

    #[test]
    fn literal_distinctness_is_builtin() {
        let t = table();
        let st = SymState::new(t.len());
        let a = t.literal_sym(&"a".into()).unwrap();
        let b = t.literal_sym(&"b".into()).unwrap();
        assert_eq!(st.eq_status(&t, Sym::C(a), Sym::C(b)), Some(false));
        assert_eq!(st.eq_status(&t, Sym::C(a), Sym::C(a)), Some(true));
    }

    #[test]
    fn constant_equalities_are_open_then_decided() {
        let t = table();
        let mut st = SymState::new(t.len());
        let c0 = t.const_sym("c0").unwrap();
        let a = t.literal_sym(&"a".into()).unwrap();
        assert_eq!(st.eq_status(&t, Sym::C(c0), Sym::C(a)), None);
        st.assert_eq_c(&t, c0, a, true).unwrap();
        assert_eq!(st.eq_status(&t, Sym::C(c0), Sym::C(a)), Some(true));
        // And now c0 ≠ b by literal propagation through the class.
        let b = t.literal_sym(&"b".into()).unwrap();
        assert_eq!(st.eq_status(&t, Sym::C(c0), Sym::C(b)), Some(false));
        // Merging c0 with b must now conflict.
        assert_eq!(st.assert_eq_c(&t, c0, b, true), Err(Conflict));
    }

    #[test]
    fn diseq_then_eq_conflicts() {
        let t = table();
        let mut st = SymState::new(t.len());
        let name = t.const_sym("name").unwrap();
        let w = t.witness_sym("w").unwrap();
        st.assert_eq_c(&t, name, w, false).unwrap();
        assert_eq!(st.eq_status(&t, Sym::C(name), Sym::C(w)), Some(false));
        assert_eq!(st.assert_eq_c(&t, name, w, true), Err(Conflict));
    }

    #[test]
    fn facts_canonicalize_through_merges() {
        let t = table();
        let mut st = SymState::new(t.len());
        let name = t.const_sym("name").unwrap();
        let w = t.witness_sym("w").unwrap();
        st.assert_fact("r", &[Sym::C(name)], true).unwrap();
        st.assert_fact("r", &[Sym::C(w)], false).unwrap();
        // Merging the two must now conflict (r holds of one, not the other).
        assert_eq!(st.assert_eq_c(&t, name, w, true), Err(Conflict));
    }

    #[test]
    fn merge_rewrites_fact_keys() {
        let t = table();
        let mut st = SymState::new(t.len());
        let name = t.const_sym("name").unwrap();
        let w = t.witness_sym("w").unwrap();
        st.assert_fact("r", &[Sym::C(w)], true).unwrap();
        st.assert_eq_c(&t, name, w, true).unwrap();
        // Lookup through either symbol sees the fact.
        assert_eq!(st.fact_status("r", &[Sym::C(name)]), Some(true));
        assert_eq!(st.fact_status("r", &[Sym::C(w)]), Some(true));
    }

    #[test]
    fn fresh_symbols_equal_only_themselves() {
        let t = table();
        let st = SymState::new(t.len());
        assert_eq!(st.eq_status(&t, Sym::F(0), Sym::F(0)), Some(true));
        assert_eq!(st.eq_status(&t, Sym::F(0), Sym::F(1)), Some(false));
        assert_eq!(st.eq_status(&t, Sym::F(0), Sym::C(0)), Some(false));
    }

    #[test]
    fn local_facts_retire_with_their_symbols() {
        let t = table();
        let mut st = SymState::new(t.len());
        st.assert_fact("r", &[Sym::F(0), Sym::C(0)], true).unwrap();
        st.assert_fact("r", &[Sym::F(1), Sym::C(0)], false).unwrap();
        // Keep only fresh 1, renamed to 0.
        st.retire_fresh(&|i| if i == 1 { Some(0) } else { None });
        assert_eq!(st.fact_status("r", &[Sym::F(0), Sym::C(0)]), Some(false));
        assert_eq!(st.fact_status("r", &[Sym::F(1), Sym::C(0)]), None);
    }

    /// A table with `n` input constants `k0..k{n-1}` (no literals, so
    /// merges never conflict) — a playground for union–find stress.
    fn wide_table(n: usize) -> CTable {
        let mut b = ServiceBuilder::new("P");
        for i in 0..n {
            b.input_constant(&format!("k{i}"));
        }
        b.page("P");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        CTable::build(&s, &p)
    }

    #[test]
    fn long_merge_chain_stays_flat() {
        // Merge k0=k1, k1=k2, … in the worst order for naive linking; the
        // parent array must stay fully compressed (every find is one
        // hop), the O(α) regression for `find`/`find_compress`.
        let t = wide_table(64);
        let ks: Vec<CSym> = (0..64)
            .map(|i| t.const_sym(&format!("k{i}")).unwrap())
            .collect();
        let mut st = SymState::new(t.len());
        for w in ks.windows(2) {
            st.assert_eq_c(&t, w[1], w[0], true).unwrap();
        }
        let root = st.find(ks[0]);
        for &k in &ks {
            assert_eq!(st.find(k), root);
            // Flatness: the parent IS the representative — one hop.
            assert_eq!(st.parent[k as usize], root, "chain not compressed at {k}");
        }
        // find_compress agrees and leaves the array unchanged.
        let mut st2 = st.clone();
        for &k in &ks {
            assert_eq!(st2.find_compress(k), root);
        }
        assert_eq!(st, st2);
    }

    #[test]
    fn merge_order_does_not_change_representation() {
        // The stores key dedup tables by structural equality, so two
        // semantically equal partitions must be byte-identical however
        // they were built.
        let t = wide_table(16);
        let ks: Vec<CSym> = (0..16)
            .map(|i| t.const_sym(&format!("k{i}")).unwrap())
            .collect();
        let mut forward = SymState::new(t.len());
        for w in ks.windows(2) {
            forward.assert_eq_c(&t, w[0], w[1], true).unwrap();
        }
        let mut backward = SymState::new(t.len());
        for w in ks.windows(2).rev() {
            backward.assert_eq_c(&t, w[1], w[0], true).unwrap();
        }
        let mut pairs = SymState::new(t.len());
        for i in (0..15).step_by(2) {
            pairs.assert_eq_c(&t, ks[i], ks[i + 1], true).unwrap();
        }
        for i in (1..15).step_by(2) {
            pairs.assert_eq_c(&t, ks[i], ks[i + 1], true).unwrap();
        }
        assert_eq!(forward, backward);
        assert_eq!(forward, pairs);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &SymState| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&forward), h(&backward));
    }

    #[test]
    fn conflicting_fact_polarity_detected() {
        let t = table();
        let mut st = SymState::new(t.len());
        st.assert_fact("r", &[Sym::C(0)], true).unwrap();
        assert_eq!(st.assert_fact("r", &[Sym::C(0)], false), Err(Conflict));
        assert_eq!(st.fact_status("r", &[Sym::C(0)]), Some(true));
    }
}
