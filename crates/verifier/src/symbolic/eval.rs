//! Branching evaluation of FO formulas on symbolic configurations.
//!
//! Evaluation is three-valued against the knowledge store: a database
//! literal or `C`-equality not yet decided surfaces as a *needed
//! assumption*; the driver forks the configuration on it and re-evaluates.
//! The store grows monotonically, so every evaluation terminates with a
//! finite set of `(configuration, truth-value)` branches.
//!
//! Quantifiers range over the **live symbols** (canonical `C`
//! representatives plus live fresh symbols) — complete for input-bounded
//! formulas, whose quantified variables are pinned to input tuples; the
//! ∃FO bodies of input-option rules additionally get *ephemeral witness*
//! candidates supplied by the caller (see `step.rs`).

use std::collections::BTreeMap;

use wave_core::service::Service;
use wave_logic::formula::{Formula, Term, Var};
use wave_logic::schema::RelKind;

use super::config::SymConfig;
use super::state::Assumption;
use super::table::{CTable, Sym};

/// Evaluation context.
pub struct Ctx<'a> {
    /// The service (for relation kinds).
    pub service: &'a Service,
    /// The symbol table.
    pub table: &'a CTable,
    /// Extra quantifier candidates (ephemeral ∃FO witnesses).
    pub ephemeral: Vec<Sym>,
}

/// Why a single evaluation pass could not finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalStop {
    /// The truth of this assumption is needed.
    Need(Assumption),
    /// The formula mentions an unprovided input constant (error-page
    /// condition (i) territory; the caller decides what that means).
    Unprovided(String),
}

type R = Result<bool, EvalStop>;

fn resolve(
    ctx: &Ctx<'_>,
    cfg: &SymConfig,
    env: &BTreeMap<Var, Sym>,
    t: &Term,
) -> Result<Sym, EvalStop> {
    match t {
        Term::Var(v) => Ok(*env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable `{v}`"))),
        Term::Lit(val) => {
            Ok(Sym::C(ctx.table.literal_sym(val).unwrap_or_else(|| {
                panic!("literal {val:?} missing from the symbol table")
            })))
        }
        Term::Const(name) => {
            let c = ctx
                .table
                .const_sym(name)
                .unwrap_or_else(|| panic!("constant `{name}` missing from the symbol table"));
            if ctx.table.is_input_const(c) && !cfg.is_provided(c) {
                return Err(EvalStop::Unprovided(name.clone()));
            }
            Ok(Sym::C(c))
        }
    }
}

/// One evaluation pass; `Err` signals a needed assumption or an
/// unprovided constant.
pub fn eval(ctx: &Ctx<'_>, cfg: &SymConfig, env: &BTreeMap<Var, Sym>, f: &Formula) -> R {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Not(g) => Ok(!eval(ctx, cfg, env, g)?),
        Formula::And(fs) => {
            // Evaluate greedily but surface Need only if no conjunct is
            // already false (keeps branching down).
            let mut need = None;
            for g in fs {
                match eval(ctx, cfg, env, g) {
                    Ok(false) => return Ok(false),
                    Ok(true) => {}
                    Err(e) => need = Some(need.unwrap_or(e)),
                }
            }
            match need {
                None => Ok(true),
                Some(e) => Err(e),
            }
        }
        Formula::Or(fs) => {
            let mut need = None;
            for g in fs {
                match eval(ctx, cfg, env, g) {
                    Ok(true) => return Ok(true),
                    Ok(false) => {}
                    Err(e) => need = Some(need.unwrap_or(e)),
                }
            }
            match need {
                None => Ok(false),
                Some(e) => Err(e),
            }
        }
        Formula::Eq(a, b) => {
            let x = resolve(ctx, cfg, env, a)?;
            let y = resolve(ctx, cfg, env, b)?;
            match cfg.st.eq_status(ctx.table, x, y) {
                Some(v) => Ok(v),
                None => match (cfg.st.canon(x), cfg.st.canon(y)) {
                    (Sym::C(p), Sym::C(q)) => Err(EvalStop::Need(Assumption::EqC(p, q))),
                    _ => unreachable!("fresh equalities are always decided"),
                },
            }
        }
        Formula::Rel { name, args } => {
            let mut syms = Vec::with_capacity(args.len());
            for a in args {
                syms.push(resolve(ctx, cfg, env, a)?);
            }
            let kind = ctx
                .service
                .schema
                .relation(name)
                .unwrap_or_else(|| panic!("relation `{name}` missing from schema"))
                .kind;
            match kind {
                RelKind::Database => match cfg.st.fact_status(name, &syms) {
                    Some(v) => Ok(v),
                    None => Err(EvalStop::Need(Assumption::DbFact {
                        rel: name.clone(),
                        args: syms.iter().map(|&s| cfg.st.canon(s)).collect(),
                    })),
                },
                RelKind::State | RelKind::Action => {
                    // Input-boundedness keeps quantified variables out of
                    // state/action atoms, so arguments live in `C`.
                    let mut cs = Vec::with_capacity(syms.len());
                    for s in &syms {
                        match cfg.st.canon(*s) {
                            Sym::C(c) => cs.push(c),
                            Sym::F(_) => return Ok(false),
                        }
                    }
                    let key = (name.clone(), cs);
                    Ok(match kind {
                        RelKind::State => cfg.state.contains(&key),
                        _ => cfg.action.contains(&key),
                    })
                }
                RelKind::Input => tuple_match(ctx, cfg, cfg.inputs.get(name), &syms),
                RelKind::PrevInput => {
                    let base = name
                        .strip_prefix(wave_logic::schema::PREV_PREFIX)
                        .expect("prev relation names carry the prefix");
                    tuple_match(ctx, cfg, cfg.prev.get(base), &syms)
                }
                RelKind::Page => Ok(name == &cfg.page),
            }
        }
        Formula::Exists(vars, body) => quantify(ctx, cfg, env, vars, body, true),
        Formula::Forall(vars, body) => quantify(ctx, cfg, env, vars, body, false),
    }
}

/// Componentwise equality of an atom's arguments with the current/previous
/// input tuple.
fn tuple_match(ctx: &Ctx<'_>, cfg: &SymConfig, tuple: Option<&Vec<Sym>>, args: &[Sym]) -> R {
    let Some(tuple) = tuple else { return Ok(false) };
    if tuple.len() != args.len() {
        return Ok(false);
    }
    let mut need = None;
    for (&t, &a) in tuple.iter().zip(args.iter()) {
        match cfg.st.eq_status(ctx.table, t, a) {
            Some(false) => return Ok(false),
            Some(true) => {}
            None => {
                if need.is_none() {
                    if let (Sym::C(p), Sym::C(q)) = (cfg.st.canon(t), cfg.st.canon(a)) {
                        need = Some(EvalStop::Need(Assumption::EqC(p, q)));
                    }
                }
            }
        }
    }
    match need {
        None => Ok(true),
        Some(e) => Err(e),
    }
}

fn quantify(
    ctx: &Ctx<'_>,
    cfg: &SymConfig,
    env: &BTreeMap<Var, Sym>,
    vars: &[Var],
    body: &Formula,
    existential: bool,
) -> R {
    let mut live = cfg.live_syms();
    live.extend(ctx.ephemeral.iter().copied());
    let mut envs = vec![env.clone()];
    let mut next_eph = 0usize;
    for v in vars {
        // A *free witness* — a variable occurring only in database atoms —
        // can always be realized by a fresh element (the database is
        // existentially quantified and nothing ties the witness to known
        // symbols), so a single ephemeral candidate is complete and avoids
        // polluting the knowledge store with per-candidate fact guesses.
        let candidates: Vec<Sym> =
            if existential && !ctx.ephemeral.is_empty() && is_free_witness(ctx, body, v) {
                let c = ctx.ephemeral[next_eph.min(ctx.ephemeral.len() - 1)];
                next_eph += 1;
                vec![c]
            } else {
                live.clone()
            };
        let mut next = Vec::with_capacity(envs.len() * candidates.len());
        for e in &envs {
            for &c in &candidates {
                let mut e2 = e.clone();
                e2.insert(v.clone(), c);
                next.push(e2);
            }
        }
        envs = next;
    }
    let mut need = None;
    for e in &envs {
        match eval(ctx, cfg, e, body) {
            Ok(v) if v == existential => return Ok(existential),
            Ok(_) => {}
            Err(err) => need = Some(need.unwrap_or(err)),
        }
    }
    match need {
        None => Ok(!existential),
        Some(e) => Err(e),
    }
}

/// True when every occurrence of `var` in `f` is as an argument of a
/// `Database` atom — no equalities, no input/prev/state/action atoms.
fn is_free_witness(ctx: &Ctx<'_>, f: &Formula, var: &str) -> bool {
    let mut free = true;
    f.walk(&mut |g| {
        if !free {
            return;
        }
        match g {
            Formula::Eq(a, b) if (a.as_var() == Some(var) || b.as_var() == Some(var)) => {
                free = false;
            }
            Formula::Rel { name, args } if args.iter().any(|t| t.as_var() == Some(var)) => {
                let kind = ctx.service.schema.relation(name).map(|r| r.kind);
                if kind != Some(RelKind::Database) {
                    free = false;
                }
            }
            // An inner quantifier shadowing `var` would make occurrences
            // below refer to the inner binder; formulas here are
            // standardized apart by construction, but stay conservative.
            Formula::Exists(vs, _) | Formula::Forall(vs, _) if vs.iter().any(|v| v == var) => {
                free = false;
            }
            _ => {}
        }
    });
    free
}

/// Fully evaluates `f`, forking on needed assumptions. Returns every
/// consistent branch with its truth value. `Unprovided` branches are
/// returned separately so the caller can apply the right semantics
/// (error page for rules, "not satisfied" for property components).
pub fn eval_branching(
    ctx: &Ctx<'_>,
    cfg: &SymConfig,
    env: &BTreeMap<Var, Sym>,
    f: &Formula,
) -> (Vec<(SymConfig, bool)>, bool) {
    let mut out = Vec::new();
    let mut unprovided = false;
    let mut work = vec![cfg.clone()];
    while let Some(c) = work.pop() {
        match eval(ctx, &c, env, f) {
            Ok(v) => out.push((c, v)),
            Err(EvalStop::Unprovided(_)) => unprovided = true,
            Err(EvalStop::Need(a)) => {
                for val in [true, false] {
                    if let Some(c2) = c.assert(ctx.table, &a, val) {
                        work.push(c2);
                    }
                }
            }
        }
    }
    (out, unprovided)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::{parse_fo, parse_property};

    fn setup() -> (Service, CTable) {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("r", 1)
            .database_relation("edge", 2)
            .state_relation("s", 1)
            .state_prop("flag")
            .input_relation("i", 1)
            .input_constant("name")
            .page("P")
            .solicit_constant("name")
            .input_rule("i", &["x"], "r(x)")
            .insert_rule("flag", &[], r#"exists x . (i(x) & x = "lit")"#)
            .target("P", r#"name = "lit""#);
        let s = b.build().unwrap();
        let p = parse_property("forall w . G !gone(w)").unwrap();
        let t = CTable::build(&s, &p);
        (s, t)
    }

    fn ctx<'a>(s: &'a Service, t: &'a CTable) -> Ctx<'a> {
        Ctx {
            service: s,
            table: t,
            ephemeral: Vec::new(),
        }
    }

    #[test]
    fn db_atom_branches_both_ways() {
        let (s, t) = setup();
        let cfg = SymConfig::initial(&s, &t);
        let f = parse_fo("r(\"lit\")", &[]).unwrap();
        let (branches, unprov) = eval_branching(&ctx(&s, &t), &cfg, &BTreeMap::new(), &f);
        assert!(!unprov);
        let vals: Vec<bool> = branches.iter().map(|(_, v)| *v).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn page_and_state_atoms_are_decided() {
        let (s, t) = setup();
        let mut cfg = SymConfig::initial(&s, &t);
        let c = ctx(&s, &t);
        assert_eq!(
            eval(&c, &cfg, &BTreeMap::new(), &parse_fo("P", &[]).unwrap()),
            Ok(true)
        );
        assert_eq!(
            eval(&c, &cfg, &BTreeMap::new(), &parse_fo("flag", &[]).unwrap()),
            Ok(false)
        );
        cfg.state.insert(("flag".into(), vec![]));
        assert_eq!(
            eval(&c, &cfg, &BTreeMap::new(), &parse_fo("flag", &[]).unwrap()),
            Ok(true)
        );
    }

    #[test]
    fn unprovided_constant_reported() {
        let (s, t) = setup();
        let cfg = SymConfig::initial(&s, &t);
        let f = parse_fo("name = \"lit\"", &[]).unwrap();
        let (branches, unprov) = eval_branching(&ctx(&s, &t), &cfg, &BTreeMap::new(), &f);
        assert!(unprov);
        assert!(branches.is_empty());
    }

    #[test]
    fn provided_constant_equality_branches() {
        let (s, t) = setup();
        let mut cfg = SymConfig::initial(&s, &t);
        cfg.provided.insert(t.const_sym("name").unwrap());
        let f = parse_fo("name = \"lit\"", &[]).unwrap();
        let (branches, unprov) = eval_branching(&ctx(&s, &t), &cfg, &BTreeMap::new(), &f);
        assert!(!unprov);
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn input_atom_matches_current_tuple() {
        let (s, t) = setup();
        let mut cfg = SymConfig::initial(&s, &t);
        cfg.n_fresh = 1;
        cfg.inputs.insert("i".into(), vec![Sym::F(0)]);
        let c = ctx(&s, &t);
        // ∃x (i(x) ∧ x = "lit"): the fresh input is ≠ every C symbol.
        let f = parse_fo(r#"exists x . (i(x) & x = "lit")"#, &[]).unwrap();
        assert_eq!(eval(&c, &cfg, &BTreeMap::new(), &f), Ok(false));
        // With the input being the literal itself, it holds.
        let lit = t.literal_sym(&"lit".into()).unwrap();
        cfg.inputs.insert("i".into(), vec![Sym::C(lit)]);
        assert_eq!(eval(&c, &cfg, &BTreeMap::new(), &f), Ok(true));
    }

    #[test]
    fn prev_atom_reads_previous_tuple() {
        let (s, t) = setup();
        let mut cfg = SymConfig::initial(&s, &t);
        cfg.n_fresh = 1;
        cfg.prev.insert("i".into(), vec![Sym::F(0)]);
        let c = ctx(&s, &t);
        let f = parse_fo("exists x . prev_i(x)", &[]).unwrap();
        assert_eq!(eval(&c, &cfg, &BTreeMap::new(), &f), Ok(true));
        let g = parse_fo("exists x . i(x)", &[]).unwrap();
        assert_eq!(eval(&c, &cfg, &BTreeMap::new(), &g), Ok(false));
    }

    #[test]
    fn guarded_forall_over_inputs() {
        let (s, t) = setup();
        let mut cfg = SymConfig::initial(&s, &t);
        let lit = t.literal_sym(&"lit".into()).unwrap();
        cfg.inputs.insert("i".into(), vec![Sym::C(lit)]);
        let c = ctx(&s, &t);
        let f = parse_fo(r#"forall x . (i(x) -> x = "lit")"#, &[]).unwrap();
        // The lazy evaluator may need equality guesses to see that every
        // case converges to true; all branches must agree.
        let (branches, _) = eval_branching(&c, &cfg, &BTreeMap::new(), &f);
        assert!(!branches.is_empty());
        assert!(branches.iter().all(|(_, v)| *v));
    }

    #[test]
    fn witness_env_binding() {
        let (s, t) = setup();
        let cfg = SymConfig::initial(&s, &t);
        let w = t.witness_sym("w").unwrap();
        let env: BTreeMap<Var, Sym> = [("w".to_string(), Sym::C(w))].into();
        let c = ctx(&s, &t);
        let f = parse_fo("w = w", &["w"]).unwrap();
        assert_eq!(eval(&c, &cfg, &env, &f), Ok(true));
    }

    #[test]
    fn ephemeral_candidates_extend_quantifiers() {
        let (s, t) = setup();
        let mut cfg = SymConfig::initial(&s, &t);
        cfg.n_fresh = 0;
        // edge(x, y) with both quantified: no live fresh, db unknown over
        // C-pairs → branching can find a true branch.
        let mut c = ctx(&s, &t);
        c.ephemeral = vec![Sym::F(10)];
        let f = parse_fo("exists x y . edge(x, y)", &[]).unwrap();
        let (branches, _) = eval_branching(&c, &cfg, &BTreeMap::new(), &f);
        assert!(branches.iter().any(|(_, v)| *v));
        assert!(branches.iter().any(|(_, v)| !*v));
    }
}
