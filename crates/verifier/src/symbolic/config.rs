//! Symbolic configurations.
//!
//! A [`SymConfig`] is the Local-Run Lemma's "approximate description" of a
//! run prefix: exact on the current page, the provided input constants,
//! the current/previous input tuples and the state/action restrictions to
//! `C`, and carrying the accumulated database knowledge ([`SymState`]).

use std::collections::{BTreeMap, BTreeSet};

use wave_core::service::Service;

use super::bits::CBits;
use super::state::{Assumption, SymState};
use super::table::{CSym, CTable, Sym};

/// A fact of a state or action relation restricted to `C` (canonical
/// representatives).
pub type CFact = (String, Vec<CSym>);

/// A symbolic configuration.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SymConfig {
    /// Current page (or the error page).
    pub page: String,
    /// Input constants provided so far (original symbol ids), packed into
    /// a bitset: the set is monotone and probed on every letter check.
    pub provided: CBits,
    /// State facts over `C` (canonical).
    pub state: BTreeSet<CFact>,
    /// Action facts over `C` (canonical), triggered at the previous step.
    pub action: BTreeSet<CFact>,
    /// Current inputs: chosen tuple per input relation (empty vec for a
    /// true propositional input). Absent = no choice / false.
    pub inputs: BTreeMap<String, Vec<Sym>>,
    /// Previous inputs (`prev_I` values).
    pub prev: BTreeMap<String, Vec<Sym>>,
    /// Database knowledge accumulated along this path.
    pub st: SymState,
    /// Number of live fresh symbols (ids `0..n_fresh`).
    pub n_fresh: u16,
    /// Error conditions (i)/(ii) observed at this page: the next
    /// transition goes to the error page (Definition 2.3).
    pub err_pending: bool,
}

impl SymConfig {
    /// The initial configuration (home page, empty everything).
    pub fn initial(service: &Service, table: &CTable) -> SymConfig {
        SymConfig {
            page: service.home.clone(),
            provided: CBits::new(),
            state: BTreeSet::new(),
            action: BTreeSet::new(),
            inputs: BTreeMap::new(),
            prev: BTreeMap::new(),
            st: SymState::new(table.len()),
            n_fresh: 0,
            err_pending: false,
        }
    }

    /// The error-page successor: the run loops there forever; database
    /// knowledge and provided constants are kept so letters stay
    /// consistent, everything else empties (Definition 2.3).
    pub fn to_error(&self, service: &Service) -> SymConfig {
        SymConfig {
            page: service.error_page.clone(),
            provided: self.provided.clone(),
            state: BTreeSet::new(),
            action: BTreeSet::new(),
            inputs: BTreeMap::new(),
            prev: BTreeMap::new(),
            st: self.st.clone(),
            n_fresh: 0,
            err_pending: false,
        }
    }

    /// All live symbols: canonical `C` representatives plus live fresh
    /// symbols.
    pub fn live_syms(&self) -> Vec<Sym> {
        let mut out: Vec<Sym> = self.st.reps().into_iter().map(Sym::C).collect();
        for i in 0..self.n_fresh {
            out.push(Sym::F(i));
        }
        out
    }

    /// Asserts an assumption with the given truth value; `None` on
    /// conflict. Equality merges re-canonicalize state/action facts and
    /// check that the merge does not contradict previously *computed*
    /// state/action content (two tuples collapsing must have agreed).
    pub fn assert(&self, table: &CTable, a: &Assumption, val: bool) -> Option<SymConfig> {
        let mut next = self.clone();
        next.st.assert(table, a, val).ok()?;
        if let (Assumption::EqC(..), true) = (a, val) {
            next.state = recanon_facts(&self.state, &self.st, &next.st)?;
            next.action = recanon_facts(&self.action, &self.st, &next.st)?;
            next.inputs = self
                .inputs
                .iter()
                .map(|(k, v)| (k.clone(), v.iter().map(|&s| next.st.canon(s)).collect()))
                .collect();
            next.prev = self
                .prev
                .iter()
                .map(|(k, v)| (k.clone(), v.iter().map(|&s| next.st.canon(s)).collect()))
                .collect();
        }
        Some(next)
    }

    /// Whether an input constant has been provided, by *any* symbol of its
    /// equality class (provision is by name, so identity suffices).
    pub fn is_provided(&self, c: CSym) -> bool {
        self.provided.contains(c)
    }

    /// Checks the structural precondition of formula evaluation at this
    /// page: every input constant mentioned by `consts` must be provided.
    pub fn all_provided(&self, table: &CTable, consts: &BTreeSet<String>) -> bool {
        consts.iter().all(|name| match table.const_sym(name) {
            Some(c) if table.is_input_const(c) => self.is_provided(c),
            _ => true, // database constants are interpreted by the database
        })
    }

    /// Renders a short human-readable description.
    pub fn render(&self, table: &CTable) -> String {
        let mut parts = vec![format!("page={}", self.page)];
        if !self.inputs.is_empty() {
            let ins: Vec<String> = self
                .inputs
                .iter()
                .map(|(rel, t)| {
                    if t.is_empty() {
                        rel.clone()
                    } else {
                        format!(
                            "{rel}({})",
                            t.iter()
                                .map(|&s| table.render(s))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    }
                })
                .collect();
            parts.push(format!("in:{}", ins.join(" ")));
        }
        if !self.state.is_empty() {
            let sts: Vec<String> = self
                .state
                .iter()
                .map(|(rel, t)| {
                    if t.is_empty() {
                        rel.clone()
                    } else {
                        format!(
                            "{rel}({})",
                            t.iter()
                                .map(|&c| table.render(Sym::C(c)))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    }
                })
                .collect();
            parts.push(format!("st:{}", sts.join(" ")));
        }
        parts.join(" ")
    }
}

/// Re-canonicalizes a fact set after a merge in the store, detecting
/// collapse inconsistencies: if two `C`-tuples become identical under the
/// new partition, they must have had the same membership before.
fn recanon_facts(
    facts: &BTreeSet<CFact>,
    old: &SymState,
    new: &SymState,
) -> Option<BTreeSet<CFact>> {
    let mut out = BTreeSet::new();
    for (rel, args) in facts {
        let canon: Vec<CSym> = args.iter().map(|&c| new.find(c)).collect();
        // Every old-rep preimage tuple of `canon` must be a member.
        // Preimage components: old reps that now map to the same new rep.
        let old_reps = old.reps();
        let mut preimages: Vec<Vec<CSym>> = vec![Vec::new()];
        for &target in &canon {
            let cands: Vec<CSym> = old_reps
                .iter()
                .copied()
                .filter(|&r| new.find(r) == target)
                .collect();
            let mut next = Vec::with_capacity(preimages.len() * cands.len());
            for p in &preimages {
                for &c in &cands {
                    let mut q = p.clone();
                    q.push(c);
                    next.push(q);
                }
            }
            preimages = next;
        }
        for pre in preimages {
            if !facts.contains(&(rel.clone(), pre)) {
                return None; // collapse inconsistency
            }
        }
        out.insert((rel.clone(), canon));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn setup() -> (Service, CTable) {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("r", 1)
            .state_relation("s", 1)
            .input_relation("i", 1)
            .input_constant("name")
            .page("P")
            .solicit_constant("name")
            .input_rule("i", &["x"], "r(x)");
        let s = b.build().unwrap();
        let p = parse_property("forall w1 w2 . G !ship(w1, w2)").unwrap();
        let t = CTable::build(&s, &p);
        (s, t)
    }

    #[test]
    fn initial_and_error() {
        let (s, t) = setup();
        let c = SymConfig::initial(&s, &t);
        assert_eq!(c.page, "P");
        assert!(c.state.is_empty());
        let e = c.to_error(&s);
        assert_eq!(e.page, s.error_page);
        assert!(e.inputs.is_empty());
    }

    #[test]
    fn live_syms_counts_reps_and_fresh() {
        let (s, t) = setup();
        let mut c = SymConfig::initial(&s, &t);
        assert_eq!(c.live_syms().len(), t.len());
        c.n_fresh = 2;
        assert_eq!(c.live_syms().len(), t.len() + 2);
    }

    #[test]
    fn assert_db_fact_branches_consistently() {
        let (s, t) = setup();
        let c = SymConfig::initial(&s, &t);
        let a = Assumption::DbFact {
            rel: "r".into(),
            args: vec![Sym::C(0)],
        };
        let c_true = c.assert(&t, &a, true).unwrap();
        let c_false = c.assert(&t, &a, false).unwrap();
        assert_eq!(c_true.st.fact_status("r", &[Sym::C(0)]), Some(true));
        assert_eq!(c_false.st.fact_status("r", &[Sym::C(0)]), Some(false));
        // Re-asserting the opposite conflicts.
        assert!(c_true.assert(&t, &a, false).is_none());
    }

    #[test]
    fn merge_collapse_inconsistency_detected() {
        let (s, t) = setup();
        let mut c = SymConfig::initial(&s, &t);
        let w1 = t.witness_sym("w1").unwrap();
        let w2 = t.witness_sym("w2").unwrap();
        // state s holds of w1 but not of w2: merging w1=w2 must fail.
        c.state.insert(("s".into(), vec![w1]));
        let merged = c.assert(&t, &Assumption::EqC(w1, w2), true);
        assert!(merged.is_none(), "collapse inconsistency must be caught");
        // but if s holds of both, the merge succeeds and dedups.
        c.state.insert(("s".into(), vec![w2]));
        let merged2 = c.assert(&t, &Assumption::EqC(w1, w2), true).unwrap();
        assert_eq!(merged2.state.len(), 1);
    }

    #[test]
    fn provided_gate() {
        let (s, t) = setup();
        let mut c = SymConfig::initial(&s, &t);
        let name = t.const_sym("name").unwrap();
        let consts: BTreeSet<String> = ["name".to_string()].into();
        assert!(!c.all_provided(&t, &consts));
        c.provided.insert(name);
        assert!(c.all_provided(&t, &consts));
    }

    #[test]
    fn render_is_stable() {
        let (s, t) = setup();
        let mut c = SymConfig::initial(&s, &t);
        c.inputs.insert("i".into(), vec![Sym::F(0)]);
        c.state.insert(("s".into(), vec![0]));
        let r = c.render(&t);
        assert!(r.contains("page=P"));
        assert!(r.contains("i(✶0)"));
    }
}
