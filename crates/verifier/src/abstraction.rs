//! Lowering CTL(\*)-FO formulas to propositional form.
//!
//! Every verifier in this crate abstracts the *maximal FO components* of a
//! temporal formula into propositions (the abstraction step the paper uses
//! in Example 4.3 and inside the Theorem 3.5 reduction), keeping a table
//! that maps each fresh proposition back to its FO formula so the
//! underlying engine can evaluate it per configuration.

use wave_logic::formula::Formula;
use wave_logic::temporal::{PathQuant, TFormula};

use wave_automata::pformula::PFormula;
use wave_automata::pltl::Pnf;

/// The table from proposition ids to the FO components they stand for.
#[derive(Clone, Debug, Default)]
pub struct FoAbstraction {
    /// `components[i]` is the FO formula behind proposition `i`.
    pub components: Vec<Formula>,
}

impl FoAbstraction {
    fn intern(&mut self, f: &Formula) -> u32 {
        if let Some(i) = self.components.iter().position(|g| g == f) {
            return i as u32;
        }
        self.components.push(f.clone());
        (self.components.len() - 1) as u32
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no component was interned.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Lowers a temporal formula to propositional CTL\* ([`PFormula`]),
/// abstracting FO components to propositions. `B` is desugared via
/// `φ B ψ ≡ ¬(¬φ U ψ)`.
pub fn to_pformula(t: &TFormula, table: &mut FoAbstraction) -> PFormula {
    match t {
        TFormula::Fo(f) => match f {
            Formula::True => PFormula::True,
            Formula::False => PFormula::False,
            other => PFormula::Prop(table.intern(other)),
        },
        TFormula::Not(g) => PFormula::not(to_pformula(g, table)),
        TFormula::And(fs) => {
            PFormula::and(fs.iter().map(|g| to_pformula(g, table)).collect::<Vec<_>>())
        }
        TFormula::Or(fs) => {
            PFormula::or(fs.iter().map(|g| to_pformula(g, table)).collect::<Vec<_>>())
        }
        TFormula::X(g) => PFormula::next(to_pformula(g, table)),
        TFormula::U(a, b) => PFormula::until(to_pformula(a, table), to_pformula(b, table)),
        TFormula::B(a, b) => PFormula::not(PFormula::until(
            PFormula::not(to_pformula(a, table)),
            to_pformula(b, table),
        )),
        TFormula::F(g) => PFormula::eventually(to_pformula(g, table)),
        TFormula::G(g) => PFormula::always(to_pformula(g, table)),
        TFormula::Path(PathQuant::E, g) => PFormula::exists_path(to_pformula(g, table)),
        TFormula::Path(PathQuant::A, g) => PFormula::all_paths(to_pformula(g, table)),
    }
}

/// Lowers an LTL(-FO) formula to positive normal form over FO-component
/// propositions. `negate = true` lowers the *negation* (the verifier's
/// "search for a violating run" direction). Returns `None` if the formula
/// contains a path quantifier.
pub fn to_pnf(t: &TFormula, negate: bool, table: &mut FoAbstraction) -> Option<Pnf> {
    let p = to_pformula(t, table);
    let p = if negate { PFormula::not(p) } else { p };
    p.to_pnf()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_logic::formula::Term;

    #[test]
    fn components_are_maximal_and_shared() {
        let atom = Formula::rel("pick", vec![Term::var("x")]);
        let t = TFormula::and([
            TFormula::fo(atom.clone()),
            TFormula::eventually(TFormula::fo(atom.clone())),
        ]);
        let mut table = FoAbstraction::default();
        let p = to_pformula(&t, &mut table);
        assert_eq!(table.len(), 1);
        assert_eq!(
            p,
            PFormula::and([PFormula::Prop(0), PFormula::eventually(PFormula::Prop(0))])
        );
    }

    #[test]
    fn before_desugars() {
        let a = TFormula::prop("paid");
        let b = TFormula::prop("shipped");
        let t = TFormula::before(a, b);
        let mut table = FoAbstraction::default();
        let p = to_pformula(&t, &mut table);
        // !( !paid U shipped )
        assert_eq!(
            p,
            PFormula::not(PFormula::until(
                PFormula::not(PFormula::Prop(0)),
                PFormula::Prop(1)
            ))
        );
    }

    #[test]
    fn pnf_negation() {
        let t = TFormula::always(TFormula::prop("ok"));
        let mut table = FoAbstraction::default();
        let pnf = to_pnf(&t, true, &mut table).unwrap();
        // ¬G ok = F ¬ok
        assert_eq!(pnf, Pnf::eventually(Pnf::nprop(0)));
    }

    #[test]
    fn true_false_do_not_intern() {
        let t = TFormula::and([TFormula::fo(Formula::True), TFormula::prop("p")]);
        let mut table = FoAbstraction::default();
        let p = to_pformula(&t, &mut table);
        assert_eq!(table.len(), 1);
        assert_eq!(p, PFormula::Prop(0));
    }

    #[test]
    fn path_quantifiers_preserved() {
        let t = TFormula::all_paths(TFormula::always(TFormula::exists_path(
            TFormula::eventually(TFormula::prop("HP")),
        )));
        let mut table = FoAbstraction::default();
        let p = to_pformula(&t, &mut table);
        assert!(p.is_ctl());
        assert!(to_pnf(&t, false, &mut FoAbstraction::default()).is_none());
    }
}
