//! LTL-FO checking on recorded runs.
//!
//! The paper treats runs as infinite ("finite runs can be easily
//! represented as infinite runs by fake loops", §2). This module applies
//! that device to *concrete* executions: a scripted prefix of
//! configurations, closed into a lasso (by default the final
//! configuration repeats forever), is checked against an LTL-FO sentence
//! under the run's active-domain semantics.
//!
//! This is the scenario-level complement to the verifiers: it answers
//! "does *this* interaction satisfy the property?" — e.g. replaying the
//! Example 2.2 purchase and checking Example 3.4's property (4) on it.

use std::collections::BTreeSet;

use wave_core::run::Config;
use wave_logic::eval::{eval_closed_with_adom, Env, EvalError};
use wave_logic::formula::Term;
use wave_logic::instance::Instance;
use wave_logic::temporal::{Property, TemporalClass};
use wave_logic::value::Value;

use wave_automata::props::PropSet;

use crate::abstraction::{to_pnf, FoAbstraction};
use crate::enumerative::EnumError;

/// Checks an LTL-FO property on the lasso run `configs[..] ·
/// configs[loop_start..]^ω`.
///
/// The property's universally quantified variables range over the run's
/// active domain (`Dom(ρ)` in Definition 3.1): database elements, values
/// occurring in the configurations, and the property's own literals.
/// Returns `Ok(None)` on success or `Ok(Some(witness))` with a violating
/// witness assignment.
pub fn check_lasso(
    db: &Instance,
    configs: &[Config],
    loop_start: usize,
    property: &Property,
) -> Result<Option<Env>, EnumError> {
    assert!(
        !configs.is_empty(),
        "a run needs at least one configuration"
    );
    assert!(loop_start < configs.len(), "loop start must index the run");
    if property.classify() != TemporalClass::Ltl {
        return Err(EnumError::NotLtl);
    }

    let mut table = FoAbstraction::default();
    let pnf = to_pnf(&property.body, false, &mut table).ok_or(EnumError::NotLtl)?;

    // Dom(ρ): the active domain of the whole run.
    let mut dom: BTreeSet<Value> = db.active_domain();
    for cfg in configs {
        dom.extend(cfg.observation(db).active_domain());
    }
    for comp in &table.components {
        dom.extend(comp.literals_used());
    }

    // Witness assignments over Dom(ρ).
    let mut envs: Vec<Env> = vec![Env::new()];
    for v in &property.vars {
        let mut next = Vec::with_capacity(envs.len() * dom.len());
        for e in &envs {
            for val in &dom {
                let mut e2 = e.clone();
                e2.insert(v.clone(), val.clone());
                next.push(e2);
            }
        }
        envs = next;
    }

    for env in envs {
        if !lasso_satisfies(db, configs, loop_start, &table, &pnf, &dom, &env)? {
            return Ok(Some(env));
        }
    }
    Ok(None)
}

/// Evaluates the lasso under one witness assignment. Returns whether the
/// run *satisfies* the property body for that assignment.
fn lasso_satisfies(
    db: &Instance,
    configs: &[Config],
    loop_start: usize,
    table: &FoAbstraction,
    pnf: &wave_automata::pltl::Pnf,
    dom: &BTreeSet<Value>,
    env: &Env,
) -> Result<bool, EnumError> {
    let mut letters = Vec::with_capacity(configs.len());
    for cfg in configs {
        let obs = cfg.observation(db);
        let mut adom = obs.active_domain();
        adom.extend(dom.iter().cloned());
        let mut set = PropSet::new();
        for (i, comp) in table.components.iter().enumerate() {
            let grounded = comp.substitute(&|v| env.get(v).map(|val| Term::Lit(val.clone())));
            match eval_closed_with_adom(&grounded, &obs, &adom) {
                Ok(true) => {
                    set.insert(i as u32);
                }
                Ok(false) => {}
                // Unprovided input constant ⇒ component unsatisfied
                // (Definition 3.1's satisfaction condition).
                Err(EvalError::UnknownConstant(_)) => {}
                Err(e) => return Err(EnumError::Step(e.to_string())),
            }
        }
        letters.push(set);
    }
    let (stem, lasso) = letters.split_at(loop_start);
    Ok(pnf.eval_lasso(stem, lasso))
}

/// Checks one *specific* witness assignment on the lasso: returns `true`
/// when the run **violates** the property body under `env` — the form a
/// verifier's counterexample claims. Used by the replay oracle to
/// validate reported witnesses rather than searching for one.
pub fn check_lasso_with_env(
    db: &Instance,
    configs: &[Config],
    loop_start: usize,
    property: &Property,
    env: &Env,
) -> Result<bool, EnumError> {
    assert!(
        !configs.is_empty(),
        "a run needs at least one configuration"
    );
    assert!(loop_start < configs.len(), "loop start must index the run");
    if property.classify() != TemporalClass::Ltl {
        return Err(EnumError::NotLtl);
    }
    let mut table = FoAbstraction::default();
    let pnf = to_pnf(&property.body, false, &mut table).ok_or(EnumError::NotLtl)?;
    let mut dom: BTreeSet<Value> = db.active_domain();
    for cfg in configs {
        dom.extend(cfg.observation(db).active_domain());
    }
    for comp in &table.components {
        dom.extend(comp.literals_used());
    }
    dom.extend(env.values().cloned());
    Ok(!lasso_satisfies(
        db, configs, loop_start, &table, &pnf, &dom, env,
    )?)
}

/// Convenience: close the run by repeating its final configuration (the
/// "fake loop" of §2).
pub fn check_stuttered(
    db: &Instance,
    configs: &[Config],
    property: &Property,
) -> Result<Option<Env>, EnumError> {
    check_lasso(db, configs, configs.len() - 1, property)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_core::run::{InputChoice, Runner};
    use wave_logic::parser::parse_property;
    use wave_logic::tuple;

    fn toggle() -> wave_core::service::Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn scripted_run_satisfies_safety() {
        let s = toggle();
        let db = Instance::new();
        let r = Runner::new(&s, &db);
        let c0 = r
            .initial(&InputChoice::empty().with_prop("go", true))
            .unwrap();
        let c1 = r.step(&c0, &InputChoice::empty()).unwrap();
        let run = [c0, c1];
        let p = parse_property("G (P | Q)").unwrap();
        assert_eq!(check_stuttered(&db, &run, &p).unwrap(), None);
        // F Q holds on THIS run (we pressed go).
        let q = parse_property("F Q").unwrap();
        assert_eq!(check_stuttered(&db, &run, &q).unwrap(), None);
        // G P fails at σ1.
        let g = parse_property("G P").unwrap();
        assert!(check_stuttered(&db, &run, &g).unwrap().is_some());
    }

    #[test]
    fn lasso_loop_start_matters() {
        let s = toggle();
        let db = Instance::new();
        let r = Runner::new(&s, &db);
        // P → Q → P, loop over the whole thing: GF Q holds.
        let c0 = r
            .initial(&InputChoice::empty().with_prop("go", true))
            .unwrap();
        let c1 = r
            .step(&c0, &InputChoice::empty().with_prop("go", true))
            .unwrap();
        let c2 = r
            .step(&c1, &InputChoice::empty().with_prop("go", true))
            .unwrap();
        assert_eq!(c2.page, "P");
        let run = [c0, c1, c2];
        let gfq = parse_property("G (F Q)").unwrap();
        assert_eq!(check_lasso(&db, &run, 0, &gfq).unwrap(), None);
        // Stuttering on the final P instead: GF Q fails.
        assert!(check_stuttered(&db, &run, &gfq).unwrap().is_some());
    }

    #[test]
    fn witnessed_property_reports_the_witness() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("item", 1)
            .input_relation("pick", 1)
            .page("P")
            .input_rule("pick", &["y"], "item(y)");
        let s = b.build().unwrap();
        let mut db = Instance::new();
        db.insert("item", tuple!["apple"]);
        db.insert("item", tuple!["pear"]);
        let r = Runner::new(&s, &db);
        let c0 = r
            .initial(&InputChoice::empty().with_tuple("pick", tuple!["apple"]))
            .unwrap();
        let run = [c0];
        // ∀x G ¬pick(x) must fail with witness x = "apple".
        let p = parse_property("forall x . G !(exists q . (pick(q) & q = x))").unwrap();
        let w = check_stuttered(&db, &run, &p).unwrap().expect("violated");
        assert_eq!(w.get("x"), Some(&wave_logic::value::Value::str("apple")));
    }

    #[test]
    fn property_4_on_the_purchase_scenario() {
        // Replay the Example 2.2 purchase on the full site and check
        // Example 3.4's property (4) on the concrete trace.
        use wave_demo::{catalog, properties, site};
        let s = site::full_site();
        let db = catalog::tiny();
        let r = Runner::new(&s, &db);
        let mut run = Vec::new();
        let c = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "alice")
                    .with_constant("password", "pw1")
                    .with_tuple("button", tuple!["login"]),
            )
            .unwrap();
        run.push(c.clone());
        let steps: Vec<InputChoice> = vec![
            InputChoice::empty().with_tuple("button", tuple!["laptop"]),
            InputChoice::empty()
                .with_tuple("laptopsearch", tuple!["8gb", "1tb", "13in"])
                .with_tuple("button", tuple!["search"]),
            InputChoice::empty().with_tuple("pickprod", tuple!["p1", 999]),
            InputChoice::empty().with_tuple("button", tuple!["add to cart"]),
            InputChoice::empty().with_tuple("button", tuple!["buy"]),
            InputChoice::empty()
                .with_constant("card", "4242")
                .with_tuple("pay", tuple![999])
                .with_tuple("button", tuple!["authorize payment"]),
            InputChoice::empty(),
        ];
        let mut cur = c;
        for step in &steps {
            cur = r.step(&cur, step).unwrap();
            run.push(cur.clone());
        }
        assert_eq!(cur.page, "COP");
        // Property (4): paid-before-ship — holds on this honest purchase.
        let p4 = properties::paid_before_ship();
        assert_eq!(check_stuttered(&db, &run, &p4).unwrap(), None);
        // A deliberately wrong variant: "conf(name, price) never fires" is
        // violated on this trace (it fired at 999).
        let never_conf = parse_property("forall price . G !conf(name, price)").unwrap();
        let w = check_stuttered(&db, &run, &never_conf)
            .unwrap()
            .expect("violated");
        assert_eq!(w.get("price"), Some(&wave_logic::value::Value::Int(999)));
    }
}
