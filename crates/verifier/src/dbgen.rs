//! Bounded database enumeration and random database generation.
//!
//! Lemma A.11 gives the small-model rationale behind the propositional
//! CTL verifier: if some database violates the property, one of at most
//! exponential size does. The enumerator sweeps all databases over a
//! bounded domain, pruning isomorphic copies (properties of Web services
//! are generic — invariant under database isomorphism — so one
//! representative per isomorphism class suffices).

use std::collections::BTreeSet;

use wave_logic::instance::Instance;
use wave_logic::schema::{ConstKind, RelKind, Schema};
use wave_logic::value::{Tuple, Value};

/// All tuples over `0..n` of the given arity, in lexicographic order.
fn all_tuples(n: usize, arity: usize) -> Vec<Tuple> {
    let mut out = vec![Tuple::empty()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * n);
        for t in &out {
            for v in 0..n {
                let mut w = t.0.clone();
                w.push(Value::Int(v as i64));
                next.push(Tuple(w));
            }
        }
        out = next;
    }
    out
}

/// Enumerates every database instance over the schema's `Database`
/// relations and constants with domain `{0, …, domain-1}`, up to
/// isomorphism (domain permutations). Stops after `max_instances`
/// representatives when a bound is given.
pub fn enumerate(schema: &Schema, domain: usize, max_instances: Option<usize>) -> Vec<Instance> {
    let rels: Vec<(&str, usize)> = schema
        .relations_of(RelKind::Database)
        .map(|r| (r.name.as_str(), r.arity))
        .collect();
    let consts: Vec<&str> = schema
        .constants()
        .filter(|(_, k)| *k == ConstKind::Database)
        .map(|(n, _)| n)
        .collect();

    // Per-relation choice space: subsets of all tuples, driven by bitmasks.
    let tuple_spaces: Vec<Vec<Tuple>> = rels.iter().map(|(_, a)| all_tuples(domain, *a)).collect();

    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let perms = permutations(domain);

    // Odometer over relation subsets × constant assignments.
    let rel_bits: Vec<usize> = tuple_spaces.iter().map(|s| s.len()).collect();
    let total_rel_bits: usize = rel_bits.iter().sum();
    if total_rel_bits > 24 {
        // Keep the sweep tractable; callers should shrink domain or schema.
        // (2^24 instances before pruning is already generous.)
        panic!(
            "database enumeration space too large: {total_rel_bits} tuple bits; \
             reduce the domain size"
        );
    }
    let n_masks: u64 = 1u64 << total_rel_bits;
    let n_const_assignments: usize = domain.max(1).pow(consts.len() as u32);

    'outer: for mask in 0..n_masks {
        for ca in 0..n_const_assignments {
            let mut inst = Instance::new();
            let mut bit = 0;
            for ((rel, _), space) in rels.iter().zip(&tuple_spaces) {
                for t in space {
                    if mask & (1 << bit) != 0 {
                        inst.insert(*rel, t.clone());
                    }
                    bit += 1;
                }
            }
            let mut c = ca;
            for name in &consts {
                inst.set_constant(*name, Value::Int((c % domain.max(1)) as i64));
                c /= domain.max(1);
            }
            let canon = canonical_form(&inst, &perms);
            if seen.insert(canon) {
                out.push(inst);
                if let Some(m) = max_instances {
                    if out.len() >= m {
                        break 'outer;
                    }
                }
            }
        }
    }
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(acc: &mut Vec<Vec<usize>>, cur: &mut Vec<usize>, used: &mut Vec<bool>, n: usize) {
        if cur.len() == n {
            acc.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(acc, cur, used, n);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut acc = Vec::new();
    rec(&mut acc, &mut Vec::new(), &mut vec![false; n], n);
    acc
}

fn apply_perm(inst: &Instance, perm: &[usize]) -> Instance {
    let map = |v: &Value| -> Value {
        match v {
            Value::Int(i) if (*i as usize) < perm.len() && *i >= 0 => {
                Value::Int(perm[*i as usize] as i64)
            }
            other => other.clone(),
        }
    };
    let mut out = Instance::new();
    for (rel, tuples) in inst.relations() {
        for t in tuples {
            out.insert(rel.to_string(), Tuple(t.iter().map(&map).collect()));
        }
    }
    for (c, v) in inst.constants() {
        out.set_constant(c.to_string(), map(v));
    }
    out
}

/// Canonical representative: the lexicographically smallest permutation
/// image (via the `Ord` on `Instance`).
fn canonical_form(inst: &Instance, perms: &[Vec<usize>]) -> Instance {
    perms
        .iter()
        .map(|p| apply_perm(inst, p))
        .min()
        .unwrap_or_else(|| inst.clone())
}

/// A random database over the schema's `Database` relations: each possible
/// tuple over `{0..domain-1}` is included with probability `density`; each
/// database constant gets a uniform element.
pub fn random_db(
    schema: &Schema,
    domain: usize,
    density: f64,
    rng: &mut impl wave_rng::Rng,
) -> Instance {
    let mut inst = Instance::new();
    for r in schema.relations_of(RelKind::Database) {
        for t in all_tuples(domain, r.arity) {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                inst.insert(r.name.clone(), t);
            }
        }
    }
    for (c, k) in schema.constants() {
        if k == ConstKind::Database && domain > 0 {
            inst.set_constant(c.to_string(), Value::Int(rng.gen_range(0..domain) as i64));
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_one_unary() -> Schema {
        let mut s = Schema::new();
        s.add_relation("r", 1, RelKind::Database).unwrap();
        s
    }

    #[test]
    fn unary_relation_classes() {
        // One unary relation over domain {0,1}: up to isomorphism the
        // instances are ∅, {one element}, {both} → 3 classes.
        let s = schema_one_unary();
        let dbs = enumerate(&s, 2, None);
        assert_eq!(dbs.len(), 3);
    }

    #[test]
    fn binary_relation_classes_domain1() {
        let mut s = Schema::new();
        s.add_relation("e", 2, RelKind::Database).unwrap();
        // domain {0}: e ⊆ {(0,0)} → 2 instances, both canonical.
        let dbs = enumerate(&s, 1, None);
        assert_eq!(dbs.len(), 2);
    }

    #[test]
    fn constants_break_symmetry() {
        let mut s = schema_one_unary();
        s.add_constant("c", ConstKind::Database).unwrap();
        // domain {0,1}, unary r, constant c:
        // classes: (r, c∈r?) — r=∅ (c either elt ≅) = 1;
        // |r|=1: c ∈ r or c ∉ r = 2; |r|=2: c ∈ r = 1 → total 4.
        let dbs = enumerate(&s, 2, None);
        assert_eq!(dbs.len(), 4);
    }

    #[test]
    fn max_instances_bound_respected() {
        let s = schema_one_unary();
        let dbs = enumerate(&s, 3, Some(2));
        assert_eq!(dbs.len(), 2);
    }

    #[test]
    fn input_constants_are_not_database_constants() {
        let mut s = schema_one_unary();
        s.add_constant("name", ConstKind::Input).unwrap();
        let dbs = enumerate(&s, 1, None);
        // name gets no interpretation from the enumerator
        assert!(dbs.iter().all(|d| !d.has_constant("name")));
    }

    #[test]
    fn random_db_respects_schema() {
        let mut s = Schema::new();
        s.add_relation("e", 2, RelKind::Database).unwrap();
        s.add_relation("state_thing", 1, RelKind::State).unwrap();
        s.add_constant("c", ConstKind::Database).unwrap();
        let mut rng = wave_rng::StepRng::new(42, 0x9E3779B97F4A7C15);
        let db = random_db(&s, 3, 0.5, &mut rng);
        assert_eq!(db.cardinality("state_thing"), 0);
        assert!(db.has_constant("c"));
        for t in db.tuples("e") {
            assert_eq!(t.arity(), 2);
        }
    }

    #[test]
    fn enumerated_instances_are_distinct() {
        let s = schema_one_unary();
        let dbs = enumerate(&s, 3, None);
        let set: BTreeSet<_> = dbs.iter().cloned().collect();
        assert_eq!(set.len(), dbs.len());
        assert_eq!(dbs.len(), 4); // |r| ∈ {0,1,2,3}
    }
}
