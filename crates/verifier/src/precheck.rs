//! The admission gate: lint before search.
//!
//! Every decision procedure in this crate is complete only *inside* the
//! paper's decidable classes — outside them verification is undecidable
//! (Theorems 3.7–3.9, 4.2), and a search would be a silent best-effort
//! run dressed up as a verdict. [`precheck`] runs the `wave-lint` passes
//! over a request up front and decides, before any state is explored,
//! whether the verifier should accept it at all.
//!
//! A request is **admissible** when its lint report carries no
//! error-severity diagnostics and the service falls into one of the
//! decidable classes. The full [`Report`] rides along either way, so a
//! caller refusing a request can forward precise, span-carrying blame
//! instead of a bare "not input-bounded".

use wave_core::classify::ServiceClass;
use wave_core::provenance::ServiceSources;
use wave_core::service::Service;
use wave_lint::{lint, Report};
use wave_logic::temporal::Property;

/// The outcome of the admission gate: the class the service fell into
/// and the full lint report backing the decision.
#[derive(Clone, Debug)]
pub struct Precheck {
    /// The decidable class the service falls into.
    pub class: ServiceClass,
    /// The full lint report, deterministically ordered.
    pub report: Report,
}

impl Precheck {
    /// True when a verifier may take this request: the report has no
    /// errors and the service is in a decidable class.
    pub fn admissible(&self) -> bool {
        !self.report.has_errors() && self.class != ServiceClass::Unrestricted
    }

    /// A one-line refusal reason, or `None` when admissible.
    pub fn refusal(&self) -> Option<String> {
        if self.admissible() {
            return None;
        }
        let (errors, _, _) = self.report.counts();
        Some(if self.class == ServiceClass::Unrestricted {
            format!(
                "service is outside the decidable classes ({errors} lint \
                 error(s)); verification is undecidable in general \
                 (Theorems 3.7\u{2013}3.9)"
            )
        } else {
            format!(
                "request fails static analysis with {errors} lint error(s) \
                 even though the service is {}",
                self.class
            )
        })
    }
}

/// Lints `service` (and the property, when verifying one) and gates.
/// `sources` enables span-carrying diagnostics; pass `None` when the
/// service was built programmatically.
pub fn precheck(
    service: &Service,
    sources: Option<&ServiceSources>,
    property: Option<&Property>,
) -> Precheck {
    let report = lint(service, sources, property);
    Precheck {
        class: report.class,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    #[test]
    fn demo_services_are_admissible() {
        for (service, sources) in [
            wave_demo::site::full_site_with_sources(),
            wave_demo::site::checkout_core_with_sources(),
        ] {
            let pre = precheck(&service, Some(&sources), None);
            assert!(pre.admissible(), "{:?}", pre.report.diagnostics);
            assert!(pre.refusal().is_none());
        }
    }

    #[test]
    fn unguarded_quantifier_is_refused_with_blame() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .state_prop("s")
            .page("P")
            .insert_rule("s", &[], "exists x . d(x)");
        let (service, sources) = b.build_with_sources().expect("valid vocabulary");
        let pre = precheck(&service, Some(&sources), None);
        assert_eq!(pre.class, ServiceClass::Unrestricted);
        assert!(!pre.admissible());
        let reason = pre.refusal().expect("must refuse");
        assert!(reason.contains("undecidable"), "{reason}");
        assert!(
            pre.report
                .diagnostics
                .iter()
                .any(|d| d.code == wave_lint::codes::UNGUARDED_QUANTIFIER),
            "{:?}",
            pre.report.diagnostics
        );
    }

    #[test]
    fn property_errors_refuse_even_a_decidable_service() {
        let (service, sources) = wave_demo::site::checkout_core_with_sources();
        let p = parse_property("G nonexistent_relation").expect("parses");
        let pre = precheck(&service, Some(&sources), Some(&p));
        assert_ne!(pre.class, ServiceClass::Unrestricted);
        assert!(!pre.admissible());
        assert!(pre.refusal().unwrap().contains("static analysis"));
    }
}
