//! The replay oracle: counterexamples must survive the concrete
//! semantics.
//!
//! A `Violated` outcome of the enumerative engine carries a lasso of
//! concrete configurations and a witness assignment. Neither is taken on
//! faith: [`replay_violation`] re-executes the lasso through the
//! interpreter of Definition 2.3 ([`Runner::replay_lasso`]) and then
//! re-evaluates the property under the *reported* witness
//! ([`crate::trace::check_lasso_with_env`]). A counterexample that fails
//! either check is, by construction, a bug in the engine that produced
//! it — this is the semantics-level trust anchor VERIFAS-style systems
//! use to harden abstract verdicts, and the oracle `wave-qa` drives on
//! every fuzzing campaign.

use std::collections::BTreeMap;
use std::fmt;

use wave_core::run::{Config, ReplayError, Runner};
use wave_core::service::Service;
use wave_logic::eval::Env;
use wave_logic::instance::Instance;
use wave_logic::temporal::Property;
use wave_logic::value::Value;

use crate::enumerative::{EnumError, EnumOutcome};
use crate::trace::check_lasso_with_env;

/// Why a claimed counterexample did not stand up to replay.
#[derive(Clone, Debug)]
pub enum ReplayFailure {
    /// The lasso is not a run of the service (Definition 2.3).
    NotARun(ReplayError),
    /// The lasso is a genuine run but *satisfies* the property under the
    /// reported witness — the violation claim is false.
    NotViolating {
        /// The witness the engine reported.
        witness: BTreeMap<String, Value>,
    },
    /// Property evaluation itself failed on the replayed run.
    Check(EnumError),
}

impl fmt::Display for ReplayFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayFailure::NotARun(e) => write!(f, "lasso is not a run: {e}"),
            ReplayFailure::NotViolating { witness } => {
                write!(f, "run does not violate the property under witness {{")?;
                for (i, (k, v)) in witness.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            ReplayFailure::Check(e) => write!(f, "property re-evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayFailure {}

/// Validates one claimed violation end-to-end: the lasso must replay as
/// a genuine run of `service` over `db`, and the run must violate
/// `property` under the reported `witness`.
pub fn replay_violation(
    service: &Service,
    db: &Instance,
    property: &Property,
    witness: &BTreeMap<String, Value>,
    stem: &[Config],
    cycle: &[Config],
) -> Result<(), ReplayFailure> {
    let runner = Runner::new(service, db);
    runner
        .replay_lasso(stem, cycle)
        .map_err(ReplayFailure::NotARun)?;
    let configs: Vec<Config> = stem.iter().chain(cycle.iter()).cloned().collect();
    let env: Env = witness.clone().into_iter().collect();
    let violating = check_lasso_with_env(db, &configs, stem.len(), property, &env)
        .map_err(ReplayFailure::Check)?;
    if !violating {
        return Err(ReplayFailure::NotViolating {
            witness: witness.clone(),
        });
    }
    Ok(())
}

/// Convenience: validates an [`EnumOutcome`] — `Violated` outcomes are
/// replayed, everything else passes vacuously (there is no witness to
/// distrust).
pub fn replay_outcome(
    service: &Service,
    db: &Instance,
    property: &Property,
    outcome: &EnumOutcome,
) -> Result<(), ReplayFailure> {
    match outcome {
        EnumOutcome::Violated {
            witness,
            stem,
            cycle,
        } => replay_violation(service, db, property, witness, stem, cycle),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerative::{verify_ltl_on_db, EnumOptions};
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    fn toggle() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn engine_counterexamples_replay() {
        let s = toggle();
        let db = Instance::new();
        let p = parse_property("F Q").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(matches!(out, EnumOutcome::Violated { .. }), "{out:?}");
        replay_outcome(&s, &db, &p, &out).expect("counterexample must replay");
    }

    #[test]
    fn non_violations_pass_vacuously() {
        let s = toggle();
        let db = Instance::new();
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(out.holds());
        replay_outcome(&s, &db, &p, &out).unwrap();
    }

    #[test]
    fn forged_witness_is_caught() {
        let s = toggle();
        let db = Instance::new();
        let p = parse_property("F Q").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        let EnumOutcome::Violated {
            witness,
            stem,
            cycle,
        } = out
        else {
            panic!("expected violation");
        };
        // Claim the same lasso violates a property it satisfies.
        let satisfied = parse_property("G !Q").unwrap();
        let err = replay_violation(&s, &db, &satisfied, &witness, &stem, &cycle).unwrap_err();
        assert!(matches!(err, ReplayFailure::NotViolating { .. }), "{err}");
        // Forge the lasso itself: duplicate the cycle into the stem but
        // corrupt a page name.
        let mut forged = cycle.clone();
        forged[0].page = "Q".into();
        let err = replay_violation(&s, &db, &p, &witness, &stem, &forged).unwrap_err();
        assert!(matches!(err, ReplayFailure::NotARun(_)), "{err}");
    }
}
