//! CTL(\*) verification of propositional input-bounded services
//! (Theorem 4.4, Corollary 4.5).
//!
//! For a *propositional* service (states and actions of arity 0, no `prev`
//! atoms) over a fixed database, the reachable configuration space is
//! finite; per Lemma A.12 we build the Kripke structure whose labels are
//! the truth values of the property's FO components, then model check with
//! the standard CTL labeling algorithm (or the CTL\* checker).
//!
//! Quantification over *all* databases uses the bounded enumerator of
//! [`crate::dbgen`] — Lemma A.11 bounds the databases that need checking
//! by an exponential; in practice the interesting violations appear at
//! tiny domains, and the bound is a caller-set parameter.

use std::collections::BTreeMap;
use std::fmt;

use wave_core::classify;
use wave_core::run::{Config, Runner};
use wave_core::service::Service;
use wave_logic::eval::{eval_closed_with_adom, EvalError};
use wave_logic::instance::Instance;
use wave_logic::temporal::TFormula;
use wave_logic::value::Value;

use wave_automata::ctlstar_mc;
use wave_automata::kripke::Kripke;
use wave_automata::props::PropSet;

use crate::abstraction::{to_pformula, FoAbstraction};
use crate::dbgen;
use crate::enumerative::EnumError;

/// Options for the propositional CTL verifier.
#[derive(Clone, Debug)]
pub struct CtlOptions {
    /// Fresh values in the input-constant pool.
    pub fresh_values: usize,
    /// Budget on Kripke states per database.
    pub state_limit: usize,
}

impl Default for CtlOptions {
    fn default() -> Self {
        CtlOptions {
            fresh_values: 1,
            state_limit: 100_000,
        }
    }
}

/// Errors of the propositional verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtlError {
    /// The service is not propositional (Theorem 4.4's hypothesis).
    NotPropositional,
    /// The service is not input-bounded.
    NotInputBounded,
    /// A property component has free variables (the CTL formulas of
    /// Theorem 4.4 are propositional).
    ComponentNotClosed(String),
    /// The formula is not a CTL\* state formula.
    NotStateFormula,
    /// The per-database Kripke construction exceeded the state budget.
    StateLimit,
    /// Interpreter failure.
    Step(String),
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::NotPropositional => write!(f, "service is not propositional"),
            CtlError::NotInputBounded => write!(f, "service is not input-bounded"),
            CtlError::ComponentNotClosed(c) => {
                write!(f, "property component `{c}` has free variables")
            }
            CtlError::NotStateFormula => write!(f, "not a CTL* state formula"),
            CtlError::StateLimit => write!(f, "Kripke state budget exceeded"),
            CtlError::Step(s) => write!(f, "interpreter failure: {s}"),
        }
    }
}

impl std::error::Error for CtlError {}

/// Outcome of the ∀-database sweep.
#[derive(Clone, Debug)]
pub enum CtlOutcome {
    /// Every database up to the bound satisfies the property.
    Holds {
        /// Number of (canonical) databases checked.
        databases: usize,
        /// Largest Kripke structure encountered.
        max_states: usize,
    },
    /// A database violating the property.
    Violated {
        /// The counterexample database.
        db: Instance,
    },
}

impl CtlOutcome {
    /// True when the property held for every database checked.
    pub fn holds(&self) -> bool {
        matches!(self, CtlOutcome::Holds { .. })
    }
}

/// Builds the Kripke structure of a propositional service over a fixed
/// database (Lemma A.12): states are reachable interpreter configurations,
/// labels are the truth values of the property's FO components.
pub fn build_kripke(
    service: &Service,
    db: &Instance,
    table: &FoAbstraction,
    opts: &CtlOptions,
) -> Result<Kripke, CtlError> {
    for c in &table.components {
        if !c.free_vars().is_empty() {
            return Err(CtlError::ComponentNotClosed(c.to_string()));
        }
    }
    let runner = Runner::new(service, db);
    let mut pool: std::collections::BTreeSet<Value> = db.active_domain();
    for page in service.pages.values() {
        for (body, _) in page.all_bodies() {
            pool.extend(body.literals_used());
        }
    }
    for c in &table.components {
        pool.extend(c.literals_used());
    }
    for i in 0..opts.fresh_values {
        pool.insert(Value::str(format!("$fresh{i}")));
    }
    let pool: Vec<Value> = pool.into_iter().collect();

    let label = |cfg: &Config| -> Result<PropSet, CtlError> {
        let obs = cfg.observation(db);
        let mut adom = obs.active_domain();
        adom.extend(pool.iter().cloned());
        let mut set = PropSet::new();
        for (i, comp) in table.components.iter().enumerate() {
            match eval_closed_with_adom(comp, &obs, &adom) {
                Ok(true) => {
                    set.insert(i as u32);
                }
                Ok(false) => {}
                // Unprovided input constant ⇒ component not satisfied.
                Err(EvalError::UnknownConstant(_)) => {}
                Err(e) => return Err(CtlError::Step(e.to_string())),
            }
        }
        Ok(set)
    };

    let mut k = Kripke::new();
    let mut ids: BTreeMap<Config, usize> = BTreeMap::new();
    let mut work = Vec::new();
    let inits = crate::enumerative::initial_configs(&runner, &pool).map_err(|e| match e {
        EnumError::Step(s) => CtlError::Step(s),
        EnumError::NotLtl => unreachable!("successor enumeration is logic-free"),
    })?;
    for init in inits {
        let id = k.add_state(label(&init)?);
        k.add_initial(id);
        ids.insert(init.clone(), id);
        work.push(init);
    }
    while let Some(cfg) = work.pop() {
        if k.len() > opts.state_limit {
            return Err(CtlError::StateLimit);
        }
        let from = ids[&cfg];
        let succs = crate::enumerative::successors_for_kripke(&runner, &cfg, &pool).map_err(
            |e| match e {
                EnumError::Step(s) => CtlError::Step(s),
                EnumError::NotLtl => unreachable!("successor enumeration is logic-free"),
            },
        )?;
        for s in succs {
            let to = match ids.get(&s) {
                Some(&id) => id,
                None => {
                    let id = k.add_state(label(&s)?);
                    ids.insert(s.clone(), id);
                    work.push(s);
                    id
                }
            };
            k.add_edge(from, to);
        }
    }
    debug_assert!(k.is_total(), "run semantics guarantee a successor");
    Ok(k)
}

/// Verifies a CTL(\*)-FO property (with closed FO components) on a
/// propositional service over one database.
pub fn verify_ctl_on_db(
    service: &Service,
    db: &Instance,
    property: &TFormula,
    opts: &CtlOptions,
) -> Result<bool, CtlError> {
    if !classify::is_propositional(service) {
        return Err(CtlError::NotPropositional);
    }
    if !classify::input_bounded_violations(service).is_empty() {
        return Err(CtlError::NotInputBounded);
    }
    let mut table = FoAbstraction::default();
    let p = to_pformula(property, &mut table);
    let k = build_kripke(service, db, &table, opts)?;
    ctlstar_mc::check_initial(&k, &p).map_err(|_| CtlError::NotStateFormula)
}

/// Verifies a CTL(\*)-FO property over **every** database with domain up
/// to `domain` (canonical representatives only).
pub fn verify_ctl(
    service: &Service,
    property: &TFormula,
    domain: usize,
    opts: &CtlOptions,
) -> Result<CtlOutcome, CtlError> {
    let mut databases = 0usize;
    let mut max_states = 0usize;
    for d in 0..=domain {
        for db in dbgen::enumerate(&service.schema, d, None) {
            databases += 1;
            if !classify::is_propositional(service) {
                return Err(CtlError::NotPropositional);
            }
            let mut table = FoAbstraction::default();
            let p = to_pformula(property, &mut table);
            let k = build_kripke(service, &db, &table, opts)?;
            max_states = max_states.max(k.len());
            let ok = ctlstar_mc::check_initial(&k, &p).map_err(|_| CtlError::NotStateFormula)?;
            if !ok {
                return Ok(CtlOutcome::Violated { db });
            }
        }
    }
    Ok(CtlOutcome::Holds {
        databases,
        max_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_temporal;

    fn toggle_service() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn navigational_ageh() {
        let s = toggle_service();
        let db = Instance::new();
        // AG EF P: from anywhere one can navigate back to P.
        let p = parse_temporal("A G (E F P)", &[]).unwrap();
        assert!(verify_ctl_on_db(&s, &db, &p, &CtlOptions::default()).unwrap());
        // AF Q fails (user may idle).
        let q = parse_temporal("A F Q", &[]).unwrap();
        assert!(!verify_ctl_on_db(&s, &db, &q, &CtlOptions::default()).unwrap());
        // EF Q holds.
        let e = parse_temporal("E F Q", &[]).unwrap();
        assert!(verify_ctl_on_db(&s, &db, &e, &CtlOptions::default()).unwrap());
    }

    #[test]
    fn ctl_star_property() {
        let s = toggle_service();
        let db = Instance::new();
        // E FG P — stay on P forever eventually: holds (idle).
        let p = parse_temporal("E F (G P)", &[]).unwrap();
        assert!(verify_ctl_on_db(&s, &db, &p, &CtlOptions::default()).unwrap());
        // A FG P — fails: a run may toggle forever.
        let q = parse_temporal("A F (G P)", &[]).unwrap();
        assert!(!verify_ctl_on_db(&s, &db, &q, &CtlOptions::default()).unwrap());
    }

    /// A service whose behaviour depends on the database: page Q reachable
    /// only if the database proposition-ish relation `open` is nonempty at
    /// the fixed element "k".
    fn db_gated_service() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("open", 1)
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", r#"go & open("k")"#)
            .page("Q");
        b.build().unwrap()
    }

    #[test]
    fn database_sweep_finds_violation() {
        let s = db_gated_service();
        // AG !Q holds for the empty database but fails once open("k").
        let p = parse_temporal("A G !Q", &[]).unwrap();
        let empty = Instance::new();
        assert!(verify_ctl_on_db(&s, &empty, &p, &CtlOptions::default()).unwrap());
        let mut db = Instance::new();
        db.insert("open", wave_logic::tuple!["k"]);
        assert!(!verify_ctl_on_db(&s, &db, &p, &CtlOptions::default()).unwrap());
        // The sweep must discover it. Note the gate value "k" is a literal
        // of the specification, not produced by the integer-domain
        // enumerator — which is exactly why `build_kripke` pools literals.
        match verify_ctl(&s, &p, 1, &CtlOptions::default()).unwrap() {
            CtlOutcome::Holds { .. } => {
                // The enumerator only populates `open` with integers, so
                // open("k") stays false: property genuinely holds on those
                // databases. Check a literal-including database directly.
                assert!(!verify_ctl_on_db(&s, &db, &p, &CtlOptions::default()).unwrap());
            }
            CtlOutcome::Violated { .. } => {}
        }
    }

    #[test]
    fn ground_input_atom_components() {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("button", 1)
            .page("P")
            .input_rule("button", &["x"], r#"x = "buy" | x = "cancel""#)
            .target("Q", r#"button("buy")"#)
            .page("Q");
        let s = b.build().unwrap();
        let db = Instance::new();
        // AG(button("buy") -> AX Q): pressing buy always leads to Q.
        let p = parse_temporal(r#"A G (button("buy") -> A X Q)"#, &[]).unwrap();
        assert!(verify_ctl_on_db(&s, &db, &p, &CtlOptions::default()).unwrap());
    }

    #[test]
    fn rejects_nonpropositional() {
        let mut b = ServiceBuilder::new("P");
        b.state_relation("cart", 1)
            .database_relation("item", 1)
            .input_relation("pick", 1)
            .page("P")
            .input_rule("pick", &["y"], "item(y)")
            .insert_rule("cart", &["y"], "pick(y)");
        let s = b.build().unwrap();
        let p = parse_temporal("A G true", &[]).unwrap();
        assert_eq!(
            verify_ctl_on_db(&s, &Instance::new(), &p, &CtlOptions::default()),
            Err(CtlError::NotPropositional)
        );
    }

    #[test]
    fn component_with_free_variable_rejected() {
        let s = toggle_service();
        let p = parse_temporal("G r(x)", &["x"]).unwrap();
        assert!(matches!(
            verify_ctl_on_db(&s, &Instance::new(), &p, &CtlOptions::default()),
            Err(CtlError::ComponentNotClosed(_))
        ));
    }
}
