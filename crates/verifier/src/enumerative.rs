//! The enumerative baseline: explicit-state LTL-FO verification over one
//! concrete database.
//!
//! This is the "obvious" verifier the paper's symbolic method dominates:
//! fix a database, enumerate every user behaviour, build the (finite)
//! concrete transition system, and search its product with the Büchi
//! automaton of the negated property for an accepting lasso. It is sound
//! and complete **for the given database** and value pool — not for all
//! databases, which is exactly the gap Theorem 3.5 closes.
//!
//! Two finiteness devices (documented deviations from the unbounded
//! semantics):
//!
//! * input-constant values are drawn from a *pool* — the database's active
//!   domain, the literals of the specification/property, plus
//!   `opts.fresh_values` fresh elements (runs only compare constants for
//!   equality, so a small pool exercises every equality type);
//! * a node budget guards against state-space blowup.
//!
//! Besides its role as baseline, the enumerative verifier is the ground
//! truth the symbolic verifier is cross-checked against in the test suite.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wave_core::run::{Config, InputChoice, Runner};
use wave_core::service::Service;
use wave_logic::eval::{eval_closed_with_adom, Env, EvalError};
use wave_logic::formula::Formula;
use wave_logic::instance::Instance;
use wave_logic::temporal::Property;
use wave_logic::value::{Tuple, Value};

use wave_automata::cancel::CancelToken;
use wave_automata::ltl2buchi::translate;
use wave_automata::props::PropSet;
use wave_automata::search::{find_accepting_lasso_stats_with, SearchResult};

use crate::abstraction::{to_pnf, FoAbstraction};

/// Options for the enumerative verifier.
#[derive(Clone, Debug)]
pub struct EnumOptions {
    /// Fresh values added to the input-constant pool.
    pub fresh_values: usize,
    /// Budget on distinct product nodes per witness assignment.
    pub node_limit: usize,
    /// Cooperative cancellation: polled at node expansions and between
    /// witness assignments. A fired token surfaces as
    /// [`EnumOutcome::Cancelled`] — never a panic.
    pub cancel: CancelToken,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            fresh_values: 2,
            node_limit: 200_000,
            cancel: CancelToken::never(),
        }
    }
}

/// Result of an enumerative check.
#[derive(Clone, Debug)]
pub enum EnumOutcome {
    /// Every run over this database satisfies the property (within the
    /// pool/limit regime).
    Holds {
        /// Distinct product nodes explored, summed over witnesses.
        explored: usize,
    },
    /// A violating run was found.
    Violated {
        /// The witness values for the property's universal variables.
        witness: BTreeMap<String, Value>,
        /// Configurations leading into the violating cycle.
        stem: Vec<Config>,
        /// The repeating cycle of configurations.
        cycle: Vec<Config>,
    },
    /// The node budget was exhausted.
    LimitReached,
    /// The run was cancelled (explicit cancel or deadline expiry on
    /// [`EnumOptions::cancel`]) before an answer.
    Cancelled,
}

impl EnumOutcome {
    /// True when the property was verified.
    pub fn holds(&self) -> bool {
        matches!(self, EnumOutcome::Holds { .. })
    }
}

/// Errors of the enumerative verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnumError {
    /// The property contains path quantifiers (use the CTL verifiers).
    NotLtl,
    /// Stepping the interpreter failed (malformed service).
    Step(String),
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::NotLtl => write!(f, "property is not LTL-FO (path quantifiers)"),
            EnumError::Step(s) => write!(f, "interpreter failure: {s}"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Verifies `property` on every run of `service` over the fixed `db`.
pub fn verify_ltl_on_db(
    service: &Service,
    db: &Instance,
    property: &Property,
    opts: &EnumOptions,
) -> Result<EnumOutcome, EnumError> {
    // Lower ¬φ to a Büchi automaton over FO-component propositions.
    let mut table = FoAbstraction::default();
    let pnf = to_pnf(&property.body, true, &mut table).ok_or(EnumError::NotLtl)?;
    let aut = translate(&pnf);

    // Value pool for witnesses and input constants.
    let mut pool: BTreeSet<Value> = db.active_domain();
    for page in service.pages.values() {
        for (body, _) in page.all_bodies() {
            pool.extend(body.literals_used());
        }
    }
    for c in &table.components {
        pool.extend(c.literals_used());
    }
    for i in 0..opts.fresh_values {
        pool.insert(Value::str(format!("$fresh{i}")));
    }
    let pool: Vec<Value> = pool.into_iter().collect();

    let runner = Runner::new(service, db);
    let mut explored_total = 0usize;

    // Iterate over all witness assignments for the universal closure.
    let mut witness_envs = vec![BTreeMap::new()];
    for v in &property.vars {
        let mut next = Vec::with_capacity(witness_envs.len() * pool.len());
        for env in &witness_envs {
            for val in &pool {
                let mut e = env.clone();
                e.insert(v.clone(), val.clone());
                next.push(e);
            }
        }
        witness_envs = next;
    }

    for witness in witness_envs {
        if opts.cancel.is_cancelled() {
            return Ok(EnumOutcome::Cancelled);
        }
        let env: Env = witness.clone().into_iter().collect();
        let letter = |cfg: &Config| -> Result<PropSet, EnumError> {
            let obs = cfg.observation(db);
            let mut adom = obs.active_domain();
            adom.extend(pool.iter().cloned());
            let mut set = PropSet::new();
            for (i, comp) in table.components.iter().enumerate() {
                let holds = eval_component(comp, &obs, &adom, &env)?;
                if holds {
                    set.insert(i as u32);
                }
            }
            Ok(set)
        };

        // Expand the product lazily. σ_0 already includes a user move at
        // the home page, so there are several initial configurations.
        let mut inits: Vec<(Config, usize)> = Vec::new();
        for init_cfg in initial_configs(&runner, &pool)? {
            let init_letter = letter(&init_cfg)?;
            for &q in &aut.initial {
                if aut.guard[q].accepts(&init_letter) {
                    inits.push((init_cfg.clone(), q));
                }
            }
        }

        let mut step_err: Option<EnumError> = None;
        let (result, _stats) = find_accepting_lasso_stats_with(
            inits,
            |(cfg, q)| {
                if step_err.is_some() {
                    return Vec::new();
                }
                let succs = match successors_for_kripke(&runner, cfg, &pool) {
                    Ok(s) => s,
                    Err(e) => {
                        step_err = Some(e);
                        return Vec::new();
                    }
                };
                let mut out = Vec::new();
                for c2 in succs {
                    let l2 = match letter(&c2) {
                        Ok(l) => l,
                        Err(e) => {
                            step_err = Some(e);
                            return Vec::new();
                        }
                    };
                    for &q2 in &aut.succ[*q] {
                        if aut.guard[q2].accepts(&l2) {
                            out.push((c2.clone(), q2));
                        }
                    }
                }
                out
            },
            |(_, q)| aut.accepting[*q],
            Some(opts.node_limit),
            &opts.cancel,
        );
        if let Some(e) = step_err {
            return Err(e);
        }
        match result {
            SearchResult::Empty { explored } => explored_total += explored,
            SearchResult::Lasso { stem, cycle } => {
                return Ok(EnumOutcome::Violated {
                    witness,
                    stem: stem.into_iter().map(|(c, _)| c).collect(),
                    cycle: cycle.into_iter().map(|(c, _)| c).collect(),
                });
            }
            SearchResult::LimitReached { .. } => return Ok(EnumOutcome::LimitReached),
            SearchResult::Cancelled => return Ok(EnumOutcome::Cancelled),
        }
    }
    Ok(EnumOutcome::Holds {
        explored: explored_total,
    })
}

/// Evaluates one FO component on an observation. Per Definition 3.1's
/// semantics, a component whose input constants are not yet provided is
/// simply *not satisfied*.
fn eval_component(
    comp: &Formula,
    obs: &Instance,
    adom: &BTreeSet<Value>,
    env: &Env,
) -> Result<bool, EnumError> {
    let grounded = comp.substitute(&|v| {
        env.get(v)
            .map(|val| wave_logic::formula::Term::Lit(val.clone()))
    });
    match eval_closed_with_adom(&grounded, obs, adom) {
        Ok(b) => Ok(b),
        Err(EvalError::UnknownConstant(_)) => Ok(false),
        Err(e) => Err(EnumError::Step(e.to_string())),
    }
}

/// All initial configurations: every user move at the home page.
pub(crate) fn initial_configs(
    runner: &Runner<'_>,
    pool: &[Value],
) -> Result<Vec<Config>, EnumError> {
    let home = runner.service().home.clone();
    entry_configs(
        runner,
        &home,
        &Instance::new(),
        &Instance::new(),
        &Instance::new(),
        &BTreeMap::new(),
        pool,
    )
}

/// All successor configurations of `cfg`: the deterministic transition
/// core followed by every user move at the next page. Shared with the
/// propositional CTL verifier's Kripke construction.
pub(crate) fn successors_for_kripke(
    runner: &Runner<'_>,
    cfg: &Config,
    pool: &[Value],
) -> Result<Vec<Config>, EnumError> {
    let core = runner
        .transition_core(cfg)
        .map_err(|e| EnumError::Step(e.to_string()))?;
    entry_configs(
        runner,
        &core.page,
        &core.state,
        &core.prev,
        &core.action,
        &cfg.provided,
        pool,
    )
}

/// Enumerates every way the user can enter `page_name` with the carried
/// data: constant values from the pool, one option (or none) per
/// relational input, both truth values per propositional input.
#[allow(clippy::too_many_arguments)]
fn entry_configs(
    runner: &Runner<'_>,
    page_name: &str,
    state: &Instance,
    prev: &Instance,
    action: &Instance,
    provided: &BTreeMap<String, Value>,
    pool: &[Value],
) -> Result<Vec<Config>, EnumError> {
    let service = runner.service();
    let enter = |choice: &InputChoice| -> Result<Config, EnumError> {
        runner
            .enter_page(page_name, state, prev, action, provided, choice)
            .map_err(|e| EnumError::Step(e.to_string()))
    };
    if page_name == service.error_page {
        return Ok(vec![enter(&InputChoice::empty())?]);
    }
    let page = service.page(page_name).expect("defined page");

    // Constant provisioning (skipped when the page re-requests — the
    // semantics ignores the choice then).
    let rerequest = page
        .input_constants
        .iter()
        .any(|c| provided.contains_key(c));
    let mut const_assignments: Vec<BTreeMap<String, Value>> = vec![BTreeMap::new()];
    if !rerequest {
        for c in &page.input_constants {
            let mut next = Vec::with_capacity(const_assignments.len() * pool.len());
            for a in &const_assignments {
                for v in pool {
                    let mut b = a.clone();
                    b.insert(c.clone(), v.clone());
                    next.push(b);
                }
            }
            const_assignments = next;
        }
    }

    let mut out = Vec::new();
    for consts in const_assignments {
        let mut all_provided = provided.clone();
        all_provided.extend(consts.clone());
        let options = runner
            .entry_options(page, state, prev, &all_provided)
            .map_err(|e| EnumError::Step(e.to_string()))?;

        let mut rel_inputs: Vec<(&str, Vec<Option<Tuple>>)> = Vec::new();
        let mut prop_inputs: Vec<&str> = Vec::new();
        for i in &page.inputs {
            let arity = service.schema.relation(i).map(|r| r.arity).unwrap_or(0);
            if arity == 0 {
                prop_inputs.push(i);
            } else {
                let mut choices: Vec<Option<Tuple>> = vec![None];
                if let Some(opts) = options.get(i) {
                    choices.extend(opts.iter().cloned().map(Some));
                }
                rel_inputs.push((i, choices));
            }
        }

        let mut partial: Vec<InputChoice> = vec![{
            let mut c = InputChoice::empty();
            c.constants = consts.clone();
            c
        }];
        for (rel, choices) in &rel_inputs {
            let mut next = Vec::with_capacity(partial.len() * choices.len());
            for p in &partial {
                for ch in choices {
                    let mut q = p.clone();
                    if let Some(t) = ch {
                        q.tuples.insert(rel.to_string(), t.clone());
                    }
                    next.push(q);
                }
            }
            partial = next;
        }
        for rel in &prop_inputs {
            let mut next = Vec::with_capacity(partial.len() * 2);
            for p in &partial {
                for b in [false, true] {
                    let mut q = p.clone();
                    if b {
                        q.props.insert(rel.to_string(), true);
                    }
                    next.push(q);
                }
            }
            partial = next;
        }

        for choice in partial {
            out.push(enter(&choice)?);
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;
    use wave_logic::{inst, tuple};

    /// Two-page toggle service: `go` flips between pages P and Q.
    fn toggle_service() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q")
            .input_prop_on_page("go")
            .target("P", "go");
        b.build().unwrap()
    }

    #[test]
    fn safety_property_holds() {
        let s = toggle_service();
        let db = Instance::new();
        // G(P | Q): always on one of the two pages (error page unreachable).
        let p = parse_property("G (P | Q)").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn liveness_property_fails_with_counterexample() {
        let s = toggle_service();
        let db = Instance::new();
        // F Q: fails — the user may never press `go`.
        let p = parse_property("F Q").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        match out {
            EnumOutcome::Violated { stem, cycle, .. } => {
                assert!(cycle.iter().all(|c| c.page == "P"));
                assert!(stem.iter().all(|c| c.page == "P"));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn until_style_property() {
        let s = toggle_service();
        let db = Instance::new();
        // P holds until Q is reached — true on all runs? P U Q requires Q
        // eventually, so it fails (user can idle forever).
        let p = parse_property("P U Q").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(!out.holds());
        // The weak until P W Q = (P U Q) | G P holds: P persists until the
        // (optional) switch to Q.
        let w = parse_property("(P U Q) | G P").unwrap();
        let out2 = verify_ltl_on_db(&s, &db, &w, &EnumOptions::default()).unwrap();
        assert!(out2.holds(), "{out2:?}");
    }

    /// Login service over a user table — data-dependent property.
    fn login_service() -> Service {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP");
        b.build().unwrap()
    }

    #[test]
    fn customer_page_requires_valid_login() {
        let s = login_service();
        let db = inst! { "user" => [tuple!["alice", "pw1"]] };
        // G(CP -> logged_in): reaching CP implies the state was set.
        let p = parse_property("G (!CP | logged_in)").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn witnessed_property_with_free_variables() {
        let s = login_service();
        let db = inst! { "user" => [tuple!["alice", "pw1"]] };
        // ∀x: G ¬(button(x) ∧ x ≠ "login") — only the login button exists.
        let p = parse_property("forall x . G !(button(x) & x != \"login\")").unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(out.holds(), "{out:?}");
        // ∀x: G ¬button(x) — fails: the user can press login.
        let q = parse_property("forall x . G !button(x)").unwrap();
        let out2 = verify_ltl_on_db(&s, &db, &q, &EnumOptions::default()).unwrap();
        assert!(!out2.holds());
    }

    #[test]
    fn error_page_reachability_detected() {
        // Staying on HP re-requests constants → error page reachable.
        let s = login_service();
        let db = inst! { "user" => [tuple!["alice", "pw1"]] };
        let err = s.error_page.clone();
        let p = parse_property(&format!("G !{err}")).unwrap();
        let out = verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap();
        assert!(!out.holds(), "error page is reachable by idling on HP");
    }

    #[test]
    fn rejects_ctl_property() {
        let s = toggle_service();
        let db = Instance::new();
        let p = parse_property("A G (E F P)").unwrap();
        assert_eq!(
            verify_ltl_on_db(&s, &db, &p, &EnumOptions::default()).unwrap_err(),
            EnumError::NotLtl
        );
    }

    #[test]
    fn cancelled_token_yields_cancelled_outcome() {
        let s = toggle_service();
        let db = Instance::new();
        let p = parse_property("G (P | Q)").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let opts = EnumOptions {
            cancel,
            ..EnumOptions::default()
        };
        let out = verify_ltl_on_db(&s, &db, &p, &opts).unwrap();
        assert!(matches!(out, EnumOutcome::Cancelled), "{out:?}");
    }
}
