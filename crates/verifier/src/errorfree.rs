//! Error-freeness (Theorem 3.5(i)) and the Lemma A.5 transformation.
//!
//! Two routes to "is this service error free?":
//!
//! * **Native** ([`is_error_free`]): the symbolic engine implements
//!   Definition 2.3's error conditions directly, so error-freeness is
//!   plain reachability of the error page over pseudo-runs.
//! * **Lemma A.5** ([`lemma_a5_transform`]): the paper's reduction from
//!   error-freeness to property verification constructs a service `W′`
//!   with a fresh ordinary page reached exactly when the original would
//!   err, so that `W` is error free iff `W′ ⊨ G ¬W_err'`. We implement the
//!   construction as an executable artifact; its target-rule bookkeeping
//!   (ambiguity disjunction `μ`, missing-constant disjunction `ν` over
//!   provisioning states, re-request detection) is tested against the
//!   native semantics.

use wave_core::page::Page;
use wave_core::rules::{StateRule, TargetRule};
use wave_core::service::Service;
use wave_logic::formula::Formula;
use wave_logic::schema::{ConstKind, RelKind};

pub use crate::symbolic::{SymbolicError, SymbolicOptions, Verdict, VerifyOutcome};

/// The name of the catch page added by the transformation.
pub const CATCH_PAGE: &str = "__Werr";

/// Prefix of the provisioning state propositions (`prov_c` for each input
/// constant `c`).
pub const PROV_PREFIX: &str = "__prov_";

/// Decides error-freeness natively with the symbolic engine.
pub fn is_error_free(
    service: &Service,
    opts: &SymbolicOptions,
) -> Result<VerifyOutcome, SymbolicError> {
    crate::symbolic::is_error_free(service, opts)
}

/// The Lemma A.5 construction: a service `W′` with an ordinary page
/// [`CATCH_PAGE`] reached exactly when `W` would reach the error page.
///
/// For every page:
/// * provisioning rules `prov_c ← true` for each solicited constant `c`,
/// * a target rule to the catch page with body `μ ∨ ν ∨ ρ` where `μ` is
///   the pairwise-conflict disjunction of the page's target rules, `ν`
///   fires when a rule formula uses a constant neither provided earlier
///   (`prov_c`) nor solicited here, and `ρ` detects transitions into a
///   page that re-requests a provided constant,
/// * every original target rule `V ← φ` becomes `V ← φ ∧ ¬(μ ∨ ν ∨ ρ)`.
///
/// The catch page loops forever, mirroring the error page.
pub fn lemma_a5_transform(service: &Service) -> Service {
    let mut out = service.clone();

    // Provisioning states.
    let input_consts: Vec<String> = out.schema.input_constants().map(str::to_string).collect();
    for c in &input_consts {
        out.schema
            .add_relation(format!("{PROV_PREFIX}{c}"), 0, RelKind::State)
            .expect("prov names are fresh");
    }
    out.schema
        .add_relation(CATCH_PAGE, 0, RelKind::Page)
        .expect("catch page name is fresh");

    let prov = |c: &str| Formula::prop(format!("{PROV_PREFIX}{c}"));

    let page_names: Vec<String> = service.pages.keys().cloned().collect();
    for pname in &page_names {
        let page = out.pages.get_mut(pname).expect("page exists");

        // μ: two target rules with different targets both fire.
        let mut mu_parts = Vec::new();
        for (i, r1) in page.target_rules.iter().enumerate() {
            for r2 in &page.target_rules[i + 1..] {
                if r1.target != r2.target {
                    mu_parts.push(Formula::and([r1.body.clone(), r2.body.clone()]));
                }
            }
        }
        let mu = Formula::or(mu_parts);

        // ν: a rule formula of this page uses an input constant that is
        // neither provided before (prov_c) nor solicited here.
        let mut nu_parts = Vec::new();
        for c in page.constants_used() {
            if service.schema.constant(&c) == Some(ConstKind::Input)
                && !page.input_constants.contains(&c)
            {
                nu_parts.push(Formula::not(prov(&c)));
            }
        }
        let nu = Formula::or(nu_parts);

        // ρ: the fired target re-requests a provided constant.
        let mut rho_parts = Vec::new();
        for r in &page.target_rules {
            if let Some(target) = service.pages.get(&r.target) {
                let rereq = Formula::or(
                    target
                        .input_constants
                        .iter()
                        .map(|c| prov(c))
                        .collect::<Vec<_>>(),
                );
                if rereq != Formula::False {
                    rho_parts.push(Formula::and([r.body.clone(), rereq]));
                }
            }
        }
        // Staying on the same page (no rule fires) also re-enters it.
        if !page.input_constants.is_empty() {
            let none_fire = Formula::and(
                page.target_rules
                    .iter()
                    .map(|r| Formula::not(r.body.clone()))
                    .collect::<Vec<_>>(),
            );
            let rereq = Formula::or(
                page.input_constants
                    .iter()
                    .map(|c| prov(c))
                    .collect::<Vec<_>>(),
            );
            rho_parts.push(Formula::and([none_fire, rereq]));
        }
        let rho = Formula::or(rho_parts);

        let err_cond = Formula::or([mu, nu, rho]);

        // Guard the original targets.
        for r in &mut page.target_rules {
            r.body = Formula::and([r.body.clone(), Formula::not(err_cond.clone())]);
        }
        page.target_rules.push(TargetRule {
            target: CATCH_PAGE.into(),
            body: err_cond,
        });

        // Provisioning bookkeeping.
        for c in &page.input_constants.clone() {
            page.state_rules.push(StateRule::insert_only(
                format!("{PROV_PREFIX}{c}"),
                vec![],
                Formula::True,
            ));
        }
    }

    // The catch page loops forever.
    let mut catch = Page::new(CATCH_PAGE);
    catch.target_rules.push(TargetRule {
        target: CATCH_PAGE.into(),
        body: Formula::True,
    });
    out.pages.insert(CATCH_PAGE.into(), catch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_core::run::{InputChoice, Runner};
    use wave_logic::instance::Instance;

    /// Constant-free service with an ambiguous page.
    fn ambiguous() -> Service {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("both", 0)
            .page("P")
            .input_prop_on_page("both")
            .target("Q", "both")
            .target("R", "both")
            .page("Q")
            .page("R");
        b.build().unwrap()
    }

    #[test]
    fn transform_validates_and_adds_catch_page() {
        let s = ambiguous();
        let t = lemma_a5_transform(&s);
        t.validate().expect("transformed service must validate");
        assert!(t.pages.contains_key(CATCH_PAGE));
        assert_eq!(t.pages.len(), s.pages.len() + 1);
    }

    #[test]
    fn catch_page_mirrors_native_error_on_ambiguity() {
        let s = ambiguous();
        let t = lemma_a5_transform(&s);
        let db = Instance::new();
        // Native: pressing `both` errs (two targets fire).
        let rn = Runner::new(&s, &db);
        let c0 = rn
            .initial(&InputChoice::empty().with_prop("both", true))
            .unwrap();
        let c1 = rn.step(&c0, &InputChoice::empty()).unwrap();
        assert_eq!(c1.page, s.error_page);
        // Transformed: same run lands on the catch page instead.
        let rt = Runner::new(&t, &db);
        let d0 = rt
            .initial(&InputChoice::empty().with_prop("both", true))
            .unwrap();
        let d1 = rt.step(&d0, &InputChoice::empty()).unwrap();
        assert_eq!(d1.page, CATCH_PAGE);
        // ... and loops there.
        let d2 = rt.step(&d1, &InputChoice::empty()).unwrap();
        assert_eq!(d2.page, CATCH_PAGE);
    }

    #[test]
    fn unambiguous_run_unaffected() {
        let s = ambiguous();
        let t = lemma_a5_transform(&s);
        let db = Instance::new();
        let rt = Runner::new(&t, &db);
        let d0 = rt.initial(&InputChoice::empty()).unwrap();
        let d1 = rt.step(&d0, &InputChoice::empty()).unwrap();
        assert_eq!(d1.page, "P", "idle runs stay put");
    }

    #[test]
    fn rerequest_detected_by_rho() {
        // A page with a constant that can loop to itself.
        let mut b = ServiceBuilder::new("P");
        b.input_constant("name")
            .input_relation("go", 0)
            .page("P")
            .solicit_constant("name")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q");
        let s = b.build().unwrap();
        let t = lemma_a5_transform(&s);
        t.validate().unwrap();
        let db = Instance::new();
        let rt = Runner::new(&t, &db);
        // Idle on P: no target fires, P re-entered, name re-requested.
        // prov_name is set at σ_1 (state rules fire one step later), so ρ
        // fires at σ_1 — but the transformed page still *solicits* name,
        // so the native condition (ii) also marks σ_1; either way the run
        // is flagged at σ_2, in lockstep with the untransformed service.
        let d0 = rt
            .initial(&InputChoice::empty().with_constant("name", "alice"))
            .unwrap();
        let d1 = rt.step(&d0, &InputChoice::empty()).unwrap();
        assert_eq!(d1.page, "P");
        let d2 = rt.step(&d1, &InputChoice::empty()).unwrap();
        assert!(
            d2.page == CATCH_PAGE || d2.page == t.error_page,
            "re-request flagged at σ_2, got {}",
            d2.page
        );
        // Native reference service errs at σ_2 too.
        let rn = Runner::new(&s, &db);
        let c0 = rn
            .initial(&InputChoice::empty().with_constant("name", "alice"))
            .unwrap();
        let c1 = rn.step(&c0, &InputChoice::empty()).unwrap();
        let c2 = rn.step(&c1, &InputChoice::empty()).unwrap();
        assert_eq!(c2.page, s.error_page);
    }

    #[test]
    fn native_and_transformed_agree_symbolically() {
        // Error-free service: the transformed one never reaches the catch
        // page; checked with the symbolic engine as G ¬__Werr.
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .target("Q", "go")
            .page("Q");
        let s = b.build().unwrap();
        let native = is_error_free(&s, &SymbolicOptions::default()).unwrap();
        assert!(native.holds());
        let t = lemma_a5_transform(&s);
        let p = wave_logic::parser::parse_property(&format!("G !{CATCH_PAGE}")).unwrap();
        let via_a5 = crate::symbolic::verify_ltl(&t, &p, &SymbolicOptions::default()).unwrap();
        assert!(via_a5.holds(), "{via_a5:?}");
    }
}
