//! Verification of Web services with input-driven search (Theorem 4.9).
//!
//! The proof of Theorem 4.9 reduces `W ⊨ φ` to *unsatisfiability* of
//! `ψ_W ∧ ¬φ` over the propositional alphabet
//! `Σ_W ∪ {picked} ∪ {in_Q : Q a unary database relation ≠ R_I}`:
//! a Kripke structure over that alphabet encodes, at each node, which page
//! the run is on, which propositional states/actions hold, whether an
//! input was picked, and the *type* of the current input with respect to
//! the unary database relations. Because inputs are unary, types at
//! different steps are independent, and any such structure is realizable
//! by an actual search graph `R_I` and type assignment — so consistency
//! with the service's rules is all `ψ_W` needs to say.
//!
//! `ψ_W` asserts: page exclusivity, the initial configuration, the
//! propositional state/action/target updates of every page (with the
//! error page absorbing target ambiguity), and the page filters on picked
//! inputs in navigation mode. The conjunction with `¬φ` then goes to the
//! EXPTIME CTL satisfiability tableau ([`wave_automata::ctl_sat`]).

use std::collections::BTreeMap;
use std::fmt;

use wave_core::classify::{input_driven_shape, InputDrivenShape};
use wave_core::service::Service;
use wave_logic::formula::{Formula, Term};
use wave_logic::schema::RelKind;
use wave_logic::temporal::TFormula;

use wave_automata::ctl_sat::{is_satisfiable, SatError};
use wave_automata::pformula::PFormula;
use wave_automata::props::{PropId, PropRegistry};

/// Errors of the input-driven verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputDrivenError {
    /// The service does not match Definition 4.7.
    NotInputDriven(String),
    /// A rule body falls outside the translatable fragment.
    Untranslatable(String),
    /// The property falls outside the supported CTL fragment.
    BadProperty(String),
    /// The CTL satisfiability tableau could not be run.
    Sat(SatError),
}

impl fmt::Display for InputDrivenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputDrivenError::NotInputDriven(s) => {
                write!(f, "not an input-driven-search service: {s}")
            }
            InputDrivenError::Untranslatable(s) => write!(f, "cannot encode rule: {s}"),
            InputDrivenError::BadProperty(s) => write!(f, "unsupported property: {s}"),
            InputDrivenError::Sat(e) => write!(f, "satisfiability: {e}"),
        }
    }
}

impl std::error::Error for InputDrivenError {}

/// The encoding context: proposition ids for the alphabet of the proof.
struct Encoder {
    registry: PropRegistry,
    shape: InputDrivenShape,
    picked: PropId,
    err: PropId,
}

impl Encoder {
    fn page_prop(&mut self, name: &str) -> PropId {
        self.registry.intern(format!("page:{name}"))
    }

    fn state_prop(&mut self, name: &str) -> PropId {
        self.registry.intern(format!("state:{name}"))
    }

    fn action_prop(&mut self, name: &str) -> PropId {
        self.registry.intern(format!("action:{name}"))
    }

    fn type_prop(&mut self, db_rel: &str) -> PropId {
        self.registry.intern(format!("in:{db_rel}"))
    }

    /// Translates a rule body over the current configuration into a
    /// propositional formula. `input_var` maps the navigation variable of
    /// a guarded quantifier to the current input's type propositions.
    fn body(&mut self, service: &Service, f: &Formula) -> Result<PFormula, InputDrivenError> {
        let bad = |s: String| Err(InputDrivenError::Untranslatable(s));
        match f {
            Formula::True => Ok(PFormula::True),
            Formula::False => Ok(PFormula::False),
            Formula::Not(g) => Ok(PFormula::not(self.body(service, g)?)),
            Formula::And(fs) => Ok(PFormula::and(
                fs.iter()
                    .map(|g| self.body(service, g))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Or(fs) => Ok(PFormula::or(
                fs.iter()
                    .map(|g| self.body(service, g))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Rel { name, args } if args.is_empty() => {
                match service.schema.relation(name).map(|r| r.kind) {
                    Some(RelKind::State) => Ok(PFormula::Prop(self.state_prop(name))),
                    Some(RelKind::Action) => Ok(PFormula::Prop(self.action_prop(name))),
                    Some(RelKind::Page) => Ok(PFormula::Prop(self.page_prop(name))),
                    other => bad(format!("proposition `{name}` has kind {other:?}")),
                }
            }
            // ∃x(I(x) ∧ ψ(x)) ≡ picked ∧ ψ[type props]; and the guarded
            // universal ∀x(I(x) → ψ(x)) ≡ ¬picked ∨ ψ[type props], because
            // the input holds at most one tuple.
            Formula::Exists(vars, inner) => {
                let (var, psi) =
                    split_guard(vars, inner, &self.shape.input_rel, true).ok_or_else(|| {
                        InputDrivenError::Untranslatable(format!(
                            "quantifier not guarded by the input relation: {f}"
                        ))
                    })?;
                let t = self.typed(service, &psi, &var)?;
                Ok(PFormula::and([PFormula::Prop(self.picked), t]))
            }
            Formula::Forall(vars, inner) => {
                let (var, psi) = split_guard(vars, inner, &self.shape.input_rel, false)
                    .ok_or_else(|| {
                        InputDrivenError::Untranslatable(format!(
                            "quantifier not guarded by the input relation: {f}"
                        ))
                    })?;
                let t = self.typed(service, &psi, &var)?;
                Ok(PFormula::or([
                    PFormula::not(PFormula::Prop(self.picked)),
                    t,
                ]))
            }
            other => bad(format!("{other}")),
        }
    }

    /// Translates a formula whose single free variable `var` denotes the
    /// current input: atoms `Q(var)` become type propositions.
    fn typed(
        &mut self,
        service: &Service,
        f: &Formula,
        var: &str,
    ) -> Result<PFormula, InputDrivenError> {
        match f {
            Formula::True => Ok(PFormula::True),
            Formula::False => Ok(PFormula::False),
            Formula::Not(g) => Ok(PFormula::not(self.typed(service, g, var)?)),
            Formula::And(fs) => Ok(PFormula::and(
                fs.iter()
                    .map(|g| self.typed(service, g, var))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Or(fs) => Ok(PFormula::or(
                fs.iter()
                    .map(|g| self.typed(service, g, var))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Rel { name, args } => match args.as_slice() {
                [] => self.body(service, f),
                [Term::Var(v)] if v == var => match service.schema.relation(name).map(|r| r.kind) {
                    Some(RelKind::Database) if *name != self.shape.search_rel => {
                        Ok(PFormula::Prop(self.type_prop(name)))
                    }
                    other => Err(InputDrivenError::Untranslatable(format!(
                        "atom `{name}({var})` has kind {other:?}"
                    ))),
                },
                _ => Err(InputDrivenError::Untranslatable(format!("{f}"))),
            },
            other => Err(InputDrivenError::Untranslatable(format!("{other}"))),
        }
    }
}

/// Splits `vars/inner` as a guarded quantifier over the input relation:
/// existential `I(x) ∧ ψ` or universal `I(x) → ψ` (i.e. `¬I(x) ∨ ψ`).
fn split_guard(
    vars: &[String],
    inner: &Formula,
    input_rel: &str,
    existential: bool,
) -> Option<(String, Formula)> {
    let [x] = vars else { return None };
    let parts: Vec<&Formula> = match inner {
        Formula::And(fs) if existential => fs.iter().collect(),
        Formula::Or(fs) if !existential => fs.iter().collect(),
        other => vec![other],
    };
    let is_guard = |f: &Formula| -> bool {
        let g = if existential {
            f.clone()
        } else {
            match f {
                Formula::Not(inner) => (**inner).clone(),
                _ => return false,
            }
        };
        matches!(&g, Formula::Rel { name, args }
            if name == input_rel && args.as_slice() == [Term::Var(x.clone())])
    };
    let guard_pos = parts.iter().position(|f| is_guard(f))?;
    let rest: Vec<Formula> = parts
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != guard_pos)
        .map(|(_, f)| (*f).clone())
        .collect();
    let psi = if existential {
        Formula::and(rest)
    } else {
        Formula::or(rest)
    };
    Some((x.clone(), psi))
}

/// Builds `ψ_W`, the CTL axiomatization of the service's rule-consistent
/// Kripke structures, and the encoder holding the proposition mapping.
fn axiomatize(service: &Service) -> Result<(PFormula, Encoder), InputDrivenError> {
    let shape = input_driven_shape(service).map_err(InputDrivenError::NotInputDriven)?;
    let mut registry = PropRegistry::new();
    let picked = registry.intern("picked");
    let err = registry.intern("page:__err__");
    let mut enc = Encoder {
        registry,
        shape,
        picked,
        err,
    };

    let page_names: Vec<String> = service.pages.keys().cloned().collect();
    let state_names: Vec<String> = service
        .schema
        .relations_of(RelKind::State)
        .map(|r| r.name.clone())
        .collect();
    let action_names: Vec<String> = service
        .schema
        .relations_of(RelKind::Action)
        .map(|r| r.name.clone())
        .collect();

    let mut page_props: BTreeMap<String, PropId> = BTreeMap::new();
    for p in &page_names {
        let id = enc.page_prop(p);
        page_props.insert(p.clone(), id);
    }

    // --- exactly one page (including the error pseudo-page) ---
    let mut all_pages: Vec<PropId> = page_props.values().copied().collect();
    all_pages.push(enc.err);
    let mut exclusivity = vec![PFormula::or(
        all_pages
            .iter()
            .map(|&p| PFormula::Prop(p))
            .collect::<Vec<_>>(),
    )];
    for (i, &a) in all_pages.iter().enumerate() {
        for &b in &all_pages[i + 1..] {
            exclusivity.push(PFormula::not(PFormula::and([
                PFormula::Prop(a),
                PFormula::Prop(b),
            ])));
        }
    }

    // --- transition consistency, one conjunct per page ---
    let mut trans = exclusivity;
    trans.push(PFormula::implies(
        PFormula::Prop(enc.err),
        PFormula::all_paths(PFormula::next(PFormula::Prop(enc.err))),
    ));
    for (pname, page) in &service.pages {
        let v = page_props[pname];
        let here = PFormula::Prop(v);
        let mut conds: Vec<PFormula> = Vec::new();

        // State updates with conflict-no-op semantics.
        for s in &state_names {
            let (ins, del) = match page.state_rule(s) {
                None => (PFormula::False, PFormula::False),
                Some(r) => {
                    let ins = match &r.insert {
                        Some(b) => enc.body(service, b)?,
                        None => PFormula::False,
                    };
                    let del = match &r.delete {
                        Some(b) => enc.body(service, b)?,
                        None => PFormula::False,
                    };
                    (ins, del)
                }
            };
            let sp = PFormula::Prop(enc.state_prop(s));
            let nextval = PFormula::or([
                PFormula::and([ins.clone(), PFormula::not(del.clone())]),
                PFormula::and([
                    sp.clone(),
                    PFormula::or([
                        PFormula::and([ins.clone(), del.clone()]),
                        PFormula::and([PFormula::not(ins), PFormula::not(del)]),
                    ]),
                ]),
            ]);
            conds.push(PFormula::implies(
                nextval.clone(),
                PFormula::all_paths(PFormula::next(sp.clone())),
            ));
            conds.push(PFormula::implies(
                PFormula::not(nextval),
                PFormula::all_paths(PFormula::next(PFormula::not(sp))),
            ));
        }

        // Actions fired this step, visible next step.
        for a in &action_names {
            let body = page
                .action_rules
                .iter()
                .filter(|r| &r.relation == a)
                .map(|r| enc.body(service, &r.body))
                .collect::<Result<Vec<_>, _>>()?;
            let fired = PFormula::or(body);
            let ap = PFormula::Prop(enc.action_prop(a));
            conds.push(PFormula::implies(
                fired.clone(),
                PFormula::all_paths(PFormula::next(ap.clone())),
            ));
            conds.push(PFormula::implies(
                PFormula::not(fired),
                PFormula::all_paths(PFormula::next(PFormula::not(ap))),
            ));
        }

        // Targets: ambiguity → error page; unique → that page; none → stay.
        let bodies: Vec<(String, PFormula)> = page
            .target_rules
            .iter()
            .map(|r| Ok((r.target.clone(), enc.body(service, &r.body)?)))
            .collect::<Result<Vec<_>, InputDrivenError>>()?;
        let mut conflict_parts = Vec::new();
        for (i, (t1, b1)) in bodies.iter().enumerate() {
            for (t2, b2) in &bodies[i + 1..] {
                if t1 != t2 {
                    conflict_parts.push(PFormula::and([b1.clone(), b2.clone()]));
                }
            }
        }
        let conflict = PFormula::or(conflict_parts);
        conds.push(PFormula::implies(
            conflict.clone(),
            PFormula::all_paths(PFormula::next(PFormula::Prop(enc.err))),
        ));
        for (t, b) in &bodies {
            conds.push(PFormula::implies(
                PFormula::and([b.clone(), PFormula::not(conflict.clone())]),
                PFormula::all_paths(PFormula::next(PFormula::Prop(page_props[t]))),
            ));
        }
        let any = PFormula::or(bodies.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>());
        conds.push(PFormula::implies(
            PFormula::not(any),
            PFormula::all_paths(PFormula::next(PFormula::Prop(v))),
        ));

        // Filter consistency: a picked input in navigation mode satisfies
        // the page's filter (the seed i0 is unconstrained).
        let not_start = PFormula::Prop(enc.state_prop(&enc.shape.not_start.clone()));
        let filter = enc.shape.filters[pname].clone();
        let y = service
            .page(pname)
            .and_then(|p| p.input_rule(&enc.shape.input_rel))
            .map(|r| r.vars[0].clone())
            .unwrap_or_else(|| "y".into());
        let filter_p = enc.typed(service, &filter, &y)?;
        conds.push(PFormula::implies(
            PFormula::and([PFormula::Prop(enc.picked), not_start]),
            filter_p,
        ));

        trans.push(PFormula::implies(here, PFormula::and(conds)));
    }

    // --- initial configuration ---
    let mut init = vec![PFormula::Prop(page_props[&service.home])];
    for s in &state_names {
        init.push(PFormula::not(PFormula::Prop(enc.state_prop(s))));
    }
    for a in &action_names {
        init.push(PFormula::not(PFormula::Prop(enc.action_prop(a))));
    }

    let psi = PFormula::and(
        init.into_iter()
            .chain([PFormula::all_paths(PFormula::always(PFormula::and(trans)))])
            .collect::<Vec<_>>(),
    );
    Ok((psi, enc))
}

/// Translates the user's CTL(-FO) property into the proof's alphabet.
fn lower_property(
    enc: &mut Encoder,
    service: &Service,
    t: &TFormula,
) -> Result<PFormula, InputDrivenError> {
    match t {
        TFormula::Fo(f) => enc
            .body(service, f)
            .map_err(|e| InputDrivenError::BadProperty(e.to_string())),
        TFormula::Not(g) => Ok(PFormula::not(lower_property(enc, service, g)?)),
        TFormula::And(fs) => Ok(PFormula::and(
            fs.iter()
                .map(|g| lower_property(enc, service, g))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        TFormula::Or(fs) => Ok(PFormula::or(
            fs.iter()
                .map(|g| lower_property(enc, service, g))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        TFormula::X(g) => Ok(PFormula::next(lower_property(enc, service, g)?)),
        TFormula::U(a, b) => Ok(PFormula::until(
            lower_property(enc, service, a)?,
            lower_property(enc, service, b)?,
        )),
        TFormula::B(a, b) => Ok(PFormula::not(PFormula::until(
            PFormula::not(lower_property(enc, service, a)?),
            lower_property(enc, service, b)?,
        ))),
        TFormula::F(g) => Ok(PFormula::eventually(lower_property(enc, service, g)?)),
        TFormula::G(g) => Ok(PFormula::always(lower_property(enc, service, g)?)),
        TFormula::Path(wave_logic::temporal::PathQuant::E, g) => {
            Ok(PFormula::exists_path(lower_property(enc, service, g)?))
        }
        TFormula::Path(wave_logic::temporal::PathQuant::A, g) => {
            Ok(PFormula::all_paths(lower_property(enc, service, g)?))
        }
    }
}

/// Decides `W ⊨ φ` for a service with input-driven search and a CTL
/// property over `Σ_W ∪ {picked, in_Q}` (Theorem 4.9): satisfiability of
/// `ψ_W ∧ ¬φ` is tested with the tableau; `max_elementary` bounds the
/// tableau size (the procedure is EXPTIME).
pub fn verify(
    service: &Service,
    property: &TFormula,
    max_elementary: usize,
) -> Result<bool, InputDrivenError> {
    let (psi, mut enc) = axiomatize(service)?;
    let phi = lower_property(&mut enc, service, property)?;
    let query = PFormula::and([psi, PFormula::not(phi)]);
    if !query.is_ctl() {
        return Err(InputDrivenError::BadProperty(
            "property must be CTL (Theorem 4.9's CTL* case is 2-EXPTIME and out of \
             scope; see DESIGN.md)"
                .into(),
        ));
    }
    match is_satisfiable(&query, max_elementary) {
        Ok(r) => Ok(!r.is_sat()),
        Err(e) => Err(InputDrivenError::Sat(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_temporal;

    /// One-page catalog navigator: in-stock filter, Example 4.8 style.
    fn navigator() -> Service {
        let mut b = ServiceBuilder::new("SP");
        b.database_relation("cat_graph", 2)
            .database_relation("in_stock", 1)
            .database_constant("i0")
            .state_prop("not_start")
            .input_relation("pick", 1)
            .page("SP")
            .input_rule(
                "pick",
                &["y"],
                "(!not_start & y = i0) | (not_start & (exists x . (prev_pick(x) & cat_graph(x, y))) & in_stock(y))",
            )
            .insert_rule("not_start", &[], "!not_start");
        b.build().unwrap()
    }

    #[test]
    fn filter_is_enforced() {
        let s = navigator();
        // AG(not_start ∧ picked → in_stock): after the seed step, every
        // picked input is in stock — follows from ψ_W's filter clause.
        let p = parse_temporal(
            "A G ((not_start & exists y . (pick(y) & in_stock(y))) | !(not_start & exists y . pick(y)))",
            &[],
        )
        .unwrap();
        assert!(verify(&s, &p, 24).unwrap());
    }

    #[test]
    fn seed_type_is_unconstrained() {
        let s = navigator();
        // AG(picked → in_stock) must FAIL: the seed i0 need not be in stock.
        let p = parse_temporal(
            "A G ((exists y . (pick(y) & in_stock(y))) | !(exists y . pick(y)))",
            &[],
        )
        .unwrap();
        assert!(!verify(&s, &p, 24).unwrap());
    }

    #[test]
    fn single_page_invariant() {
        let s = navigator();
        // AG SP: the single page never leaves itself (no target rules).
        let p = parse_temporal("A G SP", &[]).unwrap();
        assert!(verify(&s, &p, 24).unwrap());
    }

    #[test]
    fn not_start_flips_once() {
        let s = navigator();
        // AX AG not_start: from the second step on, not_start holds.
        let p = parse_temporal("A X (A G not_start)", &[]).unwrap();
        assert!(verify(&s, &p, 24).unwrap());
        // But not initially.
        let q = parse_temporal("not_start", &[]).unwrap();
        assert!(!verify(&s, &q, 24).unwrap());
    }

    #[test]
    fn rejects_non_input_driven() {
        let mut b = ServiceBuilder::new("P");
        b.input_relation("go", 0).page("P").input_prop_on_page("go");
        let s = b.build().unwrap();
        let p = parse_temporal("A G P", &[]).unwrap();
        assert!(matches!(
            verify(&s, &p, 24),
            Err(InputDrivenError::NotInputDriven(_))
        ));
    }

    #[test]
    fn rejects_ctl_star() {
        let s = navigator();
        let p = parse_temporal("A F (G not_start)", &[]).unwrap();
        assert!(matches!(
            verify(&s, &p, 24),
            Err(InputDrivenError::BadProperty(_))
        ));
    }
}
