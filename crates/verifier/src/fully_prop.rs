//! CTL(\*) verification of fully propositional services (Theorem 4.6).
//!
//! A fully propositional service uses no database at all: inputs, states
//! and actions are all propositional and the rules mention no database
//! relation. Its behaviour is a single Kripke structure, built directly
//! and model checked — the paper obtains PSPACE via on-the-fly hesitant
//! alternating automata (Kupferman–Vardi–Wolper); we materialize the
//! reachable states, which answers identically (see DESIGN.md §4 for the
//! substitution note) and is benchmarked as ablation EXP-A2.

use wave_core::classify;
use wave_core::service::Service;
use wave_logic::instance::Instance;
use wave_logic::temporal::TFormula;

use crate::ctl_prop::{self, CtlError, CtlOptions};

/// Verifies a CTL(\*) property of a fully propositional service.
pub fn verify(service: &Service, property: &TFormula, opts: &CtlOptions) -> Result<bool, CtlError> {
    if !classify::is_fully_propositional(service) {
        return Err(CtlError::NotPropositional);
    }
    ctl_prop::verify_ctl_on_db(service, &Instance::new(), property, opts)
}

/// Builds the service's Kripke structure (exposed for benchmarks).
pub fn kripke_of(
    service: &Service,
    property: &TFormula,
    opts: &CtlOptions,
) -> Result<wave_automata::Kripke, CtlError> {
    let mut table = crate::abstraction::FoAbstraction::default();
    let _ = crate::abstraction::to_pformula(property, &mut table);
    ctl_prop::build_kripke(service, &Instance::new(), &table, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::builder::ServiceBuilder;
    use wave_logic::parser::parse_temporal;

    /// A fully propositional mini-workflow: browse → cart → paid, with a
    /// cancel input clearing the cart.
    fn shop() -> Service {
        let mut b = ServiceBuilder::new("Browse");
        b.state_prop("in_cart")
            .state_prop("paid")
            .input_relation("add", 0)
            .input_relation("pay", 0)
            .input_relation("cancel", 0)
            .page("Browse")
            .input_prop_on_page("add")
            .insert_rule("in_cart", &[], "add")
            .target("Cart", "add")
            .page("Cart")
            .input_prop_on_page("pay")
            .input_prop_on_page("cancel")
            .insert_rule("paid", &[], "pay & in_cart")
            .delete_rule("in_cart", &[], "cancel")
            .target("Done", "pay & in_cart")
            .target("Browse", "cancel & !pay")
            .page("Done");
        b.build().unwrap()
    }

    #[test]
    fn classification_gate() {
        let s = shop();
        assert!(classify::is_fully_propositional(&s));
    }

    #[test]
    fn payment_requires_cart() {
        let s = shop();
        // AG (paid -> in_cart)? paid is set when pay & in_cart — and
        // in_cart persists unless cancelled, so on Done both hold. What
        // must hold: AG (Done -> paid).
        let p = parse_temporal("A G (Done -> paid)", &[]).unwrap();
        assert!(verify(&s, &p, &CtlOptions::default()).unwrap());
        // AG (paid -> !Browse): once paid you are never back on Browse —
        // true because Done has no exits.
        let q = parse_temporal("A G (paid -> !Browse)", &[]).unwrap();
        assert!(verify(&s, &q, &CtlOptions::default()).unwrap());
    }

    #[test]
    fn navigation_properties() {
        let s = shop();
        // From the home page one can always eventually pay: E F Done.
        let p = parse_temporal("E F Done", &[]).unwrap();
        assert!(verify(&s, &p, &CtlOptions::default()).unwrap());
        // AG EF Browse fails: Done is a sink.
        let q = parse_temporal("A G (E F Browse)", &[]).unwrap();
        assert!(!verify(&s, &q, &CtlOptions::default()).unwrap());
    }

    #[test]
    fn ctl_star_fairness_property() {
        let s = shop();
        // A run that eventually stays on Cart forever exists (idle there).
        let p = parse_temporal("E F (G Cart)", &[]).unwrap();
        assert!(verify(&s, &p, &CtlOptions::default()).unwrap());
    }

    #[test]
    fn rejects_database_service() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .input_relation("go", 0)
            .state_prop("s")
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], r#"go & d("k")"#);
        let s = b.build().unwrap();
        let p = parse_temporal("A G true", &[]).unwrap();
        assert_eq!(
            verify(&s, &p, &CtlOptions::default()),
            Err(CtlError::NotPropositional)
        );
    }

    #[test]
    fn kripke_size_reported() {
        let s = shop();
        let p = parse_temporal("A G true", &[]).unwrap();
        let k = kripke_of(&s, &p, &CtlOptions::default()).unwrap();
        assert!(k.len() >= 3, "at least one state per page");
        assert!(k.is_total());
    }
}
