//! # wave-verifier
//!
//! The decision procedures of *Deutsch–Sui–Vianu (PODS 2004)*:
//!
//! | Module | Paper result | Procedure |
//! |---|---|---|
//! | [`symbolic`] | Theorem 3.5 | LTL-FO verification of input-bounded services by symbolic pseudo-run search (Local-Run + Periodic-Run lemmas) with a Büchi product |
//! | [`errorfree`] | Theorem 3.5(i), Lemma A.5 | error-freeness, both natively and via the Lemma A.5 page transformation |
//! | [`enumerative`] | baseline | explicit-state verification over one concrete database (the comparator the symbolic method dominates) |
//! | [`dbgen`] | Lemma A.11 | bounded database enumeration with isomorphism pruning, plus random databases |
//! | [`ctl_prop`] | Theorem 4.4 / Corollary 4.5 | CTL(\*) verification of propositional input-bounded services via per-database Kripke construction (Lemma A.12) |
//! | [`fully_prop`] | Theorem 4.6 | CTL(\*) verification of fully propositional services |
//! | [`input_driven`] | Theorem 4.9 | CTL verification of services with input-driven search by reduction to CTL satisfiability |
//! | [`abstraction`] | §4 | lowering of CTL(\*)-FO formulas to propositional form over their FO components |
//! | [`trace`] | §2 ("fake loops") | LTL-FO checking on recorded concrete runs |
//! | [`precheck`] | §3–§4 (syntactic classes) | admission gate: `wave-lint` static analysis decides, before any search, whether a request is in a decidable class |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod ctl_prop;
pub mod dbgen;
pub mod enumerative;
pub mod errorfree;
pub mod fully_prop;
pub mod input_driven;
pub mod precheck;
pub mod replay;
pub mod symbolic;
pub mod trace;

pub use enumerative::{verify_ltl_on_db, EnumOutcome};
pub use symbolic::{verify_ltl, SearchStats, SymbolicOptions, Verdict, VerifyOutcome};
