//! The four rule kinds of a Web page schema (Definition 2.1).
//!
//! * **Input rules** `Options_I(x̄) ← φ(x̄)` generate the menu of tuples the
//!   user may pick from for input relation `I`.
//! * **State rules** — an insertion rule `S(x̄) ← φ⁺(x̄)` and/or a deletion
//!   rule `¬S(x̄) ← φ⁻(x̄)`; conflicts get no-op semantics (Definition 2.3).
//! * **Action rules** `A(x̄) ← φ(x̄)` produce the actions taken in response
//!   to the input.
//! * **Target rules** `V ← φ` fire transitions to the next Web page; the
//!   specification is ambiguous (→ error page) if two fire at once.

use wave_logic::formula::{Formula, Var};

/// `Options_I(x̄) ← φ(x̄)`: the menu of choices for input relation `I`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputRule {
    /// The input relation `I` this rule feeds.
    pub relation: String,
    /// The head variables `x̄` (length = arity of `I`).
    pub vars: Vec<Var>,
    /// The body `φ(x̄)` over `D ∪ S ∪ Prev_I ∪ const(I)`.
    pub body: Formula,
}

/// State rules for one state relation: optional insertion and deletion
/// bodies sharing the head variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateRule {
    /// The state relation `S`.
    pub relation: String,
    /// The head variables `x̄` (length = arity of `S`).
    pub vars: Vec<Var>,
    /// Insertion body `φ⁺(x̄)`, if an insertion rule is given.
    pub insert: Option<Formula>,
    /// Deletion body `φ⁻(x̄)`, if a deletion rule is given.
    pub delete: Option<Formula>,
}

/// `A(x̄) ← φ(x̄)`: an action rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionRule {
    /// The action relation `A`.
    pub relation: String,
    /// The head variables `x̄` (length = arity of `A`).
    pub vars: Vec<Var>,
    /// The body `φ(x̄)` over `D ∪ S ∪ Prev_I ∪ const(I) ∪ I_W`.
    pub body: Formula,
}

/// `V ← φ`: a target rule naming the next Web page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetRule {
    /// The target page `V ∈ T_W`.
    pub target: String,
    /// The body — an FO *sentence* over `D ∪ S ∪ Prev_I ∪ const(I) ∪ I_W`.
    pub body: Formula,
}

impl StateRule {
    /// An insertion-only rule.
    pub fn insert_only(relation: impl Into<String>, vars: Vec<Var>, body: Formula) -> Self {
        StateRule {
            relation: relation.into(),
            vars,
            insert: Some(body),
            delete: None,
        }
    }

    /// A deletion-only rule.
    pub fn delete_only(relation: impl Into<String>, vars: Vec<Var>, body: Formula) -> Self {
        StateRule {
            relation: relation.into(),
            vars,
            insert: None,
            delete: Some(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_logic::formula::Term;

    #[test]
    fn constructors() {
        let r = StateRule::insert_only(
            "error",
            vec![],
            Formula::rel("button", vec![Term::lit("login")]),
        );
        assert!(r.insert.is_some());
        assert!(r.delete.is_none());
        let d = StateRule::delete_only("cart", vec!["x".into()], Formula::True);
        assert!(d.insert.is_none());
        assert!(d.delete.is_some());
    }
}
