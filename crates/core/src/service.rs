//! The Web service tuple `⟨D, S, I, A, W, W0, W_err⟩` and its structural
//! validation (Definition 2.1).

use std::collections::BTreeMap;
use std::fmt;

use wave_logic::formula::{Formula, Term};
use wave_logic::schema::{ConstKind, RelKind, Schema};

use crate::page::Page;

/// A data-driven Web service specification.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Service {
    /// The union vocabulary: database, state, input, prev-input, action and
    /// page relations, plus database and input constants.
    pub schema: Schema,
    /// The Web page schemas, keyed by name (`W`).
    pub pages: BTreeMap<String, Page>,
    /// The home page `W0 ∈ W`.
    pub home: String,
    /// The error page `W_err ∉ W` (a reserved name; its behaviour is fixed:
    /// loop forever).
    pub error_page: String,
}

/// A violation of Definition 2.1's side conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The home page is not among the page schemas.
    MissingHomePage(String),
    /// The error page must not be among the page schemas.
    ErrorPageDefined(String),
    /// A page name is not registered as an arity-0 `Page` relation.
    PageNotInSchema(String),
    /// A page lists an input that is not an `Input` relation.
    NotAnInputRelation {
        /// Page name.
        page: String,
        /// Offending relation.
        relation: String,
    },
    /// A page lists an input constant that is not declared as one.
    NotAnInputConstant {
        /// Page name.
        page: String,
        /// Offending constant.
        constant: String,
    },
    /// A relational input of positive arity lacks its input rule.
    MissingInputRule {
        /// Page name.
        page: String,
        /// The input relation without a rule.
        relation: String,
    },
    /// A rule head's variable list disagrees with the relation's arity, or
    /// repeats a variable.
    BadRuleHead {
        /// Page name.
        page: String,
        /// Head relation.
        relation: String,
        /// Explanation.
        why: String,
    },
    /// A rule body has free variables beyond the head variables.
    UnboundBodyVariables {
        /// Page name.
        page: String,
        /// Head relation (or target page for target rules).
        rule: String,
        /// The stray variables.
        vars: Vec<String>,
    },
    /// A rule body uses a relation symbol not in the schema, or with the
    /// wrong arity.
    BadAtom {
        /// Page name.
        page: String,
        /// The offending relation usage.
        relation: String,
        /// Explanation.
        why: String,
    },
    /// A rule body uses a relation kind it may not (e.g. an action atom in
    /// an input rule, or another page's input).
    ForbiddenVocabulary {
        /// Page name.
        page: String,
        /// The offending relation.
        relation: String,
        /// Where it appeared.
        context: String,
    },
    /// A rule body mentions an undeclared constant.
    UnknownConstant {
        /// Page name.
        page: String,
        /// The constant.
        constant: String,
    },
    /// A target rule names a page that does not exist.
    UnknownTargetPage {
        /// Page name.
        page: String,
        /// The missing target.
        target: String,
    },
    /// A target rule body is not a sentence.
    TargetRuleNotSentence {
        /// Page name.
        page: String,
        /// Target page.
        target: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingHomePage(h) => write!(f, "home page `{h}` not defined"),
            ValidationError::ErrorPageDefined(e) => {
                write!(f, "error page `{e}` must not have a page schema")
            }
            ValidationError::PageNotInSchema(p) => {
                write!(f, "page `{p}` not registered as a Page relation")
            }
            ValidationError::NotAnInputRelation { page, relation } => {
                write!(f, "page `{page}`: `{relation}` is not an input relation")
            }
            ValidationError::NotAnInputConstant { page, constant } => {
                write!(f, "page `{page}`: `{constant}` is not an input constant")
            }
            ValidationError::MissingInputRule { page, relation } => {
                write!(f, "page `{page}`: input `{relation}` lacks an Options rule")
            }
            ValidationError::BadRuleHead {
                page,
                relation,
                why,
            } => {
                write!(f, "page `{page}`: bad head for `{relation}`: {why}")
            }
            ValidationError::UnboundBodyVariables { page, rule, vars } => write!(
                f,
                "page `{page}`: rule `{rule}` has unbound variables {{{}}}",
                vars.join(", ")
            ),
            ValidationError::BadAtom {
                page,
                relation,
                why,
            } => {
                write!(f, "page `{page}`: bad atom `{relation}`: {why}")
            }
            ValidationError::ForbiddenVocabulary {
                page,
                relation,
                context,
            } => {
                write!(f, "page `{page}`: `{relation}` may not appear in {context}")
            }
            ValidationError::UnknownConstant { page, constant } => {
                write!(f, "page `{page}`: unknown constant `{constant}`")
            }
            ValidationError::UnknownTargetPage { page, target } => {
                write!(f, "page `{page}`: unknown target page `{target}`")
            }
            ValidationError::TargetRuleNotSentence { page, target } => {
                write!(
                    f,
                    "page `{page}`: target rule for `{target}` has free variables"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Service {
    /// Looks up a page schema.
    pub fn page(&self, name: &str) -> Option<&Page> {
        self.pages.get(name)
    }

    /// Page names in deterministic order.
    pub fn page_names(&self) -> impl Iterator<Item = &str> {
        self.pages.keys().map(String::as_str)
    }

    /// Checks every side condition of Definition 2.1 and reports all
    /// violations (empty vector = valid).
    pub fn validate(&self) -> Result<(), Vec<ValidationError>> {
        let mut errs = Vec::new();
        if !self.pages.contains_key(&self.home) {
            errs.push(ValidationError::MissingHomePage(self.home.clone()));
        }
        if self.pages.contains_key(&self.error_page) {
            errs.push(ValidationError::ErrorPageDefined(self.error_page.clone()));
        }
        for (name, page) in &self.pages {
            match self.schema.relation(name) {
                Some(r) if r.kind == RelKind::Page && r.arity == 0 => {}
                _ => errs.push(ValidationError::PageNotInSchema(name.clone())),
            }
            self.validate_page(page, &mut errs);
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn validate_page(&self, page: &Page, errs: &mut Vec<ValidationError>) {
        let pname = &page.name;
        // Inputs declared and of the right kind.
        for i in &page.inputs {
            match self.schema.relation(i) {
                Some(r) if r.kind == RelKind::Input => {
                    if r.arity > 0 && page.input_rule(i).is_none() {
                        errs.push(ValidationError::MissingInputRule {
                            page: pname.clone(),
                            relation: i.clone(),
                        });
                    }
                }
                _ => errs.push(ValidationError::NotAnInputRelation {
                    page: pname.clone(),
                    relation: i.clone(),
                }),
            }
        }
        for c in &page.input_constants {
            if self.schema.constant(c) != Some(ConstKind::Input) {
                errs.push(ValidationError::NotAnInputConstant {
                    page: pname.clone(),
                    constant: c.clone(),
                });
            }
        }
        // Rule heads and bodies.
        for r in &page.input_rules {
            self.check_head(pname, &r.relation, &r.vars, RelKind::Input, errs);
            self.check_body(
                pname,
                &r.relation,
                &r.body,
                &r.vars,
                page,
                BodyContext::InputRule,
                errs,
            );
        }
        for r in &page.state_rules {
            self.check_head(pname, &r.relation, &r.vars, RelKind::State, errs);
            for body in r.insert.iter().chain(r.delete.iter()) {
                self.check_body(
                    pname,
                    &r.relation,
                    body,
                    &r.vars,
                    page,
                    BodyContext::StateOrAction,
                    errs,
                );
            }
        }
        for r in &page.action_rules {
            self.check_head(pname, &r.relation, &r.vars, RelKind::Action, errs);
            self.check_body(
                pname,
                &r.relation,
                &r.body,
                &r.vars,
                page,
                BodyContext::StateOrAction,
                errs,
            );
        }
        for r in &page.target_rules {
            if !self.pages.contains_key(&r.target) {
                errs.push(ValidationError::UnknownTargetPage {
                    page: pname.clone(),
                    target: r.target.clone(),
                });
            }
            if !r.body.free_vars().is_empty() {
                errs.push(ValidationError::TargetRuleNotSentence {
                    page: pname.clone(),
                    target: r.target.clone(),
                });
            }
            self.check_body(
                pname,
                &r.target,
                &r.body,
                &[],
                page,
                BodyContext::StateOrAction,
                errs,
            );
        }
    }

    fn check_head(
        &self,
        pname: &str,
        relation: &str,
        vars: &[String],
        expected: RelKind,
        errs: &mut Vec<ValidationError>,
    ) {
        match self.schema.relation(relation) {
            None => errs.push(ValidationError::BadAtom {
                page: pname.to_string(),
                relation: relation.to_string(),
                why: "relation not declared".into(),
            }),
            Some(r) => {
                if r.kind != expected {
                    errs.push(ValidationError::BadRuleHead {
                        page: pname.to_string(),
                        relation: relation.to_string(),
                        why: format!("expected a {expected} relation, found {}", r.kind),
                    });
                }
                if r.arity != vars.len() {
                    errs.push(ValidationError::BadRuleHead {
                        page: pname.to_string(),
                        relation: relation.to_string(),
                        why: format!("arity {} but {} head variables", r.arity, vars.len()),
                    });
                }
                let mut seen = std::collections::BTreeSet::new();
                for v in vars {
                    if !seen.insert(v) {
                        errs.push(ValidationError::BadRuleHead {
                            page: pname.to_string(),
                            relation: relation.to_string(),
                            why: format!("repeated head variable `{v}`"),
                        });
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_body(
        &self,
        pname: &str,
        rule: &str,
        body: &Formula,
        head_vars: &[String],
        page: &Page,
        ctx: BodyContext,
        errs: &mut Vec<ValidationError>,
    ) {
        // Free variables ⊆ head variables.
        let stray: Vec<String> = body
            .free_vars()
            .into_iter()
            .filter(|v| !head_vars.contains(v))
            .collect();
        if !stray.is_empty() {
            errs.push(ValidationError::UnboundBodyVariables {
                page: pname.to_string(),
                rule: rule.to_string(),
                vars: stray,
            });
        }
        // Atoms: declared, right arity, permitted kind.
        for (rel, arity) in body.relations_used() {
            match self.schema.relation(&rel) {
                None => errs.push(ValidationError::BadAtom {
                    page: pname.to_string(),
                    relation: rel.clone(),
                    why: "relation not declared".into(),
                }),
                Some(r) => {
                    if r.arity != arity {
                        errs.push(ValidationError::BadAtom {
                            page: pname.to_string(),
                            relation: rel.clone(),
                            why: format!("declared arity {} used with {arity}", r.arity),
                        });
                    }
                    let allowed = match (r.kind, ctx) {
                        (RelKind::Database | RelKind::State | RelKind::PrevInput, _) => true,
                        // Input rules may not read the page's own inputs
                        // (Definition 2.1: options are over D∪S∪Prev_I).
                        (RelKind::Input, BodyContext::InputRule) => false,
                        (RelKind::Input, BodyContext::StateOrAction) => page.inputs.contains(&rel),
                        (RelKind::Action | RelKind::Page, _) => false,
                    };
                    if !allowed {
                        errs.push(ValidationError::ForbiddenVocabulary {
                            page: pname.to_string(),
                            relation: rel.clone(),
                            context: match ctx {
                                BodyContext::InputRule => "an input-option rule".into(),
                                BodyContext::StateOrAction => "a state/action/target rule".into(),
                            },
                        });
                    }
                }
            }
        }
        // Constants declared.
        for c in body.constants_used() {
            if self.schema.constant(&c).is_none() {
                errs.push(ValidationError::UnknownConstant {
                    page: pname.to_string(),
                    constant: c,
                });
            }
        }
        // No literal terms restrictions — literals are always fine.
        let _ = Term::lit(0);
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BodyContext {
    InputRule,
    StateOrAction,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{InputRule, StateRule, TargetRule};
    use wave_logic::formula::Term;

    fn tiny_service() -> Service {
        let mut schema = Schema::new();
        schema.add_relation("user", 2, RelKind::Database).unwrap();
        schema.add_relation("button", 1, RelKind::Input).unwrap();
        schema.add_relation("logged_in", 0, RelKind::State).unwrap();
        schema.add_relation("HP", 0, RelKind::Page).unwrap();
        schema.add_relation("CP", 0, RelKind::Page).unwrap();
        schema.add_constant("name", ConstKind::Input).unwrap();
        schema.add_constant("password", ConstKind::Input).unwrap();

        let mut hp = Page::new("HP");
        hp.inputs.push("button".into());
        hp.input_constants = vec!["name".into(), "password".into()];
        hp.input_rules.push(InputRule {
            relation: "button".into(),
            vars: vec!["x".into()],
            body: Formula::or([
                Formula::eq(Term::var("x"), Term::lit("login")),
                Formula::eq(Term::var("x"), Term::lit("clear")),
            ]),
        });
        hp.state_rules.push(StateRule::insert_only(
            "logged_in",
            vec![],
            Formula::and([
                Formula::rel("user", vec![Term::cst("name"), Term::cst("password")]),
                Formula::rel("button", vec![Term::lit("login")]),
            ]),
        ));
        hp.target_rules.push(TargetRule {
            target: "CP".into(),
            body: Formula::and([
                Formula::rel("user", vec![Term::cst("name"), Term::cst("password")]),
                Formula::rel("button", vec![Term::lit("login")]),
            ]),
        });

        let mut cp = Page::new("CP");
        cp.target_rules.push(TargetRule {
            target: "HP".into(),
            body: Formula::False,
        });

        Service {
            schema,
            pages: BTreeMap::from([("HP".into(), hp), ("CP".into(), cp)]),
            home: "HP".into(),
            error_page: "ERR".into(),
        }
    }

    #[test]
    fn valid_service_passes() {
        let s = tiny_service();
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn missing_home_detected() {
        let mut s = tiny_service();
        s.home = "NOPE".into();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MissingHomePage(_))));
    }

    #[test]
    fn error_page_must_not_be_defined() {
        let mut s = tiny_service();
        s.error_page = "CP".into();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::ErrorPageDefined(_))));
    }

    #[test]
    fn missing_input_rule_detected() {
        let mut s = tiny_service();
        s.pages.get_mut("HP").unwrap().input_rules.clear();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MissingInputRule { .. })));
    }

    #[test]
    fn stray_variable_detected() {
        let mut s = tiny_service();
        s.pages.get_mut("HP").unwrap().state_rules[0].insert = Some(Formula::rel(
            "user",
            vec![Term::var("z"), Term::cst("password")],
        ));
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnboundBodyVariables { .. })));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut s = tiny_service();
        s.pages.get_mut("HP").unwrap().target_rules[0].body =
            Formula::rel("user", vec![Term::cst("name")]);
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadAtom { why, .. } if why.contains("arity"))));
    }

    #[test]
    fn foreign_input_in_rule_detected() {
        let mut s = tiny_service();
        // CP does not list `button` among its inputs but uses it.
        s.pages.get_mut("CP").unwrap().target_rules[0].body =
            Formula::rel("button", vec![Term::lit("login")]);
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::ForbiddenVocabulary { .. })));
    }

    #[test]
    fn input_rule_may_not_read_inputs() {
        let mut s = tiny_service();
        s.pages.get_mut("HP").unwrap().input_rules[0].body =
            Formula::rel("button", vec![Term::var("x")]);
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::ForbiddenVocabulary { .. })));
    }

    #[test]
    fn unknown_target_detected() {
        let mut s = tiny_service();
        s.pages
            .get_mut("HP")
            .unwrap()
            .target_rules
            .push(TargetRule {
                target: "NOWHERE".into(),
                body: Formula::False,
            });
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownTargetPage { .. })));
    }

    #[test]
    fn unknown_constant_detected() {
        let mut s = tiny_service();
        s.pages.get_mut("HP").unwrap().target_rules[0].body =
            Formula::eq(Term::cst("mystery"), Term::lit(1));
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownConstant { .. })));
    }

    #[test]
    fn prev_input_allowed_in_input_rules() {
        let mut s = tiny_service();
        s.pages.get_mut("HP").unwrap().input_rules[0].body = Formula::exists(
            vec!["y".into()],
            Formula::and([
                Formula::rel("prev_button", vec![Term::var("y")]),
                Formula::eq(Term::var("x"), Term::var("y")),
            ]),
        );
        assert_eq!(s.validate(), Ok(()));
    }
}
