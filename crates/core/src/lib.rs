//! # wave-core
//!
//! The data-driven Web service model of *Deutsch–Sui–Vianu (PODS 2004)*,
//! Definitions 2.1–2.3:
//!
//! * a **database** schema `D` (fixed through each run),
//! * **state** relations `S` (updated by insertion/deletion rules),
//! * **input** relations and *input constants* `I` (user choices),
//! * **action** relations `A`,
//! * a set of **Web page schemas** with input-option, state, action and
//!   target rules; a designated home page and an error page.
//!
//! Modules:
//!
//! * [`rules`] — the four rule kinds of a page schema.
//! * [`page`] — Web page schemas.
//! * [`service`] — the service tuple `⟨D,S,I,A,W,W0,Werr⟩` plus structural
//!   validation of Definition 2.1's side conditions.
//! * [`run`] — the run semantics of Definition 2.3: option generation,
//!   state transition with conflict-no-op semantics, `prev` bookkeeping,
//!   input-constant provisioning and the three error conditions.
//! * [`classify`] — syntactic classification into the paper's decidable
//!   classes: input-bounded (§3), propositional / fully propositional
//!   (§4), and input-driven search (Definition 4.7).
//! * [`builder`] — an ergonomic builder with embedded formula parsing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod classify;
pub mod fingerprint;
pub mod page;
pub mod provenance;
pub mod rules;
pub mod run;
pub mod service;
pub mod slice;
pub mod spec;

pub use builder::ServiceBuilder;
pub use classify::{ServiceClass, ServiceClassification};
pub use page::Page;
pub use provenance::{RuleSource, ServiceSources};
pub use rules::{ActionRule, InputRule, StateRule, TargetRule};
pub use run::{Config, InputChoice, Runner, StepError};
pub use service::{Service, ValidationError};
pub use slice::{cone_digests, reachable_pages, slice, SliceReport, SliceResult};
pub use spec::{PageSpec, RuleSpec, ServiceSpec};
