//! A data-level, text-round-trippable service specification.
//!
//! A [`ServiceSpec`] holds declarations, pages, rules (bodies kept as
//! surface-syntax source text), concrete database facts, and a property.
//! It round-trips through a line-oriented text form
//! ([`ServiceSpec::to_source`] / [`ServiceSpec::parse`]) — the format
//! wave-qa's shrunk repros print as and the wave-lint CLI's
//! `--service <file>` mode reads — and it lowers to a real [`Service`]
//! through the ordinary [`ServiceBuilder`] path, the same front door
//! every other client uses.

use crate::builder::{BuildError, ServiceBuilder};
use crate::provenance::ServiceSources;
use crate::service::Service;
use wave_logic::instance::Instance;
use wave_logic::value::{Tuple, Value};

/// One rule: `rel(vars) :- body`, with the body as source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleSpec {
    /// The head relation.
    pub rel: String,
    /// The head variables (empty for propositional rules).
    pub vars: Vec<String>,
    /// The body, in the FO surface syntax.
    pub body: String,
}

impl RuleSpec {
    /// `rel(v1, v2) :- body` (or `rel :- body` at arity 0).
    fn render(&self) -> String {
        if self.vars.is_empty() {
            format!("{} :- {}", self.rel, self.body)
        } else {
            format!("{}({}) :- {}", self.rel, self.vars.join(", "), self.body)
        }
    }

    fn parse(s: &str) -> Option<RuleSpec> {
        let (head, body) = s.split_once(":-")?;
        let head = head.trim();
        let body = body.trim().to_string();
        let (rel, vars) = match head.split_once('(') {
            None => (head.to_string(), Vec::new()),
            Some((rel, rest)) => {
                let inner = rest.strip_suffix(')')?;
                let vars = inner
                    .split(',')
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect();
                (rel.trim().to_string(), vars)
            }
        };
        Some(RuleSpec { rel, vars, body })
    }
}

/// One page: what it solicits, its rules, and its navigation targets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageSpec {
    /// The page name.
    pub name: String,
    /// Arity-0 input relations solicited on this page.
    pub solicits: Vec<String>,
    /// Input options rules.
    pub input_rules: Vec<RuleSpec>,
    /// State insertion rules.
    pub inserts: Vec<RuleSpec>,
    /// State deletion rules.
    pub deletes: Vec<RuleSpec>,
    /// `(target page, guard source)` pairs.
    pub targets: Vec<(String, String)>,
}

/// A complete fuzz case: vocabulary, pages, database, property.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceSpec {
    /// The home page.
    pub home: String,
    /// Database relations `(name, arity)`.
    pub db_rels: Vec<(String, usize)>,
    /// Arity-0 state relations.
    pub state_props: Vec<String>,
    /// Positive-arity state relations.
    pub state_rels: Vec<(String, usize)>,
    /// Arity-0 input relations.
    pub input_props: Vec<String>,
    /// Positive-arity input relations.
    pub input_rels: Vec<(String, usize)>,
    /// The pages, in declaration order.
    pub pages: Vec<PageSpec>,
    /// Concrete database facts `(relation, tuple of string values)`.
    pub facts: Vec<(String, Vec<String>)>,
    /// The property under test, in the surface syntax.
    pub property: String,
}

impl ServiceSpec {
    /// Lowers the spec to a [`Service`] with provenance, through the
    /// ordinary builder path.
    pub fn build(&self) -> Result<(Service, ServiceSources), Vec<BuildError>> {
        let mut b = ServiceBuilder::new(&self.home);
        for (r, a) in &self.db_rels {
            b.database_relation(r, *a);
        }
        for s in &self.state_props {
            b.state_prop(s);
        }
        for (r, a) in &self.state_rels {
            b.state_relation(r, *a);
        }
        for p in &self.input_props {
            b.input_relation(p, 0);
        }
        for (r, a) in &self.input_rels {
            b.input_relation(r, *a);
        }
        for page in &self.pages {
            b.page(&page.name);
            for s in &page.solicits {
                b.input_prop_on_page(s);
            }
            for r in &page.input_rules {
                let vars: Vec<&str> = r.vars.iter().map(|v| v.as_str()).collect();
                b.input_rule(&r.rel, &vars, &r.body);
            }
            for r in &page.inserts {
                let vars: Vec<&str> = r.vars.iter().map(|v| v.as_str()).collect();
                b.insert_rule(&r.rel, &vars, &r.body);
            }
            for r in &page.deletes {
                let vars: Vec<&str> = r.vars.iter().map(|v| v.as_str()).collect();
                b.delete_rule(&r.rel, &vars, &r.body);
            }
            for (t, guard) in &page.targets {
                b.target(t, guard);
            }
        }
        b.build_with_sources()
    }

    /// The concrete database instance carried by the spec.
    pub fn db_instance(&self) -> Instance {
        let mut db = Instance::new();
        for (rel, vals) in &self.facts {
            let t = Tuple(vals.iter().map(|v| Value::str(v.clone())).collect());
            db.insert(rel, t);
        }
        db
    }

    /// The line-oriented text form. Parseable by [`ServiceSpec::parse`];
    /// this is what shrunk repros print as.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("home {}", self.home));
        for (r, a) in &self.db_rels {
            line(format!("db {r} {a}"));
        }
        for s in &self.state_props {
            line(format!("stateprop {s}"));
        }
        for (r, a) in &self.state_rels {
            line(format!("state {r} {a}"));
        }
        for s in &self.input_props {
            line(format!("inputprop {s}"));
        }
        for (r, a) in &self.input_rels {
            line(format!("input {r} {a}"));
        }
        for p in &self.pages {
            line(format!("page {}", p.name));
            for s in &p.solicits {
                line(format!("  solicit {s}"));
            }
            for r in &p.input_rules {
                line(format!("  options {}", r.render()));
            }
            for r in &p.inserts {
                line(format!("  insert {}", r.render()));
            }
            for r in &p.deletes {
                line(format!("  delete {}", r.render()));
            }
            for (t, g) in &p.targets {
                line(format!("  goto {t} when {g}"));
            }
        }
        for (rel, vals) in &self.facts {
            line(format!("fact {} {}", rel, vals.join(" ")));
        }
        line(format!("property {}", self.property));
        out
    }

    /// Parses the text form back into a spec. Inverse of
    /// [`ServiceSpec::to_source`] up to whitespace.
    pub fn parse(src: &str) -> Result<ServiceSpec, String> {
        let mut spec = ServiceSpec::default();
        for (n, raw) in src.lines().enumerate() {
            let lineno = n + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
            let rest = rest.trim();
            let err = |m: &str| Err(format!("line {lineno}: {m}: `{raw}`"));
            match kw {
                "home" => spec.home = rest.to_string(),
                "db" | "state" | "input" => {
                    let Some((name, arity)) = rest.rsplit_once(' ') else {
                        return err("expected `<name> <arity>`");
                    };
                    let Ok(a) = arity.trim().parse::<usize>() else {
                        return err("bad arity");
                    };
                    let entry = (name.trim().to_string(), a);
                    match kw {
                        "db" => spec.db_rels.push(entry),
                        "state" => spec.state_rels.push(entry),
                        _ => spec.input_rels.push(entry),
                    }
                }
                "stateprop" => spec.state_props.push(rest.to_string()),
                "inputprop" => spec.input_props.push(rest.to_string()),
                "page" => spec.pages.push(PageSpec {
                    name: rest.to_string(),
                    ..PageSpec::default()
                }),
                "solicit" | "options" | "insert" | "delete" | "goto" => {
                    let Some(page) = spec.pages.last_mut() else {
                        return err("rule before any `page`");
                    };
                    match kw {
                        "solicit" => page.solicits.push(rest.to_string()),
                        "goto" => {
                            let Some((t, g)) = rest.split_once(" when ") else {
                                return err("expected `goto <page> when <guard>`");
                            };
                            page.targets
                                .push((t.trim().to_string(), g.trim().to_string()));
                        }
                        _ => {
                            let Some(rule) = RuleSpec::parse(rest) else {
                                return err("bad rule");
                            };
                            match kw {
                                "options" => page.input_rules.push(rule),
                                "insert" => page.inserts.push(rule),
                                _ => page.deletes.push(rule),
                            }
                        }
                    }
                }
                "fact" => {
                    let mut parts = rest.split_whitespace();
                    let Some(rel) = parts.next() else {
                        return err("expected `fact <rel> <values...>`");
                    };
                    spec.facts
                        .push((rel.to_string(), parts.map(str::to_string).collect()));
                }
                "property" => spec.property = rest.to_string(),
                _ => return err("unknown keyword"),
            }
        }
        if spec.home.is_empty() {
            return Err("missing `home` line".into());
        }
        if spec.property.is_empty() {
            return Err("missing `property` line".into());
        }
        Ok(spec)
    }
}

/// Replaces whole identifier tokens of `src` according to `map`. Used by
/// the renaming metamorphosis: bodies are source text, so renaming a
/// variable is a token-level substitution.
pub fn rename_idents(src: &str, map: &dyn Fn(&str) -> Option<String>) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let mut end = start + c.len_utf8();
            while let Some(&(i, d)) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    end = i + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let ident = &src[start..end];
            match map(ident) {
                Some(repl) => out.push_str(&repl),
                None => out.push_str(ident),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn picker_spec() -> ServiceSpec {
        ServiceSpec {
            home: "P0".into(),
            db_rels: vec![("r0".into(), 1)],
            state_props: vec!["s0".into()],
            state_rels: vec![("st".into(), 1)],
            input_props: vec!["g0".into()],
            input_rels: vec![("pick".into(), 1)],
            pages: vec![
                PageSpec {
                    name: "P0".into(),
                    solicits: vec!["g0".into()],
                    input_rules: vec![RuleSpec {
                        rel: "pick".into(),
                        vars: vec!["y".into()],
                        body: "r0(y)".into(),
                    }],
                    inserts: vec![
                        RuleSpec {
                            rel: "st".into(),
                            vars: vec!["y".into()],
                            body: "pick(y)".into(),
                        },
                        RuleSpec {
                            rel: "s0".into(),
                            vars: vec![],
                            body: "g0".into(),
                        },
                    ],
                    deletes: vec![RuleSpec {
                        rel: "st".into(),
                        vars: vec!["y".into()],
                        body: "st(y) & !pick(y)".into(),
                    }],
                    targets: vec![("P1".into(), "g0".into())],
                },
                PageSpec {
                    name: "P1".into(),
                    solicits: vec!["g0".into()],
                    targets: vec![("P0".into(), "g0".into())],
                    ..PageSpec::default()
                },
            ],
            facts: vec![
                ("r0".into(), vec!["a".into()]),
                ("r0".into(), vec!["b".into()]),
            ],
            property: "G (P0 | P1)".into(),
        }
    }

    #[test]
    fn source_round_trips() {
        let spec = picker_spec();
        let text = spec.to_source();
        let back = ServiceSpec::parse(&text).expect("parses");
        assert_eq!(back, spec);
        // And the text form is stable under a second round trip.
        assert_eq!(back.to_source(), text);
    }

    #[test]
    fn builds_a_real_service_with_db() {
        let spec = picker_spec();
        let (service, _sources) = spec.build().expect("valid");
        assert_eq!(service.home, "P0");
        let db = spec.db_instance();
        assert_eq!(db.active_domain().len(), 2);
    }

    #[test]
    fn parse_rejects_garbage_with_line_blame() {
        let err = ServiceSpec::parse("home P\nfrobnicate Q\nproperty G P").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = ServiceSpec::parse("solicit g0").unwrap_err();
        assert!(err.contains("before any `page`"), "{err}");
        assert!(ServiceSpec::parse("home P\n").is_err(), "missing property");
    }

    #[test]
    fn rename_is_token_level() {
        let renamed = rename_idents("pick(y) & !picky & y = x_y", &|id| match id {
            "y" => Some("w".into()),
            _ => None,
        });
        assert_eq!(renamed, "pick(w) & !picky & w = x_y");
    }
}
