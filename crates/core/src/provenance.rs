//! Source provenance for built services.
//!
//! [`crate::builder::ServiceBuilder`] parses rule bodies from text; this
//! module keeps that text (and the parser's [`SpanTable`]) around, keyed
//! by `(page, rule_label)` — the same labels
//! [`crate::classify::input_bounded_violations`] tags violations with
//! (`Options_<rel>`, `+<rel>`, `-<rel>`, the action relation name,
//! `target <page>`). Diagnostics can then point back into the exact rule
//! text a formula came from, without the `Service` itself (or its
//! fingerprint) carrying any source information.

use std::collections::BTreeMap;

use wave_logic::span::{Span, SpanTable};

/// The source text of one rule body plus the spans of its parsed nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleSource {
    /// The rule body exactly as handed to the builder.
    pub text: String,
    /// Byte spans of atoms, equalities and quantifiers within `text`.
    pub spans: SpanTable,
}

impl RuleSource {
    /// The source text a span covers.
    pub fn snippet(&self, span: Span) -> &str {
        span.snippet(&self.text)
    }
}

/// All rule sources of a service, keyed by `(page, rule_label)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceSources {
    rules: BTreeMap<(String, String), RuleSource>,
}

impl ServiceSources {
    /// An empty source map.
    pub fn new() -> ServiceSources {
        ServiceSources::default()
    }

    /// Records the source of one rule. Re-recording the same key keeps
    /// the latest text (matching builder semantics, where a later call
    /// overwrites an insert/delete body).
    pub fn record(&mut self, page: &str, rule: &str, text: &str, spans: SpanTable) {
        self.rules.insert(
            (page.to_string(), rule.to_string()),
            RuleSource {
                text: text.to_string(),
                spans,
            },
        );
    }

    /// Looks up the source of `(page, rule_label)`.
    pub fn rule(&self, page: &str, rule: &str) -> Option<&RuleSource> {
        self.rules.get(&(page.to_string(), rule.to_string()))
    }

    /// Iterates over `((page, rule_label), source)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &RuleSource)> {
        self.rules.iter()
    }

    /// Number of recorded rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut s = ServiceSources::new();
        s.record("HP", "+logged_in", "user(name, password)", SpanTable::new());
        assert_eq!(s.len(), 1);
        let r = s.rule("HP", "+logged_in").unwrap();
        assert_eq!(r.text, "user(name, password)");
        assert!(s.rule("HP", "-logged_in").is_none());
        // re-recording overwrites
        s.record("HP", "+logged_in", "true", SpanTable::new());
        assert_eq!(s.rule("HP", "+logged_in").unwrap().text, "true");
        assert_eq!(s.len(), 1);
    }
}
