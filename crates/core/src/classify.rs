//! Syntactic classification into the paper's decidable classes.
//!
//! * **Input-bounded** services (§3): state/action/target rules use only
//!   input-bounded quantification; input rules are ∃FO with ground state
//!   atoms. Verification of input-bounded LTL-FO properties is decidable
//!   (Theorem 3.5) and PSPACE-complete for fixed arity.
//! * **Propositional** services (§4, Theorem 4.4): input-bounded, all
//!   states and actions propositional, and no `prev` atoms. CTL(\*)
//!   verification decidable.
//! * **Fully propositional** services (Theorem 4.6): everything
//!   propositional, no database access. CTL(\*) verification in PSPACE.
//! * **Input-driven search** services (Definition 4.7): a single unary
//!   input navigating a database graph `R_I`, filtered by quantifier-free
//!   conditions; CTL verification in EXPTIME (Theorem 4.9).

use std::collections::BTreeMap;
use std::fmt;

use wave_logic::bounded::{check_input_bounded, check_input_rule, BoundedError};
use wave_logic::formula::{Formula, Term};
use wave_logic::schema::{ConstKind, RelKind};

use crate::service::Service;

/// The decidable class a service falls into (most restrictive first).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceClass {
    /// Everything propositional, no database (Theorem 4.6).
    FullyPropositional,
    /// Propositional states/actions, no prev atoms (Theorem 4.4).
    Propositional,
    /// Input-bounded (Theorem 3.5).
    InputBounded,
    /// Outside the decidable classes — verification is undecidable in
    /// general (Theorems 3.7–3.9, 4.2).
    Unrestricted,
}

impl ServiceClass {
    /// Stable machine-readable name, used on the wire and in JSON
    /// diagnostics (snake_case, never localized).
    pub fn wire_name(&self) -> &'static str {
        match self {
            ServiceClass::FullyPropositional => "fully_propositional",
            ServiceClass::Propositional => "propositional",
            ServiceClass::InputBounded => "input_bounded",
            ServiceClass::Unrestricted => "unrestricted",
        }
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceClass::FullyPropositional => "fully propositional",
            ServiceClass::Propositional => "propositional",
            ServiceClass::InputBounded => "input-bounded",
            ServiceClass::Unrestricted => "unrestricted",
        };
        f.write_str(s)
    }
}

/// Full classification report.
#[derive(Clone, Debug)]
pub struct ServiceClassification {
    /// Violations of input-boundedness, tagged `(page, rule)`.
    pub bounded_violations: Vec<(String, String, BoundedError)>,
    /// Whether all states and actions are propositional and no rule uses a
    /// `prev` atom.
    pub propositional: bool,
    /// Whether additionally inputs are propositional, no database relation
    /// or constant is used, and there are no input constants.
    pub fully_propositional: bool,
}

impl ServiceClassification {
    /// The most restrictive class the service belongs to.
    pub fn class(&self) -> ServiceClass {
        if !self.bounded_violations.is_empty() {
            return ServiceClass::Unrestricted;
        }
        if self.fully_propositional {
            ServiceClass::FullyPropositional
        } else if self.propositional {
            ServiceClass::Propositional
        } else {
            ServiceClass::InputBounded
        }
    }
}

/// Classifies a service.
pub fn classify(service: &Service) -> ServiceClassification {
    let bounded_violations = input_bounded_violations(service);
    let propositional = is_propositional(service);
    let fully_propositional = propositional && is_fully_propositional(service);
    ServiceClassification {
        bounded_violations,
        propositional,
        fully_propositional,
    }
}

/// All input-boundedness violations, tagged with page and rule.
pub fn input_bounded_violations(service: &Service) -> Vec<(String, String, BoundedError)> {
    let mut out = Vec::new();
    for (pname, page) in &service.pages {
        for r in &page.input_rules {
            if let Err(e) = check_input_rule(&r.body, &service.schema) {
                out.push((pname.clone(), format!("Options_{}", r.relation), e));
            }
        }
        for r in &page.state_rules {
            for (tag, body) in [("+", &r.insert), ("-", &r.delete)] {
                if let Some(b) = body {
                    if let Err(e) = check_input_bounded(b, &service.schema) {
                        out.push((pname.clone(), format!("{}{}", tag, r.relation), e));
                    }
                }
            }
        }
        for r in &page.action_rules {
            if let Err(e) = check_input_bounded(&r.body, &service.schema) {
                out.push((pname.clone(), r.relation.clone(), e));
            }
        }
        for r in &page.target_rules {
            if let Err(e) = check_input_bounded(&r.body, &service.schema) {
                out.push((pname.clone(), format!("target {}", r.target), e));
            }
        }
    }
    out
}

/// Propositional (Theorem 4.4): every state and action relation has arity
/// 0, and no rule mentions a `prev` atom.
pub fn is_propositional(service: &Service) -> bool {
    let schema = &service.schema;
    if schema
        .relations()
        .any(|r| r.kind.is_state_or_action() && r.arity > 0)
    {
        return false;
    }
    for page in service.pages.values() {
        for (body, _) in page.all_bodies() {
            for (rel, _) in body.relations_used() {
                if let Some(r) = schema.relation(&rel) {
                    if r.kind == RelKind::PrevInput {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Fully propositional (Theorem 4.6): inputs, states and actions all
/// propositional; rules use no database relation; no constants at all.
pub fn is_fully_propositional(service: &Service) -> bool {
    let schema = &service.schema;
    if schema
        .relations()
        .any(|r| matches!(r.kind, RelKind::Input | RelKind::State | RelKind::Action) && r.arity > 0)
    {
        return false;
    }
    if schema.constants().next().is_some() {
        return false;
    }
    for page in service.pages.values() {
        for (body, _) in page.all_bodies() {
            for (rel, _) in body.relations_used() {
                if let Some(r) = schema.relation(&rel) {
                    if matches!(r.kind, RelKind::Database | RelKind::PrevInput) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// The recognized shape of a Web service with input-driven search
/// (Definition 4.7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputDrivenShape {
    /// The single unary input relation `I`.
    pub input_rel: String,
    /// The designated binary database relation `R_I`.
    pub search_rel: String,
    /// The seed constant `i0`.
    pub seed_const: String,
    /// The `not-start` state proposition.
    pub not_start: String,
    /// Per page: the quantifier-free filter `φ(y)` over `D ∪ S`.
    pub filters: BTreeMap<String, Formula>,
}

/// Recognizes the Definition 4.7 shape, or explains why it does not match.
pub fn input_driven_shape(service: &Service) -> Result<InputDrivenShape, String> {
    let schema = &service.schema;
    // One unary input relation, no input constants.
    let inputs: Vec<_> = schema.relations_of(RelKind::Input).collect();
    let [input] = inputs.as_slice() else {
        return Err(format!(
            "expected exactly one input relation, found {}",
            inputs.len()
        ));
    };
    if input.arity != 1 {
        return Err(format!("input `{}` must be unary", input.name));
    }
    let input_rel = input.name.clone();
    if schema.input_constants().next().is_some() {
        return Err("input constants are not allowed".into());
    }
    // States propositional, including not_start.
    if schema.relations_of(RelKind::State).any(|r| r.arity > 0) {
        return Err("state relations must be propositional".into());
    }
    if schema.relations_of(RelKind::Action).any(|r| r.arity > 0) {
        return Err("action relations must be propositional".into());
    }
    let not_start = "not_start".to_string();
    if schema.relation(&not_start).map(|r| r.kind) != Some(RelKind::State) {
        return Err("missing `not_start` state proposition".into());
    }

    let mut search_rel: Option<String> = None;
    let mut seed_const: Option<String> = None;
    let mut filters = BTreeMap::new();

    for (pname, page) in &service.pages {
        // The not_start flip rule must be present on every page.
        let flip_ok = page.state_rules.iter().any(|r| {
            r.relation == not_start
                && r.vars.is_empty()
                && r.insert == Some(Formula::not(Formula::prop(&not_start)))
        });
        if !flip_ok {
            return Err(format!(
                "page `{pname}` lacks the not_start ← ¬not_start rule"
            ));
        }
        let Some(rule) = page.input_rule(&input_rel) else {
            return Err(format!("page `{pname}` lacks the Options_{input_rel} rule"));
        };
        let y = rule.vars[0].clone();
        let (rel, cst, filter) = match_option_rule(&rule.body, &y, &input_rel, &not_start)
            .ok_or_else(|| format!("page `{pname}`: Options rule does not match Def. 4.7"))?;
        // R_I must be a binary database relation; i0 a database constant.
        match schema.relation(&rel) {
            Some(r) if r.kind == RelKind::Database && r.arity == 2 => {}
            _ => return Err(format!("`{rel}` is not a binary database relation")),
        }
        if schema.constant(&cst) != Some(ConstKind::Database) {
            return Err(format!("`{cst}` is not a database constant"));
        }
        if let Some(prev) = &search_rel {
            if prev != &rel {
                return Err("pages disagree on the search relation R_I".into());
            }
        }
        if let Some(prev) = &seed_const {
            if prev != &cst {
                return Err("pages disagree on the seed constant i0".into());
            }
        }
        // Filter must be quantifier-free over D ∪ S.
        if !filter.is_quantifier_free() {
            return Err(format!("page `{pname}`: filter must be quantifier-free"));
        }
        for (r, _) in filter.relations_used() {
            match schema.relation(&r).map(|x| x.kind) {
                Some(RelKind::Database) | Some(RelKind::State) => {}
                _ => {
                    return Err(format!(
                        "page `{pname}`: filter may only use database/state relations, got `{r}`"
                    ))
                }
            }
        }
        filters.insert(pname.clone(), filter);
        search_rel = Some(rel);
        seed_const = Some(cst);
    }

    Ok(InputDrivenShape {
        input_rel,
        search_rel: search_rel.ok_or("no pages")?,
        seed_const: seed_const.ok_or("no pages")?,
        not_start,
        filters,
    })
}

/// Matches `(¬not_start ∧ y = i0) ∨ (not_start ∧ ∃x(prev_I(x) ∧ R_I(x,y)) ∧ φ(y))`,
/// tolerating conjunct order. Returns `(R_I, i0, φ)`.
fn match_option_rule(
    body: &Formula,
    y: &str,
    input_rel: &str,
    not_start: &str,
) -> Option<(String, String, Formula)> {
    let Formula::Or(disjuncts) = body else {
        return None;
    };
    let [d1, d2] = disjuncts.as_slice() else {
        return None;
    };

    // Identify the seed disjunct vs the navigation disjunct.
    let (seed, nav) = if conjuncts(d1).iter().any(|f| is_neg_prop(f, not_start)) {
        (d1, d2)
    } else {
        (d2, d1)
    };

    // Seed: ¬not_start ∧ y = i0
    let seed_parts = conjuncts(seed);
    let mut i0 = None;
    let mut saw_neg = false;
    for p in &seed_parts {
        if is_neg_prop(p, not_start) {
            saw_neg = true;
        } else if let Formula::Eq(a, b) = p {
            match (a, b) {
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) if v == y => {
                    i0 = Some(c.clone());
                }
                _ => return None,
            }
        } else {
            return None;
        }
    }
    if !saw_neg {
        return None;
    }
    let i0 = i0?;

    // Navigation: not_start ∧ ∃x(prev_I(x) ∧ R_I(x,y)) ∧ φ(y)
    let nav_parts = conjuncts(nav);
    let mut saw_pos = false;
    let mut search = None;
    let mut filter_parts = Vec::new();
    let prev_rel = wave_logic::schema::prev_name(input_rel);
    for p in &nav_parts {
        if **p == Formula::prop(not_start) {
            saw_pos = true;
        } else if let Formula::Exists(vars, inner) = p {
            let [x] = vars.as_slice() else { return None };
            let inner_parts = conjuncts(inner);
            let mut saw_prev = false;
            let mut rel_name = None;
            for ip in &inner_parts {
                if let Formula::Rel { name, args } = ip {
                    if name == &prev_rel {
                        if args.len() == 1 && args[0] == Term::Var(x.clone()) {
                            saw_prev = true;
                            continue;
                        }
                        return None;
                    }
                    if args.len() == 2
                        && args[0] == Term::Var(x.clone())
                        && args[1] == Term::Var(y.to_string())
                    {
                        rel_name = Some(name.clone());
                        continue;
                    }
                }
                return None;
            }
            if !saw_prev {
                return None;
            }
            search = rel_name;
        } else {
            filter_parts.push((*p).clone());
        }
    }
    if !saw_pos {
        return None;
    }
    let search = search?;
    Some((search, i0, Formula::and(filter_parts)))
}

fn conjuncts(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    }
}

fn is_neg_prop(f: &Formula, name: &str) -> bool {
    matches!(f, Formula::Not(inner) if **inner == Formula::prop(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ServiceBuilder;

    /// A miniature Example 4.8-style input-driven search service.
    fn hierarchy_service() -> Service {
        let mut b = ServiceBuilder::new("SP");
        b.database_relation("cat_graph", 2)
            .database_relation("in_stock", 1)
            .database_constant("i0")
            .state_prop("not_start")
            .state_prop("new_mode")
            .input_relation("pick", 1)
            .page("SP")
            .input_rule(
                "pick",
                &["y"],
                "(!not_start & y = i0) | (not_start & (exists x . (prev_pick(x) & cat_graph(x, y))) & in_stock(y))",
            )
            .insert_rule("not_start", &[], "!not_start")
            .target("SP", "exists y . pick(y)");
        b.build().expect("valid service")
    }

    #[test]
    fn classify_input_driven() {
        let s = hierarchy_service();
        let shape = input_driven_shape(&s).expect("shape should match");
        assert_eq!(shape.input_rel, "pick");
        assert_eq!(shape.search_rel, "cat_graph");
        assert_eq!(shape.seed_const, "i0");
        assert_eq!(
            shape.filters["SP"],
            Formula::rel("in_stock", vec![Term::var("y")])
        );
    }

    #[test]
    fn input_driven_rejects_without_flip_rule() {
        let mut s = hierarchy_service();
        s.pages.get_mut("SP").unwrap().state_rules.clear();
        assert!(input_driven_shape(&s).is_err());
    }

    #[test]
    fn input_driven_rejects_quantified_filter() {
        let mut b = ServiceBuilder::new("SP");
        b.database_relation("g", 2)
            .database_relation("u", 1)
            .database_constant("i0")
            .state_prop("not_start")
            .input_relation("pick", 1)
            .page("SP")
            .input_rule(
                "pick",
                &["y"],
                "(!not_start & y = i0) | (not_start & (exists x . (prev_pick(x) & g(x, y))) & (exists z . u(z)))",
            )
            .insert_rule("not_start", &[], "!not_start");
        let s = b.build().unwrap();
        assert!(input_driven_shape(&s).is_err());
    }

    #[test]
    fn propositional_classification() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .state_prop("s")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], r#"go & d("special")"#);
        let s = b.build().unwrap();
        let c = classify(&s);
        assert!(c.propositional);
        assert!(
            !c.fully_propositional,
            "a database atom disqualifies Thm 4.6"
        );
        assert_eq!(c.class(), ServiceClass::Propositional);
    }

    #[test]
    fn fully_propositional_classification() {
        let mut b = ServiceBuilder::new("P");
        b.state_prop("s")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], "go");
        let s = b.build().unwrap();
        let c = classify(&s);
        assert!(c.fully_propositional);
        assert_eq!(c.class(), ServiceClass::FullyPropositional);
    }

    #[test]
    fn unbounded_rule_detected() {
        let mut b = ServiceBuilder::new("P");
        b.database_relation("d", 1)
            .state_prop("s")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("s", &[], "exists x . d(x)"); // unguarded quantifier
        let s = b.build().unwrap();
        let c = classify(&s);
        assert!(!c.bounded_violations.is_empty());
        assert_eq!(c.class(), ServiceClass::Unrestricted);
    }

    #[test]
    fn prev_atom_breaks_propositionality() {
        let mut b = ServiceBuilder::new("P");
        b.state_prop("s")
            .input_relation("pick", 1)
            .database_relation("d", 1)
            .page("P")
            .input_rule("pick", &["y"], "d(y)")
            .insert_rule("s", &[], "exists x . (prev_pick(x) & d(x))");
        let s = b.build().unwrap();
        let c = classify(&s);
        assert!(!c.propositional);
        assert!(c.bounded_violations.is_empty());
        assert_eq!(c.class(), ServiceClass::InputBounded);
    }
}
