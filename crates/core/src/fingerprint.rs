//! Canonical fingerprints for the Web-service model.
//!
//! Extends `wave-logic`'s [`Canonical`] trait to rules, pages and whole
//! services, so `wave-serve` can key its result cache by *content*:
//! structurally identical services collide regardless of how they were
//! constructed.
//!
//! **Order invariance.** A page's rule lists (`input_rules`,
//! `state_rules`, `action_rules`, `target_rules`) are `Vec`s for
//! ergonomics, but their order is semantically irrelevant: there is at
//! most one input/state rule per relation, action rules for distinct
//! relations are independent, and target-rule nondeterminism (several
//! true targets → error page, Definition 2.3) is a property of the *set*
//! of rules. They are therefore hashed with
//! [`canon_unordered`], so two services differing
//! only in rule order fingerprint identically. Page maps and schemas are
//! `BTreeMap`-backed and canonical by construction.

use wave_logic::fingerprint::{canon_unordered, Canonical, Fnv128};

use crate::page::Page;
use crate::rules::{ActionRule, InputRule, StateRule, TargetRule};
use crate::service::Service;

impl Canonical for InputRule {
    fn canon(&self, h: &mut Fnv128) {
        h.write_u8(0x60);
        h.write_str(&self.relation);
        h.write_len(self.vars.len());
        for v in &self.vars {
            h.write_str(v);
        }
        self.body.canon(h);
    }
}

impl Canonical for StateRule {
    fn canon(&self, h: &mut Fnv128) {
        h.write_u8(0x61);
        h.write_str(&self.relation);
        h.write_len(self.vars.len());
        for v in &self.vars {
            h.write_str(v);
        }
        match &self.insert {
            None => h.write_u8(0x00),
            Some(f) => {
                h.write_u8(0x01);
                f.canon(h);
            }
        }
        match &self.delete {
            None => h.write_u8(0x00),
            Some(f) => {
                h.write_u8(0x01);
                f.canon(h);
            }
        }
    }
}

impl Canonical for ActionRule {
    fn canon(&self, h: &mut Fnv128) {
        h.write_u8(0x62);
        h.write_str(&self.relation);
        h.write_len(self.vars.len());
        for v in &self.vars {
            h.write_str(v);
        }
        self.body.canon(h);
    }
}

impl Canonical for TargetRule {
    fn canon(&self, h: &mut Fnv128) {
        h.write_u8(0x63);
        h.write_str(&self.target);
        self.body.canon(h);
    }
}

impl Canonical for Page {
    fn canon(&self, h: &mut Fnv128) {
        h.write_u8(0x64);
        h.write_str(&self.name);
        // Input/constant lists: order is presentation only.
        let mut inputs: Vec<&String> = self.inputs.iter().collect();
        inputs.sort();
        h.write_len(inputs.len());
        for i in inputs {
            h.write_str(i);
        }
        let mut consts: Vec<&String> = self.input_constants.iter().collect();
        consts.sort();
        h.write_len(consts.len());
        for c in consts {
            h.write_str(c);
        }
        canon_unordered(&self.input_rules, h);
        canon_unordered(&self.state_rules, h);
        canon_unordered(&self.action_rules, h);
        canon_unordered(&self.target_rules, h);
    }
}

impl Canonical for Service {
    fn canon(&self, h: &mut Fnv128) {
        h.write_u8(0x65);
        self.schema.canon(h);
        h.write_len(self.pages.len());
        for page in self.pages.values() {
            page.canon(h);
        }
        h.write_str(&self.home);
        h.write_str(&self.error_page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_logic::Formula;

    fn demo_page() -> Page {
        let mut p = Page::new("P");
        p.inputs = vec!["button".into(), "pick".into()];
        p.state_rules = vec![
            StateRule::insert_only("s1", vec![], Formula::prop("a")),
            StateRule::insert_only("s2", vec![], Formula::prop("b")),
        ];
        p.target_rules = vec![
            TargetRule {
                target: "Q".into(),
                body: Formula::prop("a"),
            },
            TargetRule {
                target: "R".into(),
                body: Formula::prop("b"),
            },
        ];
        p
    }

    #[test]
    fn page_fingerprint_invariant_under_rule_reordering() {
        let a = demo_page();
        let mut b = demo_page();
        b.state_rules.reverse();
        b.target_rules.reverse();
        b.inputs.reverse();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn page_fingerprint_sensitive_to_rule_content() {
        let a = demo_page();
        let mut b = demo_page();
        b.state_rules[0].insert = Some(Formula::prop("zzz"));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
