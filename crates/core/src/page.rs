//! Web page schemas (Definition 2.1).
//!
//! A page schema `W = ⟨I_W, A_W, T_W, R_W⟩` lists the inputs the page
//! solicits (relational inputs plus input constants), the actions it can
//! take, its possible target pages, and the rules. We keep the rules
//! grouped by kind; `T_W` is implicit in the target rules.

use std::collections::BTreeSet;

use wave_logic::formula::Formula;

use crate::rules::{ActionRule, InputRule, StateRule, TargetRule};

/// A Web page schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Page {
    /// The page name (also registered as an arity-0 `Page` relation).
    pub name: String,
    /// Relational inputs solicited by this page (`I_W` minus constants).
    pub inputs: Vec<String>,
    /// Input constants solicited by this page (e.g. `name`, `password`).
    pub input_constants: Vec<String>,
    /// Input-option rules, one per relational input of positive arity.
    pub input_rules: Vec<InputRule>,
    /// State update rules.
    pub state_rules: Vec<StateRule>,
    /// Action rules.
    pub action_rules: Vec<ActionRule>,
    /// Target rules.
    pub target_rules: Vec<TargetRule>,
}

impl Page {
    /// Creates an empty page schema.
    pub fn new(name: impl Into<String>) -> Self {
        Page {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The target set `T_W` (distinct pages named by target rules).
    pub fn targets(&self) -> BTreeSet<&str> {
        self.target_rules
            .iter()
            .map(|r| r.target.as_str())
            .collect()
    }

    /// The input rule for a given input relation, if any.
    pub fn input_rule(&self, relation: &str) -> Option<&InputRule> {
        self.input_rules.iter().find(|r| r.relation == relation)
    }

    /// The state rule for a given state relation, if any.
    pub fn state_rule(&self, relation: &str) -> Option<&StateRule> {
        self.state_rules.iter().find(|r| r.relation == relation)
    }

    /// Iterates over every rule body on this page together with the rule's
    /// head variables (empty for target rules). Used by validation and the
    /// classifiers.
    pub fn all_bodies(&self) -> impl Iterator<Item = (&Formula, &[String])> {
        let inputs = self
            .input_rules
            .iter()
            .map(|r| (&r.body, r.vars.as_slice()));
        let states = self.state_rules.iter().flat_map(|r| {
            r.insert
                .iter()
                .chain(r.delete.iter())
                .map(move |b| (b, r.vars.as_slice()))
        });
        let actions = self
            .action_rules
            .iter()
            .map(|r| (&r.body, r.vars.as_slice()));
        let targets = self
            .target_rules
            .iter()
            .map(|r| (&r.body, &[] as &[String]));
        inputs.chain(states).chain(actions).chain(targets)
    }

    /// All named constants used by any rule of this page.
    pub fn constants_used(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (body, _) in self.all_bodies() {
            out.extend(body.constants_used());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_logic::formula::Term;

    #[test]
    fn targets_and_lookup() {
        let mut p = Page::new("HP");
        p.inputs.push("button".into());
        p.input_rules.push(InputRule {
            relation: "button".into(),
            vars: vec!["x".into()],
            body: Formula::eq(Term::var("x"), Term::lit("login")),
        });
        p.target_rules.push(TargetRule {
            target: "CP".into(),
            body: Formula::True,
        });
        p.target_rules.push(TargetRule {
            target: "CP".into(),
            body: Formula::False,
        });
        p.target_rules.push(TargetRule {
            target: "MP".into(),
            body: Formula::False,
        });
        assert_eq!(p.targets(), BTreeSet::from(["CP", "MP"]));
        assert!(p.input_rule("button").is_some());
        assert!(p.input_rule("other").is_none());
        assert_eq!(p.all_bodies().count(), 4);
    }

    #[test]
    fn constants_collected_across_rules() {
        let mut p = Page::new("HP");
        p.state_rules.push(StateRule::insert_only(
            "error",
            vec![],
            Formula::not(Formula::rel(
                "user",
                vec![Term::cst("name"), Term::cst("password")],
            )),
        ));
        assert_eq!(
            p.constants_used(),
            BTreeSet::from(["name".to_string(), "password".to_string()])
        );
    }
}
