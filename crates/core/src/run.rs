//! Run semantics (Definition 2.3): the concrete interpreter.
//!
//! A run of a Web service over a fixed database is an infinite sequence of
//! configurations `σ_i = ⟨V_i, S_i, I_i, P_i, A_i⟩`. The input `I_i` is
//! the choice made *at page `V_i`*, so one step of the semantics splits
//! naturally into:
//!
//! 1. a **deterministic transition core** from `σ_i` — evaluate `V_i`'s
//!    target rules (ambiguity = error condition (iii)), compute `S_{i+1}`
//!    with conflict-no-op semantics, fire `A_{i+1}`, and set
//!    `P_{i+1} = I_i`;
//! 2. a **page entry** at `V_{i+1}` — the user provides the page's input
//!    constants (re-request = condition (ii)) and picks at most one tuple
//!    per input relation from the options; a rule formula mentioning a
//!    constant never provided marks condition (i). Conditions (i)/(ii)
//!    observed at `V_i` redirect the *next* transition to the error page,
//!    exactly as Definition 2.3 routes `V_{i+1} = W_err`.
//!
//! The interpreter is the ground truth the verifiers are tested against,
//! and the engine of the enumerative baseline verifier.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wave_logic::eval::{satisfying_tuples, EvalError};
use wave_logic::formula::Formula;
use wave_logic::instance::Instance;
use wave_logic::schema::{ConstKind, RelKind};
use wave_logic::value::{Tuple, Value};

use crate::page::Page;
use crate::service::Service;

/// One configuration of a run.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    /// The current Web page `V_i` (possibly the error page).
    pub page: String,
    /// Current state relations `S_i`.
    pub state: Instance,
    /// Current inputs `I_i` — the choice made at this page.
    pub input: Instance,
    /// Previous inputs `P_i` (the `prev_I` relations).
    pub prev: Instance,
    /// Current actions `A_i` (triggered at the previous step).
    pub action: Instance,
    /// Input constants provided so far (`γ_i`).
    pub provided: BTreeMap<String, Value>,
    /// Error conditions (i)/(ii) observed at this page: the next
    /// transition goes to the error page.
    pub err_pending: bool,
}

/// The user's move when entering a page.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InputChoice {
    /// Chosen tuple per relational input (omit a relation = empty input).
    pub tuples: BTreeMap<String, Tuple>,
    /// Truth value per propositional input (omit = false).
    pub props: BTreeMap<String, bool>,
    /// Values for the input constants this page solicits.
    pub constants: BTreeMap<String, Value>,
}

impl InputChoice {
    /// The empty move (no inputs, no constants).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a tuple choice.
    pub fn with_tuple(mut self, rel: impl Into<String>, t: Tuple) -> Self {
        self.tuples.insert(rel.into(), t);
        self
    }

    /// Adds a propositional choice.
    pub fn with_prop(mut self, rel: impl Into<String>, b: bool) -> Self {
        self.props.insert(rel.into(), b);
        self
    }

    /// Adds an input-constant value.
    pub fn with_constant(mut self, c: impl Into<String>, v: impl Into<Value>) -> Self {
        self.constants.insert(c.into(), v.into());
        self
    }
}

/// Ways a move can be *rejected* (as opposed to routed to the error page,
/// which is part of the semantics, not a failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepError {
    /// The chosen tuple is not among the page's options.
    ChoiceNotInOptions {
        /// Input relation.
        relation: String,
        /// The offending tuple.
        tuple: Tuple,
    },
    /// A chosen input relation is not an input of the page being entered.
    NotAPageInput(String),
    /// The page solicits a constant the choice does not provide.
    MissingConstant(String),
    /// Formula evaluation failed for a reason other than a missing input
    /// constant (those are error conditions, not failures).
    Eval(EvalError),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::ChoiceNotInOptions { relation, tuple } => {
                write!(f, "tuple {tuple} is not an option for `{relation}`")
            }
            StepError::NotAPageInput(r) => write!(f, "`{r}` is not an input of this page"),
            StepError::MissingConstant(c) => write!(f, "constant `{c}` not provided"),
            StepError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for StepError {}

/// Why a claimed run failed to replay under the concrete semantics.
///
/// Produced by [`Runner::replay_lasso`], which re-executes a purported
/// stem+cycle through the interpreter and demands every configuration be
/// *reproduced exactly* — the trust anchor for counterexamples reported
/// by the search-based verifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The replayed run is empty (a lasso needs a non-empty cycle).
    EmptyCycle,
    /// The first configuration is not on the service's home page.
    NotAtHome {
        /// The page the claimed run starts on.
        page: String,
    },
    /// The interpreter rejected the reconstructed move at some step.
    Rejected {
        /// Index into stem ++ cycle (the configuration being *entered*;
        /// `configs.len()` means the wrap-around back to the cycle
        /// start).
        step: usize,
        /// The interpreter's rejection.
        error: StepError,
    },
    /// The interpreter produced a different configuration at some step.
    Mismatch {
        /// Index into stem ++ cycle of the unreproduced configuration
        /// (`configs.len()` = the wrap-around back to the cycle start).
        step: usize,
        /// What the interpreter actually produced.
        got: Box<Config>,
        /// What the claimed run says.
        claimed: Box<Config>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyCycle => write!(f, "lasso has an empty cycle"),
            ReplayError::NotAtHome { page } => {
                write!(f, "run starts on `{page}`, not the home page")
            }
            ReplayError::Rejected { step, error } => {
                write!(f, "step {step}: interpreter rejected the move: {error}")
            }
            ReplayError::Mismatch { step, got, claimed } => write!(
                f,
                "step {step}: interpreter produced page `{}`, claimed `{}` \
                 (configurations differ)",
                got.page, claimed.page
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Reconstructs the user's move that must have produced `next`: its
/// inputs read back as tuple/prop choices, and the constants newly
/// provided relative to `before`.
pub fn choice_for(before: &BTreeMap<String, Value>, next: &Config) -> InputChoice {
    let mut choice = InputChoice::empty();
    for (rel, tuples) in next.input.relations() {
        for t in tuples {
            if t.arity() == 0 {
                choice.props.insert(rel.to_string(), true);
            } else {
                choice.tuples.insert(rel.to_string(), t.clone());
            }
        }
    }
    for (c, v) in &next.provided {
        if !before.contains_key(c) {
            choice.constants.insert(c.clone(), v.clone());
        }
    }
    choice
}

/// The deterministic part of one step: everything computed from `σ_i`
/// before the user acts at the next page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionCore {
    /// The next page (possibly the error page).
    pub page: String,
    /// `S_{i+1}`.
    pub state: Instance,
    /// `P_{i+1}` (= `I_i` for the inputs of `V_i`).
    pub prev: Instance,
    /// `A_{i+1}`.
    pub action: Instance,
}

/// Interprets a service over a fixed database.
pub struct Runner<'a> {
    service: &'a Service,
    db: &'a Instance,
}

impl<'a> Runner<'a> {
    /// Creates a runner for `service` over database `db`.
    pub fn new(service: &'a Service, db: &'a Instance) -> Self {
        Runner { service, db }
    }

    /// The service being interpreted.
    pub fn service(&self) -> &Service {
        self.service
    }

    /// The fixed database.
    pub fn database(&self) -> &Instance {
        self.db
    }

    /// Enters the home page with the user's first move, producing `σ_0`.
    pub fn initial(&self, choice: &InputChoice) -> Result<Config, StepError> {
        self.enter(
            &self.service.home.clone(),
            Instance::new(),
            Instance::new(),
            Instance::new(),
            BTreeMap::new(),
            choice,
        )
    }

    /// Whether a configuration sits on the error page.
    pub fn at_error(&self, cfg: &Config) -> bool {
        cfg.page == self.service.error_page
    }

    /// Computes the deterministic transition core from `σ_i`.
    pub fn transition_core(&self, cfg: &Config) -> Result<TransitionCore, StepError> {
        if self.at_error(cfg) || cfg.err_pending {
            return Ok(self.error_core());
        }
        let page = self
            .service
            .page(&cfg.page)
            .expect("non-error configurations sit on defined pages");
        let mut inst = self.db.clone();
        inst.absorb(&cfg.state);
        inst.absorb(&cfg.input);
        inst.absorb(&cfg.prev);
        for (c, v) in &cfg.provided {
            inst.set_constant(c.clone(), v.clone());
        }
        // Active-domain semantics with the database-theory proviso that
        // literals mentioned by the page's formulas are in the domain.
        let mut adom = inst.active_domain();
        for (body, _) in page.all_bodies() {
            adom.extend(body.literals_used());
        }

        // Targets — condition (iii) on ambiguity.
        let mut next_page: Option<String> = None;
        for rule in &page.target_rules {
            match wave_logic::eval::eval_closed_with_adom(&rule.body, &inst, &adom) {
                Ok(true) => {
                    if let Some(prev) = &next_page {
                        if prev != &rule.target {
                            return Ok(self.error_core());
                        }
                    } else {
                        next_page = Some(rule.target.clone());
                    }
                }
                Ok(false) => {}
                Err(EvalError::UnknownConstant(_)) => return Ok(self.error_core()),
                Err(e) => return Err(StepError::Eval(e)),
            }
        }
        let next_page = next_page.unwrap_or_else(|| cfg.page.clone());

        // State update with conflict-no-op semantics.
        let mut state = Instance::new();
        for rel in self.service.schema.relations_of(RelKind::State) {
            let rule = page.state_rule(&rel.name);
            let current: BTreeSet<Tuple> = cfg.state.tuples(&rel.name).cloned().collect();
            let (ins, del) = match rule {
                None => (BTreeSet::new(), BTreeSet::new()),
                Some(r) => {
                    let ins = match &r.insert {
                        Some(body) => self.rule_tuples(body, &r.vars, &inst, &adom)?,
                        None => BTreeSet::new(),
                    };
                    let del = match &r.delete {
                        Some(body) => self.rule_tuples(body, &r.vars, &inst, &adom)?,
                        None => BTreeSet::new(),
                    };
                    (ins, del)
                }
            };
            let mut next: BTreeSet<Tuple> = BTreeSet::new();
            for t in ins.difference(&del) {
                next.insert(t.clone());
            }
            for t in &current {
                let i = ins.contains(t);
                let d = del.contains(t);
                if (i && d) || (!i && !d) {
                    next.insert(t.clone());
                }
            }
            if !next.is_empty() {
                state.set_relation(rel.name.clone(), next);
            }
        }

        // Actions triggered at this step, visible at step i+1.
        let mut action = Instance::new();
        for r in &page.action_rules {
            let ts = self.rule_tuples(&r.body, &r.vars, &inst, &adom)?;
            for t in ts {
                action.insert(r.relation.clone(), t);
            }
        }

        // prev_I := I_i(I) for the inputs of this page.
        let mut prev = Instance::new();
        for rel in &page.inputs {
            if let Some(r) = self.service.schema.relation(rel) {
                if r.arity > 0 {
                    for t in cfg.input.tuples(rel) {
                        prev.insert(wave_logic::schema::prev_name(rel), t.clone());
                    }
                }
            }
        }

        Ok(TransitionCore {
            page: next_page,
            state,
            prev,
            action,
        })
    }

    fn error_core(&self) -> TransitionCore {
        TransitionCore {
            page: self.service.error_page.clone(),
            state: Instance::new(),
            prev: Instance::new(),
            action: Instance::new(),
        }
    }

    /// Performs one full step: transition core from `σ_i`, then entry at
    /// the next page with the user's move.
    pub fn step(&self, cfg: &Config, choice: &InputChoice) -> Result<Config, StepError> {
        let core = self.transition_core(cfg)?;
        self.enter(
            &core.page,
            core.state,
            core.prev,
            core.action,
            cfg.provided.clone(),
            choice,
        )
    }

    /// The input options a page would present on entry, given the carried
    /// state/prev and the constants provided *including* this page's new
    /// ones. A rule needing a still-missing constant yields an empty
    /// option set (the run is headed to the error page anyway).
    pub fn entry_options(
        &self,
        page: &Page,
        state: &Instance,
        prev: &Instance,
        provided: &BTreeMap<String, Value>,
    ) -> Result<BTreeMap<String, BTreeSet<Tuple>>, StepError> {
        let mut inst = self.db.clone();
        inst.absorb(state);
        inst.absorb(prev);
        for (c, v) in provided {
            inst.set_constant(c.clone(), v.clone());
        }
        let mut adom = inst.active_domain();
        for (body, _) in page.all_bodies() {
            adom.extend(body.literals_used());
        }
        let mut out = BTreeMap::new();
        for rule in &page.input_rules {
            match satisfying_tuples(&rule.body, &rule.vars, &inst, &adom) {
                Ok(tuples) => {
                    out.insert(rule.relation.clone(), tuples);
                }
                Err(EvalError::UnknownConstant(_)) => {
                    out.insert(rule.relation.clone(), BTreeSet::new());
                }
                Err(e) => return Err(StepError::Eval(e)),
            }
        }
        Ok(out)
    }

    /// Public page entry for the search-based verifiers: enumerating user
    /// moves requires entering a page with explicitly carried data.
    pub fn enter_page(
        &self,
        page_name: &str,
        state: &Instance,
        prev: &Instance,
        action: &Instance,
        provided: &BTreeMap<String, Value>,
        choice: &InputChoice,
    ) -> Result<Config, StepError> {
        self.enter(
            page_name,
            state.clone(),
            prev.clone(),
            action.clone(),
            provided.clone(),
            choice,
        )
    }

    /// Enters `page_name` with the carried data and the user's move.
    fn enter(
        &self,
        page_name: &str,
        state: Instance,
        prev: Instance,
        action: Instance,
        provided_before: BTreeMap<String, Value>,
        choice: &InputChoice,
    ) -> Result<Config, StepError> {
        if page_name == self.service.error_page {
            return Ok(Config {
                page: page_name.to_string(),
                state: Instance::new(),
                input: Instance::new(),
                prev: Instance::new(),
                action: Instance::new(),
                provided: provided_before,
                err_pending: false,
            });
        }
        let page = self
            .service
            .page(page_name)
            .expect("transitions only target defined pages");

        // Condition (ii): the page re-requests a provided constant. The
        // configuration still exists; the *next* transition errs.
        let rerequest = page
            .input_constants
            .iter()
            .any(|c| provided_before.contains_key(c));

        let mut provided = provided_before;
        if !rerequest {
            for c in &page.input_constants {
                match choice.constants.get(c) {
                    Some(v) => {
                        provided.insert(c.clone(), v.clone());
                    }
                    None => return Err(StepError::MissingConstant(c.clone())),
                }
            }
        }

        // Condition (i): a rule formula of this page uses an input
        // constant that is (still) unprovided.
        let missing = page.constants_used().into_iter().any(|c| {
            self.service.schema.constant(&c) == Some(ConstKind::Input) && !provided.contains_key(&c)
        });

        let options = self.entry_options(page, &state, &prev, &provided)?;
        let mut input = Instance::new();
        for (rel, tuple) in &choice.tuples {
            if !page.inputs.contains(rel) {
                return Err(StepError::NotAPageInput(rel.clone()));
            }
            let opts = options.get(rel).cloned().unwrap_or_default();
            if !opts.contains(tuple) {
                return Err(StepError::ChoiceNotInOptions {
                    relation: rel.clone(),
                    tuple: tuple.clone(),
                });
            }
            input.insert(rel.clone(), tuple.clone());
        }
        for (rel, b) in &choice.props {
            if !page.inputs.contains(rel) {
                return Err(StepError::NotAPageInput(rel.clone()));
            }
            if *b {
                input.set_prop(rel.clone(), true);
            }
        }

        Ok(Config {
            page: page_name.to_string(),
            state,
            input,
            prev,
            action,
            provided,
            err_pending: rerequest || missing,
        })
    }

    /// Re-executes one claimed step: reconstructs the user's move from
    /// `next` and demands the interpreter reproduce `next` exactly.
    pub fn replay_step(&self, cfg: &Config, next: &Config, step: usize) -> Result<(), ReplayError> {
        let choice = choice_for(&cfg.provided, next);
        let got = self
            .step(cfg, &choice)
            .map_err(|error| ReplayError::Rejected { step, error })?;
        if &got != next {
            return Err(ReplayError::Mismatch {
                step,
                got: Box::new(got),
                claimed: Box::new(next.clone()),
            });
        }
        Ok(())
    }

    /// Re-executes a claimed lasso `stem · cycle^ω` through the concrete
    /// run semantics: `σ_0` must be a genuine home-page entry, every
    /// consecutive pair a genuine step, and the cycle must close (the
    /// successor of the last cycle configuration is the cycle start).
    ///
    /// This is the replay oracle for counterexamples: a lasso that
    /// passes is, by Definition 2.3, a real run of the service.
    pub fn replay_lasso(&self, stem: &[Config], cycle: &[Config]) -> Result<(), ReplayError> {
        if cycle.is_empty() {
            return Err(ReplayError::EmptyCycle);
        }
        let configs: Vec<&Config> = stem.iter().chain(cycle.iter()).collect();
        let first = configs[0];
        // σ_0 is produced by entering the home page from nothing.
        if first.page != self.service.home {
            return Err(ReplayError::NotAtHome {
                page: first.page.clone(),
            });
        }
        let choice = choice_for(&BTreeMap::new(), first);
        let got = self
            .initial(&choice)
            .map_err(|error| ReplayError::Rejected { step: 0, error })?;
        if &got != first {
            return Err(ReplayError::Mismatch {
                step: 0,
                got: Box::new(got),
                claimed: Box::new(first.clone()),
            });
        }
        for i in 1..configs.len() {
            self.replay_step(configs[i - 1], configs[i], i)?;
        }
        // Wrap-around: the cycle must actually cycle.
        let last = configs[configs.len() - 1];
        self.replay_step(last, &cycle[0], configs.len())?;
        Ok(())
    }

    fn rule_tuples(
        &self,
        body: &Formula,
        vars: &[String],
        inst: &Instance,
        adom: &BTreeSet<Value>,
    ) -> Result<BTreeSet<Tuple>, StepError> {
        match satisfying_tuples(body, vars, inst, adom) {
            Ok(ts) => Ok(ts),
            // A missing input constant inside a state/action rule: the run
            // errs via condition (i) (err_pending); the rule contributes
            // nothing meanwhile.
            Err(EvalError::UnknownConstant(_)) => Ok(BTreeSet::new()),
            Err(e) => Err(StepError::Eval(e)),
        }
    }
}

impl Config {
    /// The *observation* of this configuration: the structure an LTL-FO
    /// property component is evaluated on — database, state, inputs,
    /// prev, actions, provided constants, and the current page as a true
    /// proposition (all other pages false by absence).
    pub fn observation(&self, db: &Instance) -> Instance {
        let mut inst = db.clone();
        inst.absorb(&self.state);
        inst.absorb(&self.input);
        inst.absorb(&self.prev);
        inst.absorb(&self.action);
        for (c, v) in &self.provided {
            inst.set_constant(c.clone(), v.clone());
        }
        inst.set_prop(self.page.clone(), true);
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;
    use crate::rules::{InputRule, StateRule, TargetRule};
    use wave_logic::formula::Term;
    use wave_logic::schema::Schema;
    use wave_logic::{inst, tuple};

    /// The Example 2.2 home page, miniaturized: login flow with user table.
    fn login_service() -> Service {
        let mut schema = Schema::new();
        schema.add_relation("user", 2, RelKind::Database).unwrap();
        schema.add_relation("button", 1, RelKind::Input).unwrap();
        schema.add_relation("error", 1, RelKind::State).unwrap();
        schema.add_relation("HP", 0, RelKind::Page).unwrap();
        schema.add_relation("CP", 0, RelKind::Page).unwrap();
        schema.add_relation("AP", 0, RelKind::Page).unwrap();
        schema.add_relation("MP", 0, RelKind::Page).unwrap();
        schema.add_constant("name", ConstKind::Input).unwrap();
        schema.add_constant("password", ConstKind::Input).unwrap();

        let mut hp = Page::new("HP");
        hp.inputs.push("button".into());
        hp.input_constants = vec!["name".into(), "password".into()];
        hp.input_rules.push(InputRule {
            relation: "button".into(),
            vars: vec!["x".into()],
            body: Formula::or([
                Formula::eq(Term::var("x"), Term::lit("login")),
                Formula::eq(Term::var("x"), Term::lit("register")),
                Formula::eq(Term::var("x"), Term::lit("clear")),
            ]),
        });
        hp.state_rules.push(StateRule::insert_only(
            "error",
            vec!["e".into()],
            Formula::and([
                Formula::eq(Term::var("e"), Term::lit("failed login")),
                Formula::not(Formula::rel(
                    "user",
                    vec![Term::cst("name"), Term::cst("password")],
                )),
                Formula::rel("button", vec![Term::lit("login")]),
            ]),
        ));
        let login_ok = Formula::and([
            Formula::rel("user", vec![Term::cst("name"), Term::cst("password")]),
            Formula::rel("button", vec![Term::lit("login")]),
        ]);
        hp.target_rules.push(TargetRule {
            target: "CP".into(),
            body: Formula::and([
                login_ok.clone(),
                Formula::neq(Term::cst("name"), Term::lit("Admin")),
            ]),
        });
        hp.target_rules.push(TargetRule {
            target: "AP".into(),
            body: Formula::and([
                login_ok.clone(),
                Formula::eq(Term::cst("name"), Term::lit("Admin")),
            ]),
        });
        hp.target_rules.push(TargetRule {
            target: "MP".into(),
            body: Formula::and([
                Formula::not(Formula::rel(
                    "user",
                    vec![Term::cst("name"), Term::cst("password")],
                )),
                Formula::rel("button", vec![Term::lit("login")]),
            ]),
        });

        let mut pages = BTreeMap::new();
        pages.insert("HP".to_string(), hp);
        for p in ["CP", "AP", "MP"] {
            pages.insert(p.to_string(), Page::new(p));
        }
        let s = Service {
            schema,
            pages,
            home: "HP".into(),
            error_page: "ERR".into(),
        };
        s.validate().expect("test service must validate");
        s
    }

    fn db() -> Instance {
        inst! {
            "user" => [tuple!["alice", "pw1"], tuple!["Admin", "root"]],
        }
    }

    fn login_as(name: &str, pw: &str) -> InputChoice {
        InputChoice::empty()
            .with_constant("name", name)
            .with_constant("password", pw)
            .with_tuple("button", tuple!["login"])
    }

    #[test]
    fn successful_login_reaches_customer_page() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "pw1")).unwrap();
        assert_eq!(cfg0.page, "HP");
        assert!(cfg0.input.contains("button", &tuple!["login"]));
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "CP");
        assert_eq!(cfg1.state.cardinality("error"), 0);
        // prev_button carries the click into σ_1
        assert!(cfg1.prev.contains("prev_button", &tuple!["login"]));
        assert_eq!(cfg1.provided.len(), 2);
    }

    #[test]
    fn admin_login_routes_to_admin_page() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("Admin", "root")).unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "AP");
    }

    #[test]
    fn failed_login_records_error_state_and_goes_to_message_page() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "wrong")).unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "MP");
        assert!(cfg1.state.contains("error", &tuple!["failed login"]));
    }

    #[test]
    fn empty_input_stays_on_page() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "alice")
                    .with_constant("password", "pw1"),
            )
            .unwrap();
        // No button: no target fires; next entry re-requests constants →
        // condition (ii) at σ_1, which dooms σ_2.
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "HP");
        assert!(cfg1.err_pending, "re-request of name/password");
        let cfg2 = r.step(&cfg1, &InputChoice::empty()).unwrap();
        assert_eq!(cfg2.page, "ERR");
        // and the error page loops forever
        let cfg3 = r.step(&cfg2, &InputChoice::empty()).unwrap();
        assert_eq!(cfg3.page, "ERR");
    }

    #[test]
    fn choice_outside_options_rejected() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let err = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "a")
                    .with_constant("password", "b")
                    .with_tuple("button", tuple!["hack"]),
            )
            .unwrap_err();
        assert!(matches!(err, StepError::ChoiceNotInOptions { .. }));
    }

    #[test]
    fn missing_constant_rejected() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let err = r.initial(&InputChoice::empty()).unwrap_err();
        assert!(matches!(err, StepError::MissingConstant(_)));
    }

    #[test]
    fn ambiguous_targets_route_to_error_page() {
        let mut s = login_service();
        let hp = s.pages.get_mut("HP").unwrap();
        hp.target_rules[0].body = Formula::rel("button", vec![Term::lit("login")]);
        hp.target_rules[2].body = Formula::rel("button", vec![Term::lit("login")]);
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "pw1")).unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "ERR");
    }

    #[test]
    fn duplicate_targets_same_page_is_not_ambiguous() {
        let mut s = login_service();
        let hp = s.pages.get_mut("HP").unwrap();
        hp.target_rules.push(TargetRule {
            target: "CP".into(),
            body: Formula::rel("user", vec![Term::cst("name"), Term::cst("password")]),
        });
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "pw1")).unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "CP");
    }

    #[test]
    fn missing_constant_in_rules_marks_condition_i() {
        // A page whose rules mention a constant it never solicits.
        let mut s = login_service();
        s.schema.add_constant("card", ConstKind::Input).unwrap();
        let cp = s.pages.get_mut("CP").unwrap();
        cp.target_rules.push(TargetRule {
            target: "HP".into(),
            body: Formula::eq(Term::cst("card"), Term::lit("visa")),
        });
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "pw1")).unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "CP");
        assert!(cfg1.err_pending, "condition (i): `card` never provided");
        let cfg2 = r.step(&cfg1, &InputChoice::empty()).unwrap();
        assert_eq!(cfg2.page, "ERR");
    }

    #[test]
    fn options_depend_on_database_and_constants() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let page = s.page("HP").unwrap();
        let provided: BTreeMap<String, Value> = [
            ("name".to_string(), Value::str("x")),
            ("password".to_string(), Value::str("y")),
        ]
        .into();
        let opts = r
            .entry_options(page, &Instance::new(), &Instance::new(), &provided)
            .unwrap();
        assert_eq!(opts["button"].len(), 3);
        assert!(opts["button"].contains(&tuple!["login"]));
    }

    #[test]
    fn observation_includes_page_input_and_actions() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "pw1")).unwrap();
        let obs = cfg0.observation(&d);
        assert!(obs.prop("HP"));
        assert!(!obs.prop("CP"));
        assert!(obs.contains("button", &tuple!["login"]));
        assert!(obs.contains("user", &tuple!["alice", "pw1"]));
    }

    #[test]
    fn state_persists_without_rules() {
        let mut schema = Schema::new();
        schema.add_relation("flag", 0, RelKind::State).unwrap();
        schema.add_relation("set", 0, RelKind::Input).unwrap();
        schema.add_relation("P", 0, RelKind::Page).unwrap();
        schema.add_relation("Q", 0, RelKind::Page).unwrap();
        let mut p = Page::new("P");
        p.inputs.push("set".into());
        p.state_rules.push(StateRule {
            relation: "flag".into(),
            vars: vec![],
            insert: Some(Formula::prop("set")),
            delete: None,
        });
        p.target_rules.push(TargetRule {
            target: "Q".into(),
            body: Formula::prop("set"),
        });
        let q = Page::new("Q"); // no rules: state persists
        let s = Service {
            schema,
            pages: BTreeMap::from([("P".to_string(), p), ("Q".to_string(), q)]),
            home: "P".into(),
            error_page: "ERR".into(),
        };
        s.validate().unwrap();
        let d = Instance::new();
        let r = Runner::new(&s, &d);
        let cfg0 = r
            .initial(&InputChoice::empty().with_prop("set", true))
            .unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert_eq!(cfg1.page, "Q");
        assert!(cfg1.state.prop("flag"));
        let cfg2 = r.step(&cfg1, &InputChoice::empty()).unwrap();
        assert!(cfg2.state.prop("flag"), "unruled state must persist");
    }

    #[test]
    fn state_conflict_noop_semantics() {
        let mut schema = Schema::new();
        schema.add_relation("flag", 0, RelKind::State).unwrap();
        schema.add_relation("go", 0, RelKind::Input).unwrap();
        schema.add_relation("P", 0, RelKind::Page).unwrap();
        let mut p = Page::new("P");
        p.inputs.push("go".into());
        p.state_rules.push(StateRule {
            relation: "flag".into(),
            vars: vec![],
            insert: Some(Formula::prop("go")),
            delete: Some(Formula::prop("go")),
        });
        let s = Service {
            schema,
            pages: BTreeMap::from([("P".to_string(), p)]),
            home: "P".into(),
            error_page: "ERR".into(),
        };
        s.validate().unwrap();
        let d = Instance::new();
        let r = Runner::new(&s, &d);
        // go=true: insert & delete conflict → flag stays false.
        let cfg0 = r
            .initial(&InputChoice::empty().with_prop("go", true))
            .unwrap();
        let cfg1 = r.step(&cfg0, &InputChoice::empty()).unwrap();
        assert!(!cfg1.state.prop("flag"));
    }

    #[test]
    fn replay_accepts_a_genuine_lasso_and_rejects_forgeries() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        // Genuine run: login, land on CP, idle there forever.
        let c0 = r.initial(&login_as("alice", "pw1")).unwrap();
        let c1 = r.step(&c0, &InputChoice::empty()).unwrap();
        let c2 = r.step(&c1, &InputChoice::empty()).unwrap();
        let c3 = r.step(&c2, &InputChoice::empty()).unwrap();
        assert_eq!(c1.page, "CP");
        assert_eq!(c2, c3, "idling on CP is a fixpoint");
        r.replay_lasso(&[c0.clone(), c1.clone()], std::slice::from_ref(&c2))
            .expect("a genuine run must replay");
        // Forgery 1: teleport — claim the run starts on CP.
        let err = r.replay_lasso(&[], std::slice::from_ref(&c1)).unwrap_err();
        assert!(matches!(err, ReplayError::NotAtHome { .. }), "{err:?}");
        // Forgery 2: smuggled state — c1 with a state tuple nobody inserted.
        let mut forged = c1.clone();
        forged.state.insert("error", tuple!["made up"]);
        let err = r
            .replay_lasso(std::slice::from_ref(&c0), &[forged])
            .unwrap_err();
        assert!(
            matches!(err, ReplayError::Mismatch { step: 1, .. }),
            "{err:?}"
        );
        // Forgery 3: a non-closing "cycle" (c0 does not follow from c1 —
        // the wrap-around move is rejected or mismatched at index 2).
        let err = r.replay_lasso(&[], &[c0.clone(), c1.clone()]).unwrap_err();
        match &err {
            ReplayError::Rejected { step: 2, .. } | ReplayError::Mismatch { step: 2, .. } => {}
            other => panic!("expected wrap-around failure, got {other:?}"),
        }
        // Forgery 4: an input outside the page's options.
        let mut forged = c0.clone();
        forged.input = Instance::new();
        forged.input.insert("button", tuple!["hack"]);
        let err = r.replay_lasso(&[forged], &[c1]).unwrap_err();
        assert!(
            matches!(err, ReplayError::Rejected { step: 0, .. }),
            "{err:?}"
        );
        // Degenerate lasso shape.
        assert_eq!(
            r.replay_lasso(&[c0], &[]).unwrap_err(),
            ReplayError::EmptyCycle
        );
    }

    #[test]
    fn choice_for_reconstructs_the_move() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let original = login_as("alice", "pw1");
        let c0 = r.initial(&original).unwrap();
        let rebuilt = choice_for(&BTreeMap::new(), &c0);
        assert_eq!(rebuilt, original);
        // The rebuilt choice re-enters to the identical configuration.
        assert_eq!(r.initial(&rebuilt).unwrap(), c0);
    }

    #[test]
    fn transition_core_is_deterministic_view() {
        let s = login_service();
        let d = db();
        let r = Runner::new(&s, &d);
        let cfg0 = r.initial(&login_as("alice", "pw1")).unwrap();
        let core = r.transition_core(&cfg0).unwrap();
        assert_eq!(core.page, "CP");
        assert!(core.prev.contains("prev_button", &tuple!["login"]));
    }
}
