//! An ergonomic builder for Web service specifications.
//!
//! Rule bodies are written in the surface syntax of
//! [`wave_logic::parser`], with the rule's head variables declared as free
//! variables — every other identifier in term position is a named
//! constant, matching the paper's conventions. Errors (parse failures,
//! schema clashes, validation violations) are accumulated and reported
//! together by [`ServiceBuilder::build`].
//!
//! ```
//! use wave_core::ServiceBuilder;
//!
//! let mut b = ServiceBuilder::new("HP");
//! b.database_relation("user", 2)
//!     .input_relation("button", 1)
//!     .state_prop("logged_in")
//!     .input_constant("name")
//!     .input_constant("password")
//!     .page("HP")
//!     .solicit_constant("name")
//!     .solicit_constant("password")
//!     .input_rule("button", &["x"], r#"x = "login" | x = "clear""#)
//!     .insert_rule("logged_in", &[], r#"user(name, password) & button("login")"#)
//!     .target("CP", r#"user(name, password) & button("login")"#)
//!     .page("CP");
//! let service = b.build().unwrap();
//! assert_eq!(service.pages.len(), 2);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use wave_logic::parser::{parse_fo_spanned, ParseError};
use wave_logic::schema::{ConstKind, RelKind, Schema, SchemaError};

use crate::page::Page;
use crate::provenance::ServiceSources;
use crate::rules::{ActionRule, InputRule, StateRule, TargetRule};
use crate::service::{Service, ValidationError};

/// An error accumulated during building.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A rule body failed to parse.
    Parse {
        /// Page the rule belongs to.
        page: String,
        /// Rule description.
        rule: String,
        /// The parser's complaint.
        err: ParseError,
    },
    /// Schema construction failed.
    Schema(SchemaError),
    /// A rule was added before any page was opened.
    NoCurrentPage {
        /// Rule description.
        rule: String,
    },
    /// Definition 2.1 validation failed.
    Validation(ValidationError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse { page, rule, err } => {
                write!(f, "page `{page}`, rule `{rule}`: {err}")
            }
            BuildError::Schema(e) => write!(f, "schema error: {e}"),
            BuildError::NoCurrentPage { rule } => {
                write!(f, "rule `{rule}` added before any page")
            }
            BuildError::Validation(e) => write!(f, "validation: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceBuilder {
    schema: Schema,
    pages: BTreeMap<String, Page>,
    page_order: Vec<String>,
    home: String,
    error_page: String,
    current: Option<String>,
    errors: Vec<BuildError>,
    sources: ServiceSources,
}

impl ServiceBuilder {
    /// Starts a builder; `home` is the home page name (the page itself is
    /// declared later with [`Self::page`]).
    pub fn new(home: impl Into<String>) -> Self {
        ServiceBuilder {
            schema: Schema::new(),
            pages: BTreeMap::new(),
            page_order: Vec::new(),
            home: home.into(),
            error_page: "__error__".into(),
            current: None,
            errors: Vec::new(),
            sources: ServiceSources::new(),
        }
    }

    /// Overrides the error page name (default `__error__`).
    pub fn error_page_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.error_page = name.into();
        self
    }

    fn add_rel(&mut self, name: &str, arity: usize, kind: RelKind) -> &mut Self {
        if let Err(e) = self.schema.add_relation(name, arity, kind) {
            self.errors.push(BuildError::Schema(e));
        }
        self
    }

    /// Declares a database relation.
    pub fn database_relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.add_rel(name, arity, RelKind::Database)
    }

    /// Declares a state relation.
    pub fn state_relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.add_rel(name, arity, RelKind::State)
    }

    /// Declares a propositional state.
    pub fn state_prop(&mut self, name: &str) -> &mut Self {
        self.state_relation(name, 0)
    }

    /// Declares an input relation (`prev_<name>` is derived automatically
    /// for positive arity).
    pub fn input_relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.add_rel(name, arity, RelKind::Input)
    }

    /// Declares an action relation.
    pub fn action_relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.add_rel(name, arity, RelKind::Action)
    }

    /// Declares a propositional action.
    pub fn action_prop(&mut self, name: &str) -> &mut Self {
        self.action_relation(name, 0)
    }

    /// Declares a database constant.
    pub fn database_constant(&mut self, name: &str) -> &mut Self {
        if let Err(e) = self.schema.add_constant(name, ConstKind::Database) {
            self.errors.push(BuildError::Schema(e));
        }
        self
    }

    /// Declares an input constant (`const(I)`).
    pub fn input_constant(&mut self, name: &str) -> &mut Self {
        if let Err(e) = self.schema.add_constant(name, ConstKind::Input) {
            self.errors.push(BuildError::Schema(e));
        }
        self
    }

    /// Opens (or reopens) a page; subsequent rule calls attach to it.
    pub fn page(&mut self, name: &str) -> &mut Self {
        if !self.pages.contains_key(name) {
            self.pages.insert(name.to_string(), Page::new(name));
            self.page_order.push(name.to_string());
            if let Err(e) = self.schema.add_relation(name, 0, RelKind::Page) {
                self.errors.push(BuildError::Schema(e));
            }
        }
        self.current = Some(name.to_string());
        self
    }

    fn with_page(&mut self, rule: &str, f: impl FnOnce(&mut Page)) -> &mut Self {
        match self.current.clone() {
            Some(p) => {
                let page = self.pages.get_mut(&p).expect("current page exists");
                f(page);
            }
            None => self
                .errors
                .push(BuildError::NoCurrentPage { rule: rule.into() }),
        }
        self
    }

    /// Adds an input constant solicitation to the current page.
    pub fn solicit_constant(&mut self, c: &str) -> &mut Self {
        self.with_page(c, |p| p.input_constants.push(c.to_string()))
    }

    fn parse(&mut self, rule: &str, vars: &[&str], src: &str) -> Option<wave_logic::Formula> {
        let page = self.current.clone().unwrap_or_default();
        match parse_fo_spanned(src, vars) {
            Ok((f, spans)) => {
                self.sources.record(&page, rule, src, spans);
                Some(f)
            }
            Err(err) => {
                self.errors.push(BuildError::Parse {
                    page,
                    rule: rule.into(),
                    err,
                });
                None
            }
        }
    }

    /// Adds a relational input with its options rule to the current page.
    pub fn input_rule(&mut self, rel: &str, vars: &[&str], body: &str) -> &mut Self {
        let parsed = self.parse(&format!("Options_{rel}"), vars, body);
        self.with_page(rel, |p| {
            if !p.inputs.contains(&rel.to_string()) {
                p.inputs.push(rel.to_string());
            }
            if let Some(f) = parsed {
                p.input_rules.push(InputRule {
                    relation: rel.to_string(),
                    vars: vars.iter().map(|v| v.to_string()).collect(),
                    body: f,
                });
            }
        })
    }

    /// Adds a propositional input (no options rule needed) to the page.
    pub fn input_prop_on_page(&mut self, rel: &str) -> &mut Self {
        self.with_page(rel, |p| {
            if !p.inputs.contains(&rel.to_string()) {
                p.inputs.push(rel.to_string());
            }
        })
    }

    /// Adds (or extends) a state insertion rule.
    pub fn insert_rule(&mut self, rel: &str, vars: &[&str], body: &str) -> &mut Self {
        let parsed = self.parse(&format!("+{rel}"), vars, body);
        self.with_page(rel, |p| {
            if let Some(f) = parsed {
                if let Some(r) = p.state_rules.iter_mut().find(|r| r.relation == rel) {
                    r.insert = Some(f);
                } else {
                    p.state_rules.push(StateRule {
                        relation: rel.to_string(),
                        vars: vars.iter().map(|v| v.to_string()).collect(),
                        insert: Some(f),
                        delete: None,
                    });
                }
            }
        })
    }

    /// Adds (or extends) a state deletion rule.
    pub fn delete_rule(&mut self, rel: &str, vars: &[&str], body: &str) -> &mut Self {
        let parsed = self.parse(&format!("-{rel}"), vars, body);
        self.with_page(rel, |p| {
            if let Some(f) = parsed {
                if let Some(r) = p.state_rules.iter_mut().find(|r| r.relation == rel) {
                    r.delete = Some(f);
                } else {
                    p.state_rules.push(StateRule {
                        relation: rel.to_string(),
                        vars: vars.iter().map(|v| v.to_string()).collect(),
                        insert: None,
                        delete: Some(f),
                    });
                }
            }
        })
    }

    /// Adds an action rule.
    pub fn action_rule(&mut self, rel: &str, vars: &[&str], body: &str) -> &mut Self {
        let parsed = self.parse(rel, vars, body);
        self.with_page(rel, |p| {
            if let Some(f) = parsed {
                p.action_rules.push(ActionRule {
                    relation: rel.to_string(),
                    vars: vars.iter().map(|v| v.to_string()).collect(),
                    body: f,
                });
            }
        })
    }

    /// Adds a target rule.
    pub fn target(&mut self, page: &str, body: &str) -> &mut Self {
        let parsed = self.parse(&format!("target {page}"), &[], body);
        self.with_page(page, |p| {
            if let Some(f) = parsed {
                p.target_rules.push(TargetRule {
                    target: page.to_string(),
                    body: f,
                });
            }
        })
    }

    /// Finishes: validates Definition 2.1 and returns the service or all
    /// accumulated errors.
    pub fn build(&self) -> Result<Service, Vec<BuildError>> {
        let mut errors = self.errors.clone();
        let service = Service {
            schema: self.schema.clone(),
            pages: self.pages.clone(),
            home: self.home.clone(),
            error_page: self.error_page.clone(),
        };
        if errors.is_empty() {
            if let Err(es) = service.validate() {
                errors.extend(es.into_iter().map(BuildError::Validation));
            }
        }
        if errors.is_empty() {
            Ok(service)
        } else {
            Err(errors)
        }
    }

    /// Like [`Self::build`], but also returns the rule sources recorded
    /// during parsing, for span-carrying diagnostics.
    pub fn build_with_sources(&self) -> Result<(Service, ServiceSources), Vec<BuildError>> {
        self.build().map(|s| (s, self.sources.clone()))
    }

    /// The rule sources recorded so far (also available on build failure).
    pub fn sources(&self) -> &ServiceSources {
        &self.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_builds() {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login" | x = "clear""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .target("CP", r#"user(name, password) & button("login")"#)
            .page("CP");
        let s = b.build().unwrap();
        assert_eq!(s.home, "HP");
        assert!(s.page("HP").unwrap().input_rule("button").is_some());
    }

    #[test]
    fn sources_recorded_per_rule() {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .state_prop("logged_in")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            );
        let (_, sources) = b.build_with_sources().unwrap();
        assert_eq!(sources.len(), 2);
        let src = sources.rule("HP", "+logged_in").unwrap();
        assert_eq!(src.text, r#"user(name, password) & button("login")"#);
        let span = src.spans.atom_span("user").unwrap();
        assert_eq!(src.snippet(span), "user(name, password)");
        assert!(sources.rule("HP", "Options_button").is_some());
    }

    #[test]
    fn parse_errors_reported_with_location() {
        let mut b = ServiceBuilder::new("HP");
        b.input_relation("button", 1)
            .page("HP")
            .input_rule("button", &["x"], "x = "); // syntax error
        let errs = b.build().unwrap_err();
        assert!(matches!(&errs[0], BuildError::Parse { page, .. } if page == "HP"));
    }

    #[test]
    fn rule_before_page_reported() {
        let mut b = ServiceBuilder::new("HP");
        b.state_prop("s").insert_rule("s", &[], "true");
        let errs = b.build().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, BuildError::NoCurrentPage { .. })));
    }

    #[test]
    fn validation_errors_surface() {
        let mut b = ServiceBuilder::new("HP");
        b.page("HP").target("NOWHERE", "true");
        let errs = b.build().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            BuildError::Validation(ValidationError::UnknownTargetPage { .. })
        )));
    }

    #[test]
    fn insert_and_delete_merge_into_one_state_rule() {
        let mut b = ServiceBuilder::new("P");
        b.state_prop("flag")
            .input_relation("go", 0)
            .page("P")
            .input_prop_on_page("go")
            .insert_rule("flag", &[], "go")
            .delete_rule("flag", &[], "!go");
        let s = b.build().unwrap();
        let p = s.page("P").unwrap();
        assert_eq!(p.state_rules.len(), 1);
        assert!(p.state_rules[0].insert.is_some());
        assert!(p.state_rules[0].delete.is_some());
    }

    #[test]
    fn duplicate_schema_decl_reported() {
        let mut b = ServiceBuilder::new("P");
        b.state_prop("s").database_relation("s", 1).page("P");
        let errs = b.build().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, BuildError::Schema(_))));
    }
}
