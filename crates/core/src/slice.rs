//! wave-slice: property-directed cone-of-influence slicing.
//!
//! Given a service and an LTL-FO property, compute the **cone of
//! influence** — the set of relation symbols whose contents can affect
//! either the property's truth value or the service's control flow
//! (page transitions and error-page entry) — and emit a reduced
//! [`Service`] containing only the rules, pages and schema symbols
//! inside that cone. The reduction is *verdict-preserving* for the
//! decidable classes the verifier admits (the argument is written out
//! in DESIGN.md §12 and enforced dynamically by wave-qa's
//! `SliceDivergence` differential leg).
//!
//! The analysis has three parts:
//!
//! 1. **Page reachability** — a BFS from the home page over target-rule
//!    edges. Pages no target rule can ever name are dead: no run visits
//!    them, so their rules are dropped wholesale.
//! 2. **A relation dependency digraph** over the reachable pages: each
//!    rule contributes edges from its head symbol to every relation its
//!    body reads (`S → rels(φ⁺) ∪ rels(φ⁻)`, `A → rels(φ)`,
//!    `I → rels(Options_I)`), plus `prev_I → I` for the derived
//!    previous-input relations.
//! 3. **Backward fixpoint closure** seeded from (a) the property's
//!    vocabulary, (b) every relation read by a target rule of a
//!    reachable page (the *control cone* — targets decide both the next
//!    page and the ambiguous/dead error transitions), and (c) the head
//!    of every rule whose body mentions an *input constant* (such rules
//!    must survive because error-entry condition (i) of Definition 2.3
//!    scans all rule bodies of the entered page for unprovided input
//!    constants — dropping one could turn an error run into a live
//!    one).
//!
//! Everything outside the closure is certifiably invisible: dropped
//! state/action rules write relations no retained body or property
//! reads, dropped inputs are never read (and the "no pick" branch
//! always exists, so every sliced run lifts to a full run choosing "no
//! pick" for them), and target rules, input-constant solicitations and
//! the constant vocabulary are kept verbatim, pinning the page/error
//! dynamics. The slicer *refuses* (returns the service unchanged, with
//! the reason recorded) whenever the argument does not apply: non-LTL
//! properties (path quantifiers see branching the slice may prune),
//! structurally invalid services, or properties whose vocabulary does
//! not type-check against the schema. As a belt-and-braces guard it
//! also validates its own output and falls back to the identity slice
//! if that ever fails.
//!
//! [`cone_digests`] additionally exposes a per-symbol digest of each
//! relation's cone (built on the order-insensitive canonical hashing),
//! the substrate incremental verification needs: an edit that leaves
//! `cone_digest(r)` unchanged provably cannot affect any property whose
//! vocabulary is `{r}`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use wave_logic::fingerprint::{Canonical, Fingerprint, Fnv128};
use wave_logic::schema::{prev_name, ConstKind, RelKind, Schema, PREV_PREFIX};
use wave_logic::temporal::{Property, TemporalClass};

use crate::page::Page;
use crate::service::Service;

/// Domain tag mixed into every per-symbol cone digest.
const CONE_DIGEST_DOMAIN: &str = "wave-slice/cone/v1";

/// What the slicer did, in deterministic, render-ready form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceReport {
    /// `Some(reason)` when the slicer refused and returned the service
    /// unchanged (non-LTL property, invalid service, vocabulary
    /// mismatch). A refusal is not an error: verification proceeds on
    /// the full service.
    pub refused: Option<String>,
    /// Pages reachable from the home page over target edges.
    pub reachable_pages: BTreeSet<String>,
    /// Pages dropped because no target chain reaches them.
    pub dropped_pages: Vec<String>,
    /// Dropped rules as `(page, label)`, labels matching wave-lint's
    /// scheme: `Options_<rel>`, `+<rel>`, `-<rel>`, the action relation
    /// name, or `target <page>`.
    pub dropped_rules: Vec<(String, String)>,
    /// Schema relations dropped (includes auto-derived `prev_*`).
    pub dropped_relations: Vec<String>,
    /// The relation cone: every relation symbol retained because the
    /// property or the control flow can observe it.
    pub cone: BTreeSet<String>,
    /// Rule count of the original service (insert/delete bodies count
    /// separately, matching wave-lint's rule labelling).
    pub original_rules: usize,
    /// Rule count of the sliced service.
    pub retained_rules: usize,
    /// Relation count of the original schema.
    pub original_relations: usize,
    /// Relation count of the sliced schema.
    pub retained_relations: usize,
}

impl SliceReport {
    /// Rules removed by the slice.
    pub fn sliced_rules(&self) -> usize {
        self.original_rules - self.retained_rules
    }

    /// Schema relations removed by the slice.
    pub fn sliced_relations(&self) -> usize {
        self.original_relations - self.retained_relations
    }

    /// True when the slice changed nothing (refused or already minimal).
    pub fn is_identity(&self) -> bool {
        self.sliced_rules() == 0 && self.sliced_relations() == 0 && self.dropped_pages.is_empty()
    }
}

/// A sliced service together with the report describing the reduction.
#[derive(Clone, Debug)]
pub struct SliceResult {
    /// The reduced (or, on refusal, original) service.
    pub service: Service,
    /// What was removed and why.
    pub report: SliceReport,
}

/// Slices `service` down to the cone of influence of `property`.
///
/// Refusals (see module docs) return the service unchanged with
/// `report.refused` set; callers need not special-case them.
pub fn slice(service: &Service, property: &Property) -> SliceResult {
    if property.classify() != TemporalClass::Ltl {
        return identity(
            service,
            "property has path quantifiers (CTL/CTL*): slicing is \
             defined for LTL-FO only",
        );
    }
    if service.validate().is_err() {
        return identity(service, "service fails structural validation");
    }
    let mut vocab = BTreeSet::new();
    for (name, arity) in property.body.relations_used() {
        match service.schema.relation(&name) {
            None => {
                return identity(
                    service,
                    format!("property mentions undeclared relation `{name}`"),
                );
            }
            Some(r) if r.arity != arity => {
                return identity(
                    service,
                    format!(
                        "property uses `{name}` with arity {arity} but it \
                         is declared with arity {}",
                        r.arity
                    ),
                );
            }
            Some(_) => {
                vocab.insert(name);
            }
        }
    }
    let result = slice_for_seeds(service, &vocab);
    // Certification guard: a slice that does not validate would change
    // semantics; never ship one.
    if result.service.validate().is_err() {
        return identity(service, "internal: sliced service failed validation");
    }
    result
}

/// Pages reachable from the home page over target-rule edges (the error
/// page has no schema and is excluded by construction).
pub fn reachable_pages(service: &Service) -> BTreeSet<String> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    if service.pages.contains_key(&service.home) {
        seen.insert(service.home.clone());
        queue.push_back(service.home.clone());
    }
    while let Some(name) = queue.pop_front() {
        let page = &service.pages[&name];
        for t in page.targets() {
            if service.pages.contains_key(t) && seen.insert(t.to_string()) {
                queue.push_back(t.to_string());
            }
        }
    }
    seen
}

/// Per-symbol cone digests: for every non-`prev_*` relation symbol, the
/// canonical fingerprint of the service sliced to that symbol's cone.
/// An edit leaving `cone_digest(r)` unchanged cannot affect any
/// property whose vocabulary is `{r}` — the keying substrate for
/// incremental re-verification (ROADMAP item 3).
///
/// Returns an empty map for structurally invalid services.
pub fn cone_digests(service: &Service) -> BTreeMap<String, Fingerprint> {
    let mut out = BTreeMap::new();
    if service.validate().is_err() {
        return out;
    }
    for rel in service.schema.relations() {
        if rel.kind == RelKind::PrevInput {
            continue;
        }
        let seeds = BTreeSet::from([rel.name.clone()]);
        let sliced = slice_for_seeds(service, &seeds);
        let mut h = Fnv128::new();
        h.write_str(CONE_DIGEST_DOMAIN);
        h.write_str(&rel.name);
        sliced.service.canon(&mut h);
        out.insert(rel.name.clone(), Fingerprint(h.finish()));
    }
    out
}

fn identity(service: &Service, reason: impl Into<String>) -> SliceResult {
    let rules = service.pages.values().map(rule_units).sum();
    let rels = service.schema.len();
    SliceResult {
        service: service.clone(),
        report: SliceReport {
            refused: Some(reason.into()),
            reachable_pages: service.pages.keys().cloned().collect(),
            dropped_pages: Vec::new(),
            dropped_rules: Vec::new(),
            dropped_relations: Vec::new(),
            cone: service.schema.relations().map(|r| r.name.clone()).collect(),
            original_rules: rules,
            retained_rules: rules,
            original_relations: rels,
            retained_relations: rels,
        },
    }
}

/// Rule count in wave-lint labelling units (insert and delete bodies of
/// one `StateRule` count separately).
fn rule_units(page: &Page) -> usize {
    page.input_rules.len()
        + page
            .state_rules
            .iter()
            .map(|r| usize::from(r.insert.is_some()) + usize::from(r.delete.is_some()))
            .sum::<usize>()
        + page.action_rules.len()
        + page.target_rules.len()
}

/// All rule labels of a page, for dropped-rule reporting.
fn rule_labels(page: &Page) -> Vec<String> {
    let mut out = Vec::new();
    for r in &page.input_rules {
        out.push(format!("Options_{}", r.relation));
    }
    for r in &page.state_rules {
        if r.insert.is_some() {
            out.push(format!("+{}", r.relation));
        }
        if r.delete.is_some() {
            out.push(format!("-{}", r.relation));
        }
    }
    for r in &page.action_rules {
        out.push(r.relation.clone());
    }
    for r in &page.target_rules {
        out.push(format!("target {}", r.target));
    }
    out
}

/// True when `body` mentions an input constant — such rules pin error
/// condition (i) of Definition 2.3 and must survive every slice.
fn mentions_input_constant(service: &Service, body: &wave_logic::Formula) -> bool {
    body.constants_used()
        .iter()
        .any(|c| service.schema.constant(c) == Some(ConstKind::Input))
}

/// Core slicer: closure over explicit relation seeds. Assumes the
/// service validates.
fn slice_for_seeds(service: &Service, seeds: &BTreeSet<String>) -> SliceResult {
    let reachable = reachable_pages(service);

    // Dependency edges head → body relations, plus control/const seeds.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut worklist: Vec<String> = seeds.iter().cloned().collect();
    let add_edge =
        |edges: &mut BTreeMap<String, BTreeSet<String>>, head: &str, body: &wave_logic::Formula| {
            let deps = edges.entry(head.to_string()).or_default();
            for (rel, _) in body.relations_used() {
                deps.insert(rel);
            }
        };
    for name in &reachable {
        let page = &service.pages[name];
        for r in &page.input_rules {
            add_edge(&mut edges, &r.relation, &r.body);
            if mentions_input_constant(service, &r.body) {
                worklist.push(r.relation.clone());
            }
        }
        for r in &page.state_rules {
            for body in r.insert.iter().chain(r.delete.iter()) {
                add_edge(&mut edges, &r.relation, body);
                if mentions_input_constant(service, body) {
                    worklist.push(r.relation.clone());
                }
            }
        }
        for r in &page.action_rules {
            add_edge(&mut edges, &r.relation, &r.body);
            if mentions_input_constant(service, &r.body) {
                worklist.push(r.relation.clone());
            }
        }
        // Target rules are always retained: their bodies seed the cone
        // directly (the control cone).
        for r in &page.target_rules {
            for (rel, _) in r.body.relations_used() {
                worklist.push(rel);
            }
        }
    }
    // prev_I is derived from I: reading the previous input requires the
    // input itself.
    for r in service.schema.relations_of(RelKind::PrevInput) {
        edges
            .entry(r.name.clone())
            .or_default()
            .insert(r.name[PREV_PREFIX.len()..].to_string());
    }

    // Backward fixpoint closure.
    let mut cone: BTreeSet<String> = BTreeSet::new();
    while let Some(rel) = worklist.pop() {
        if !cone.insert(rel.clone()) {
            continue;
        }
        if let Some(deps) = edges.get(&rel) {
            worklist.extend(deps.iter().cloned());
        }
    }

    let keep_input = |rel: &str| cone.contains(rel) || cone.contains(prev_name(rel).as_str());

    // Rebuild the pages: reachable only, rules filtered to the cone.
    let mut pages = BTreeMap::new();
    let mut dropped_pages = Vec::new();
    let mut dropped_rules = Vec::new();
    for (name, page) in &service.pages {
        if !reachable.contains(name) {
            dropped_pages.push(name.clone());
            for label in rule_labels(page) {
                dropped_rules.push((name.clone(), label));
            }
            continue;
        }
        let mut p = Page::new(name.clone());
        p.input_constants = page.input_constants.clone();
        p.inputs = page
            .inputs
            .iter()
            .filter(|i| keep_input(i))
            .cloned()
            .collect();
        for r in &page.input_rules {
            if keep_input(&r.relation) {
                p.input_rules.push(r.clone());
            } else {
                dropped_rules.push((name.clone(), format!("Options_{}", r.relation)));
            }
        }
        for r in &page.state_rules {
            if cone.contains(&r.relation) {
                p.state_rules.push(r.clone());
            } else {
                if r.insert.is_some() {
                    dropped_rules.push((name.clone(), format!("+{}", r.relation)));
                }
                if r.delete.is_some() {
                    dropped_rules.push((name.clone(), format!("-{}", r.relation)));
                }
            }
        }
        for r in &page.action_rules {
            if cone.contains(&r.relation) {
                p.action_rules.push(r.clone());
            } else {
                dropped_rules.push((name.clone(), r.relation.clone()));
            }
        }
        p.target_rules = page.target_rules.clone();
        pages.insert(name.clone(), p);
    }

    // Rebuild the schema: cone relations, Page relations of retained
    // pages (plus any the seeds name — e.g. a property observing a dead
    // page's proposition must stay well-typed), and all constants
    // (input-constant provisioning drives error conditions (i)/(ii)).
    let mut schema = Schema::new();
    let mut dropped_relations = Vec::new();
    for r in service.schema.relations() {
        let keep = match r.kind {
            // Auto-derived when the owning input relation is added.
            RelKind::PrevInput => continue,
            RelKind::Database | RelKind::State | RelKind::Action => cone.contains(&r.name),
            RelKind::Input => keep_input(&r.name),
            RelKind::Page => {
                pages.contains_key(&r.name)
                    || seeds.contains(&r.name)
                    || r.name == service.home
                    || r.name == service.error_page
            }
        };
        if keep {
            schema
                .add_relation(&r.name, r.arity, r.kind)
                .expect("subset of a valid schema cannot clash");
        }
    }
    for r in service.schema.relations() {
        if schema.relation(&r.name).is_none() {
            dropped_relations.push(r.name.clone());
        }
    }
    for (c, kind) in service.schema.constants() {
        schema
            .add_constant(c, kind)
            .expect("constants copied verbatim cannot conflict");
    }

    let sliced = Service {
        schema,
        pages,
        home: service.home.clone(),
        error_page: service.error_page.clone(),
    };
    let report = SliceReport {
        refused: None,
        reachable_pages: reachable,
        dropped_pages,
        dropped_rules,
        dropped_relations,
        cone,
        original_rules: service.pages.values().map(rule_units).sum(),
        retained_rules: sliced.pages.values().map(rule_units).sum(),
        original_relations: service.schema.len(),
        retained_relations: sliced.schema.len(),
    };
    SliceResult {
        service: sliced,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ServiceBuilder;
    use wave_logic::parser::parse_property;

    /// Login site with deliberate dead logic: an unreachable admin
    /// page, a write-only audit state, and an unread `noise` input.
    fn dead_logic_service() -> Service {
        let mut b = ServiceBuilder::new("HP");
        b.database_relation("user", 2)
            .input_relation("button", 1)
            .input_relation("noise", 1)
            .state_prop("logged_in")
            .state_prop("audited")
            .action_prop("greet")
            .input_constant("name")
            .input_constant("password")
            .page("HP")
            .solicit_constant("name")
            .solicit_constant("password")
            .input_rule("button", &["x"], r#"x = "login" | x = "clear""#)
            .input_rule("noise", &["x"], r#"x = "hum""#)
            .insert_rule(
                "logged_in",
                &[],
                r#"user(name, password) & button("login")"#,
            )
            .insert_rule("audited", &[], r#"button("clear")"#)
            .action_rule("greet", &[], "logged_in")
            .target("CP", r#"user(name, password) & button("login")"#)
            .target("HP", r#"!user(name, password)"#)
            .page("CP")
            .target("HP", "true")
            .page("ADMIN")
            .insert_rule("audited", &[], "true")
            .target("HP", "true");
        b.build().unwrap()
    }

    #[test]
    fn reachability_excludes_orphan_pages() {
        let s = dead_logic_service();
        let reach = reachable_pages(&s);
        assert_eq!(reach, BTreeSet::from(["HP".to_string(), "CP".to_string()]));
    }

    #[test]
    fn slice_drops_dead_logic() {
        let s = dead_logic_service();
        let p = parse_property("G (!greet | logged_in)").unwrap();
        let r = slice(&s, &p);
        assert_eq!(r.report.refused, None);
        assert_eq!(r.report.dropped_pages, vec!["ADMIN".to_string()]);
        // `audited` is write-only: no retained body or property reads it.
        assert!(!r.report.cone.contains("audited"));
        assert!(r.service.schema.relation("audited").is_none());
        // `noise` is never read: its options rule and prev go too.
        assert!(r.service.schema.relation("noise").is_none());
        assert!(r.service.schema.relation("prev_noise").is_none());
        assert!(!r.service.pages["HP"].inputs.contains(&"noise".to_string()));
        // The login flow survives intact.
        assert!(r.service.schema.relation("logged_in").is_some());
        assert!(r.service.schema.relation("button").is_some());
        assert!(r.report.sliced_rules() > 0);
        assert!(r.report.sliced_relations() > 0);
        assert_eq!(r.service.validate(), Ok(()));
        // Target rules are never dropped on reachable pages.
        assert_eq!(r.service.pages["HP"].target_rules.len(), 2);
    }

    #[test]
    fn control_cone_retains_target_dependencies() {
        let s = dead_logic_service();
        // Property observes nothing the rules write, but `user` and
        // `button` feed target rules: they stay.
        let p = parse_property("G true").unwrap();
        let r = slice(&s, &p);
        assert!(r.report.cone.contains("user"));
        assert!(r.report.cone.contains("button"));
        assert!(!r.report.cone.contains("greet"));
    }

    #[test]
    fn input_constant_rules_survive() {
        // A state rule mentioning an input constant pins error
        // condition (i): it must survive even when nothing reads it.
        let mut b = ServiceBuilder::new("P");
        b.database_relation("user", 1)
            .state_prop("shadow")
            .input_constant("token")
            .page("P")
            .insert_rule("shadow", &[], "user(token)")
            .target("P", "true");
        let s = b.build().unwrap();
        let p = parse_property("G true").unwrap();
        let r = slice(&s, &p);
        assert!(r.report.cone.contains("shadow"));
        assert_eq!(r.service.pages["P"].state_rules.len(), 1);
    }

    #[test]
    fn property_vocabulary_is_seeded() {
        let s = dead_logic_service();
        let p = parse_property("F audited").unwrap();
        let r = slice(&s, &p);
        // Now `audited` is observed: its rules (on reachable pages) stay.
        assert!(r.report.cone.contains("audited"));
        assert!(r.service.schema.relation("audited").is_some());
        assert_eq!(r.service.pages["HP"].state_rules.len(), 2);
        // The unreachable ADMIN page is still dead.
        assert_eq!(r.report.dropped_pages, vec!["ADMIN".to_string()]);
    }

    #[test]
    fn refuses_non_ltl_and_bad_vocabulary() {
        let s = dead_logic_service();
        let ctl = parse_property("A (G logged_in)").unwrap();
        let r = slice(&s, &ctl);
        assert!(r.report.refused.is_some());
        assert_eq!(r.service, s);
        let unknown = parse_property("G mystery_rel").unwrap();
        let r = slice(&s, &unknown);
        assert!(r.report.refused.as_deref().unwrap().contains("mystery_rel"));
        assert_eq!(r.service, s);
        assert!(r.report.is_identity());
    }

    #[test]
    fn property_on_dead_page_proposition_stays_well_typed() {
        let s = dead_logic_service();
        let p = parse_property("G !ADMIN").unwrap();
        let r = slice(&s, &p);
        assert_eq!(r.report.refused, None);
        // The page schema is dropped but the Page relation survives so
        // the property still type-checks against the sliced schema.
        assert!(!r.service.pages.contains_key("ADMIN"));
        assert!(r.service.schema.relation("ADMIN").is_some());
        assert_eq!(r.service.validate(), Ok(()));
    }

    #[test]
    fn cone_digests_are_edit_sensitive_inside_and_stable_outside() {
        let s = dead_logic_service();
        let base = cone_digests(&s);
        assert!(base.contains_key("logged_in"));
        assert!(!base.contains_key("prev_button"));

        // Edit *inside* the cone of `logged_in`: its digest moves.
        let mut edited = s.clone();
        edited
            .pages
            .get_mut("HP")
            .unwrap()
            .state_rules
            .iter_mut()
            .find(|r| r.relation == "logged_in")
            .unwrap()
            .insert = Some(wave_logic::Formula::prop("audited"));
        let after = cone_digests(&edited);
        assert_ne!(base["logged_in"], after["logged_in"]);

        // Edit *outside* the cone of `user` (the audited rule): the
        // digest of `user` is unchanged.
        let mut edited = s.clone();
        edited
            .pages
            .get_mut("HP")
            .unwrap()
            .state_rules
            .retain(|r| r.relation != "audited");
        let after = cone_digests(&edited);
        assert_eq!(base["user"], after["user"]);
        assert_eq!(base["button"], after["button"]);
        // ...but the digest of `audited` itself moves.
        assert_ne!(base["audited"], after["audited"]);
    }

    #[test]
    fn slice_is_idempotent() {
        let s = dead_logic_service();
        let p = parse_property("G (!greet | logged_in)").unwrap();
        let once = slice(&s, &p);
        let twice = slice(&once.service, &p);
        assert_eq!(once.service, twice.service);
        assert!(twice.report.is_identity());
    }
}
