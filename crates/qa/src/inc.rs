//! The incremental-divergence leg: random edit sequences replayed
//! through a **warm** `wave-serve` engine and diffed against cold runs.
//!
//! The digest-keyed tiers (`wave_serve::tiers`) claim that a warm
//! engine answering from its verdict tier returns **byte-identical**
//! verdicts to a cold search of the submitted service — for any edit,
//! in-cone or out. This leg turns the claim into an oracle:
//!
//! 1. generate a spec, submit it to a fresh in-process engine (cold);
//! 2. apply a seeded sequence of edits — rule-body tweaks, property
//!    swaps, relation renames, and no-op reorders — resubmitting each
//!    admissible edit to the *same* engine;
//! 3. for every resubmission, run the edited service cold through
//!    [`verify_ltl`] and demand the verdict's wire encoding match the
//!    warm engine's byte for byte;
//! 4. for **no-op** edits (permutations that preserve the canonical
//!    fingerprint) additionally demand zero search node expansions —
//!    the answer must come from the result cache or the verdict tier,
//!    never from a search.
//!
//! Any violation is a [`FlawKind::IncrementalDivergence`]; engine
//! refusals of admissible requests are [`FlawKind::EngineError`]s. The
//! `wave-qa --incremental` campaign gates on this in CI alongside
//! `qa-fuzz`.

use wave_logic::parser::parse_property;
use wave_rng::{Rng, SplitMix64};
use wave_serve::codec::{outcome_from_json, verdict_to_json, Mode, VerifyRequest};
use wave_serve::engine::{Engine, EngineOptions};
use wave_serve::json::Json;
use wave_verifier::symbolic::{verify_ltl, SymbolicOptions, VerifyOutcome};

use crate::diff::{permuted, Flaw, FlawKind};
use crate::spec::{rename_idents, ServiceSpec};

/// Budgets for one incremental case.
#[derive(Clone, Debug)]
pub struct IncOptions {
    /// Edits attempted per seed (inadmissible mutants are skipped, not
    /// counted).
    pub edits: usize,
    /// Symbolic node budget for both the warm engine and the cold
    /// oracle — they must agree for the tier key to be comparable.
    pub node_limit: usize,
}

impl Default for IncOptions {
    fn default() -> Self {
        IncOptions {
            edits: 4,
            node_limit: 300_000,
        }
    }
}

/// The outcome of one incremental case.
#[derive(Clone, Debug)]
pub struct IncReport {
    /// The seed.
    pub seed: u64,
    /// Admissible edits actually submitted (excludes the base submit).
    pub edits: usize,
    /// Mutants skipped because they no longer built or admitted.
    pub skipped: usize,
    /// Resubmissions answered by the whole-submission result cache.
    pub cache_hits: usize,
    /// Resubmissions answered by the digest-keyed verdict tier.
    pub incremental_hits: usize,
    /// Resubmissions that ran a cold search in the engine.
    pub cold_runs: usize,
    /// Everything that tripped.
    pub flaws: Vec<Flaw>,
}

impl IncReport {
    /// True when the case produced no flaw.
    pub fn clean(&self) -> bool {
        self.flaws.is_empty()
    }
}

/// Runs the incremental leg on one spec: a warm engine fed a seeded
/// edit sequence, every answer diffed against a cold run.
pub fn run_incremental_case(seed: u64, spec: &ServiceSpec, opts: &IncOptions) -> IncReport {
    let mut report = IncReport {
        seed,
        edits: 0,
        skipped: 0,
        cache_hits: 0,
        incremental_hits: 0,
        cold_runs: 0,
        flaws: Vec::new(),
    };
    let engine = Engine::new(EngineOptions {
        workers: 1,
        queue_capacity: 4,
        ..EngineOptions::default()
    });
    let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1);

    // Base submission warms the engine (result cache + both tiers).
    let mut current = spec.clone();
    if submit_and_diff(&engine, &current, opts, false, &mut report).is_none() {
        return report;
    }

    let mut attempts = 0;
    while report.edits + report.skipped < opts.edits && attempts < opts.edits * 4 {
        attempts += 1;
        let mut edited = current.clone();
        let noop = match rng.gen_range(0usize..4) {
            0 => {
                if !tweak_rule_body(&mut edited, &mut rng) {
                    continue;
                }
                false
            }
            1 => {
                edited.property = crate::gen::random_property(&edited, &mut rng);
                false
            }
            2 => {
                if !rename_relation(&mut edited, &mut rng) {
                    continue;
                }
                false
            }
            _ => {
                edited = permuted(&current, &mut rng);
                true
            }
        };
        if !crate::gen::admissible(&edited) {
            report.skipped += 1;
            continue;
        }
        report.edits += 1;
        if submit_and_diff(&engine, &edited, opts, noop, &mut report).is_some() {
            // Walk the sequence: the next edit builds on this one, so
            // the engine accumulates a history of warm digests.
            current = edited;
        }
    }
    report
}

/// Submits `spec` to the warm engine, decodes the answer, and diffs it
/// against a cold [`verify_ltl`] of the same build. Returns `None` when
/// the submission never produced a comparable outcome.
fn submit_and_diff(
    engine: &Engine,
    spec: &ServiceSpec,
    opts: &IncOptions,
    noop: bool,
    report: &mut IncReport,
) -> Option<()> {
    let flaw = |report: &mut IncReport, kind: FlawKind, detail: String| {
        report.flaws.push(Flaw { kind, detail });
    };
    let (service, sources) = match spec.build() {
        Ok(pair) => pair,
        Err(errs) => {
            flaw(
                report,
                FlawKind::Build,
                format!("admissible spec stopped building: {errs:?}"),
            );
            return None;
        }
    };
    let property = parse_property(&spec.property).ok()?;
    let req = VerifyRequest {
        service: "qa-inc".into(),
        property: spec.property.clone(),
        mode: Mode::Ltl,
        node_limit: opts.node_limit,
        threads: 1,
        deadline_us: 0,
        check_owner: false,
    };
    let res = match engine.submit_service(service.clone(), sources, &req) {
        Ok(r) => r,
        Err(e) => {
            flaw(
                report,
                FlawKind::EngineError,
                format!("warm engine refused an admissible submit: {e}"),
            );
            return None;
        }
    };
    let warm: VerifyOutcome = match std::str::from_utf8(&res.outcome_bytes)
        .ok()
        .and_then(|s| Json::parse(s).ok())
        .and_then(|j| outcome_from_json(&j).ok())
    {
        Some(out) => out,
        None => {
            flaw(
                report,
                FlawKind::EngineError,
                "warm engine returned undecodable outcome bytes".into(),
            );
            return None;
        }
    };
    if res.cache_hit {
        report.cache_hits += 1;
    } else if res.incremental {
        report.incremental_hits += 1;
    } else {
        report.cold_runs += 1;
    }

    // The cold oracle: same service, same property, same budget,
    // no caches of any kind.
    let cold = match verify_ltl(
        &service,
        &property,
        &SymbolicOptions {
            node_limit: opts.node_limit,
            ..SymbolicOptions::default()
        },
    ) {
        Ok(out) => out,
        Err(e) => {
            flaw(
                report,
                FlawKind::EngineError,
                format!("cold oracle refused an admissible request: {e}"),
            );
            return None;
        }
    };

    // The tentpole claim: warm and cold verdict *bytes* are identical —
    // not just the kind, the full wire encoding (witness lassos
    // included), because a tier hit replays stored bytes verbatim.
    let warm_bytes = verdict_to_json(&warm.verdict).encode();
    let cold_bytes = verdict_to_json(&cold.verdict).encode();
    if warm_bytes != cold_bytes {
        flaw(
            report,
            FlawKind::IncrementalDivergence,
            format!(
                "warm {} ({}) vs cold {}",
                warm_bytes,
                if res.cache_hit {
                    "cache hit"
                } else if res.incremental {
                    "tier hit"
                } else {
                    "cold in-engine"
                },
                cold_bytes
            ),
        );
    }
    // A no-op edit (canonical-fingerprint-preserving permutation) must
    // never run a fresh search: either the result cache replays the
    // prior outcome verbatim (its *stored* stats describe the original
    // search, which is fine), or the verdict tier answers with zero
    // expansions. A cold in-engine run here means the digest missed.
    if noop && !res.cache_hit && !(res.incremental && warm.stats.nodes_interned == 0) {
        flaw(
            report,
            FlawKind::IncrementalDivergence,
            format!(
                "no-op reorder ran a search: {} node(s) expanded (incremental={})",
                warm.stats.nodes_interned, res.incremental
            ),
        );
    }
    Some(())
}

/// Duplicates (or contradicts) a random insert/delete body or target
/// guard: `(b) & (b)` keeps the semantics, `(b) & !(b)` kills the rule
/// — both change the canonical form, so the submission fingerprint
/// moves while the property's cone may or may not. Input options rules
/// are left alone (conjunction tweaks can break their head-variable
/// guard shape and trip admission, which would only inflate `skipped`).
fn tweak_rule_body(spec: &mut ServiceSpec, rng: &mut SplitMix64) -> bool {
    let mut slots = Vec::new();
    for (pi, p) in spec.pages.iter().enumerate() {
        for ri in 0..p.inserts.len() {
            slots.push((pi, 0usize, ri));
        }
        for ri in 0..p.deletes.len() {
            slots.push((pi, 1, ri));
        }
        for ti in 0..p.targets.len() {
            slots.push((pi, 2, ti));
        }
    }
    let Some(&(pi, kind, ri)) = rng.choose(&slots) else {
        return false;
    };
    let dup = rng.gen_bool(0.7);
    let tweak = |b: &str| {
        if dup {
            format!("(({b}) & ({b}))")
        } else {
            format!("(({b}) & !({b}))")
        }
    };
    let p = &mut spec.pages[pi];
    match kind {
        0 => p.inserts[ri].body = tweak(&p.inserts[ri].body),
        1 => p.deletes[ri].body = tweak(&p.deletes[ri].body),
        _ => p.targets[ri].1 = tweak(&p.targets[ri].1),
    }
    true
}

/// Consistently renames one state/input relation across declarations,
/// solicits, rule heads, rule bodies, guards and the property. Renames
/// change the canonical form of everything that mentions the relation —
/// a whole-service edit the tiers must treat as new work.
fn rename_relation(spec: &mut ServiceSpec, rng: &mut SplitMix64) -> bool {
    let mut names: Vec<String> = spec.state_props.clone();
    names.extend(spec.input_props.iter().cloned());
    names.extend(spec.state_rels.iter().map(|(n, _)| n.clone()));
    let Some(old) = rng.choose(&names).cloned() else {
        return false;
    };
    // Generated vocabularies (`g0`, `s1`, `st`, …) never contain this
    // suffix, so the new name cannot collide.
    let new = format!("{old}ren");
    let map = |id: &str| -> Option<String> { (id == old).then(|| new.clone()) };
    for n in spec
        .state_props
        .iter_mut()
        .chain(spec.input_props.iter_mut())
    {
        if *n == old {
            *n = new.clone();
        }
    }
    for (n, _) in &mut spec.state_rels {
        if *n == old {
            *n = new.clone();
        }
    }
    for p in &mut spec.pages {
        for s in &mut p.solicits {
            if *s == old {
                *s = new.clone();
            }
        }
        for r in p
            .input_rules
            .iter_mut()
            .chain(p.inserts.iter_mut())
            .chain(p.deletes.iter_mut())
        {
            if r.rel == old {
                r.rel = new.clone();
            }
            r.body = rename_idents(&r.body, &map);
        }
        for (_, g) in &mut p.targets {
            *g = rename_idents(g, &map);
        }
    }
    spec.property = rename_idents(&spec.property, &map);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// The in-tree mini-campaign: every seed must come back clean. The
    /// CI `qa-inc` job runs the same loop at 300 seeds in release mode.
    #[test]
    fn incremental_campaign_seeds_are_clean() {
        let opts = IncOptions::default();
        for seed in 0..8 {
            let case = generate(seed);
            let report = run_incremental_case(seed, &case.spec, &opts);
            assert!(
                report.clean(),
                "seed {seed} flawed: {:?}\nspec:\n{}",
                report.flaws,
                case.spec.to_source()
            );
            assert!(report.edits > 0 || report.skipped > 0, "seed {seed} idle");
        }
    }

    /// A hand-written sanity check: a no-op permutation of a toggle
    /// service must be a cache hit, and an out-of-cone body tweak must
    /// come back byte-identical.
    #[test]
    fn edits_are_classified_and_diffed() {
        let mut total_hits = 0;
        let opts = IncOptions::default();
        for seed in 0..12 {
            let case = generate(seed);
            let report = run_incremental_case(seed, &case.spec, &opts);
            assert!(report.clean(), "seed {seed}: {:?}", report.flaws);
            total_hits += report.cache_hits + report.incremental_hits;
        }
        // Across a dozen seeds the warm engine must have answered at
        // least one edit without a cold run — otherwise the leg is not
        // actually exercising the tiers.
        assert!(total_hits > 0, "no warm answer in the whole campaign");
    }

    #[test]
    fn rename_is_consistent() {
        let case = generate(3);
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut spec = case.spec.clone();
        if rename_relation(&mut spec, &mut rng) {
            assert!(crate::gen::admissible(&spec), "rename broke admission");
        }
    }
}
