//! The cross-engine differential driver.
//!
//! One generated case is pushed through every applicable decision
//! procedure and every result is checked against every other:
//!
//! * **symbolic vs enumerative** (the Theorem 3.5 engine against the
//!   explicit-state baseline): symbolic `Holds` forbids an enumerative
//!   violation on *any* sampled database; for fully propositional
//!   services (where the empty database is the only database) the two
//!   must agree exactly.
//! * **symbolic vs the propositional CTL path** (Theorem 4.4): for
//!   propositional services and closed LTL properties, `A φ` checked on
//!   the per-database Kripke structure must match the enumerative
//!   verdict on that database.
//! * **thread counts**: the symbolic verdict is documented to be
//!   byte-identical for `threads ∈ {1, 2, 8}` — demanded, not assumed.
//!   The threaded legs run with `force_overlap` so prefetch workers are
//!   genuinely spawned even on single-core machines, and the structural
//!   [`SearchStats`] counters
//!   (`nodes_interned`, `dedup_hits`, `successors_memoized`,
//!   `memo_hits`, `peak_frontier`) must also match the sequential base;
//!   only wall-clock and prefetch-overlap counters may differ.
//! * **slice vs full**: the cone-of-influence slicer
//!   ([`wave_core::slice`]) is on by default in the symbolic engine, so
//!   the base run is sliced; a `slice: false` leg re-verifies the full
//!   service sequentially and at every diffed thread count. Both
//!   conclusive verdicts must agree in kind — the certified-reduction
//!   claim (DESIGN.md §12) demanded on every generated case — and the
//!   slice-off threaded runs must stay byte-identical to the slice-off
//!   sequential run. Counterexamples are replayed against the **full**
//!   service regardless (the enumerative sweep below never slices).
//! * **metamorphic permutations**: shuffling rules, declarations, pages
//!   and database facts must keep the service's canonical
//!   [`Fingerprint`](wave_logic::fingerprint::Fingerprint) *and* the
//!   verdict; consistently renaming rule and property variables must
//!   keep the verdict (fingerprints hash variable names, so only the
//!   verdict is claimed there).
//! * **replay**: every enumerative counterexample is re-executed through
//!   the concrete semantics by [`wave_verifier::replay`]; a lasso that
//!   does not replay, or does not violate the property under its own
//!   witness, convicts the engine that produced it.
//!
//! Anything that trips is a [`Flaw`]; the driver never panics on a
//! divergence — it reports, so the shrinker can minimize.

use wave_logic::fingerprint::Canonical;
use wave_logic::instance::Instance;
use wave_logic::parser::parse_property;
use wave_logic::temporal::{PathQuant, Property, TFormula, TemporalClass};
use wave_rng::{Rng, SplitMix64};

use wave_core::classify::ServiceClass;
use wave_verifier::ctl_prop::{verify_ctl_on_db, CtlError, CtlOptions};
use wave_verifier::dbgen;
use wave_verifier::enumerative::{verify_ltl_on_db, EnumOptions, EnumOutcome};
use wave_verifier::precheck::precheck;
use wave_verifier::replay::replay_outcome;
use wave_verifier::symbolic::{verify_ltl, SearchStats, SymbolicOptions, Verdict};

use crate::spec::{rename_idents, ServiceSpec};

/// Budgets and comparison knobs for one differential run.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Symbolic node budget.
    pub sym_node_limit: usize,
    /// Enumerative node budget (per witness assignment).
    pub enum_node_limit: usize,
    /// Fresh values in the enumerative / CTL pools.
    pub fresh_values: usize,
    /// Domain size for the bounded database enumeration.
    pub db_domain: usize,
    /// Cap on enumerated databases per case.
    pub db_max: usize,
    /// Extra symbolic thread counts diffed against the sequential base.
    pub threads: Vec<usize>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            sym_node_limit: 300_000,
            enum_node_limit: 150_000,
            fresh_values: 2,
            db_domain: 2,
            db_max: 6,
            threads: vec![2, 8],
        }
    }
}

/// What a flaw is about — the discriminant the shrinker preserves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlawKind {
    /// The spec did not build or its property did not parse.
    Build,
    /// The admission gate refused a generated case.
    Inadmissible,
    /// An engine returned an error on an admissible request.
    EngineError,
    /// Symbolic verdicts differ across thread counts.
    ThreadDivergence,
    /// Deterministic search counters differ across thread counts.
    StatsDivergence,
    /// A rule/declaration/fact permutation changed the fingerprint.
    PermutedFingerprint,
    /// A permutation changed a verdict.
    PermutedVerdict,
    /// A consistent variable renaming changed a verdict.
    RenamedVerdict,
    /// Symbolic says holds-for-all-databases, enumerative violates one.
    SymVsEnum,
    /// Database-free exactness (single possible database) broken.
    FullyPropExactness,
    /// The propositional CTL path disagrees with the enumerative verdict.
    CtlPathDisagree,
    /// An enumerative counterexample failed concrete replay.
    ReplayFailed,
    /// Cone-of-influence slicing changed a symbolic verdict.
    SliceDivergence,
    /// A warm engine's digest-keyed incremental answer differed from a
    /// cold run of the edited service (or a no-op edit searched at all).
    IncrementalDivergence,
}

/// One confirmed cross-engine disagreement (or oracle failure).
#[derive(Clone, Debug)]
pub struct Flaw {
    /// The discriminant.
    pub kind: FlawKind,
    /// Human-readable evidence.
    pub detail: String,
}

/// The outcome of one differential case.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The seed (0 for hand-written specs).
    pub seed: u64,
    /// The decidable class the service fell into.
    pub class: String,
    /// The base symbolic verdict kind (`holds` / `violated` / ...).
    pub sym: String,
    /// Databases the enumerative engine ran on.
    pub dbs: usize,
    /// Enumerative violations found (each one replay-checked).
    pub enum_violations: usize,
    /// Counterexamples that survived concrete replay.
    pub replays: usize,
    /// True when any engine hit a budget — comparisons involving it are
    /// skipped, not failed.
    pub inconclusive: bool,
    /// Everything that tripped.
    pub flaws: Vec<Flaw>,
}

impl CaseReport {
    /// True when the case produced no flaw.
    pub fn clean(&self) -> bool {
        self.flaws.is_empty()
    }
}

fn kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Holds { .. } => "holds",
        Verdict::Violated { .. } => "violated",
        Verdict::LimitReached => "limit",
        Verdict::Cancelled => "cancelled",
        Verdict::Poisoned => "poisoned",
    }
}

fn conclusive(v: &Verdict) -> bool {
    matches!(v, Verdict::Holds { .. } | Verdict::Violated { .. })
}

/// A permutation metamorphosis: shuffles every order-irrelevant list in
/// the spec (pages, declarations, per-page rules, database facts).
pub fn permuted(spec: &ServiceSpec, rng: &mut SplitMix64) -> ServiceSpec {
    let mut s = spec.clone();
    rng.shuffle(&mut s.db_rels);
    rng.shuffle(&mut s.state_props);
    rng.shuffle(&mut s.state_rels);
    rng.shuffle(&mut s.input_props);
    rng.shuffle(&mut s.input_rels);
    rng.shuffle(&mut s.pages);
    rng.shuffle(&mut s.facts);
    for p in &mut s.pages {
        rng.shuffle(&mut p.solicits);
        rng.shuffle(&mut p.input_rules);
        rng.shuffle(&mut p.inserts);
        rng.shuffle(&mut p.deletes);
        rng.shuffle(&mut p.targets);
    }
    s
}

/// A renaming metamorphosis: consistently renames the variable tokens
/// the generator uses (`x`, `y`, `q`, `q2`) across rule heads, rule
/// bodies and the property. Relation, page and proposition names are
/// multi-character, so the token-level rename cannot collide.
pub fn renamed(spec: &ServiceSpec) -> ServiceSpec {
    let map = |id: &str| -> Option<String> {
        match id {
            "x" => Some("vx".into()),
            "y" => Some("vy".into()),
            "q" => Some("vq".into()),
            "q2" => Some("vq2".into()),
            _ => None,
        }
    };
    let mut s = spec.clone();
    for p in &mut s.pages {
        for r in p
            .input_rules
            .iter_mut()
            .chain(p.inserts.iter_mut())
            .chain(p.deletes.iter_mut())
        {
            for v in &mut r.vars {
                if let Some(nv) = map(v) {
                    *v = nv;
                }
            }
            r.body = rename_idents(&r.body, &map);
        }
        for (_, g) in &mut p.targets {
            *g = rename_idents(g, &map);
        }
    }
    s.property = rename_idents(&s.property, &map);
    s
}

/// Runs the full differential battery on one spec.
pub fn run_case(seed: u64, spec: &ServiceSpec, opts: &DiffOptions) -> CaseReport {
    let mut report = CaseReport {
        seed,
        class: String::new(),
        sym: String::new(),
        dbs: 0,
        enum_violations: 0,
        replays: 0,
        inconclusive: false,
        flaws: Vec::new(),
    };
    let flaw = |report: &mut CaseReport, kind: FlawKind, detail: String| {
        report.flaws.push(Flaw { kind, detail });
    };

    // Build + admission.
    let (service, sources) = match spec.build() {
        Ok(pair) => pair,
        Err(errs) => {
            flaw(
                &mut report,
                FlawKind::Build,
                format!("build errors: {errs:?}"),
            );
            return report;
        }
    };
    let property: Property = match parse_property(&spec.property) {
        Ok(p) => p,
        Err(e) => {
            flaw(&mut report, FlawKind::Build, format!("property parse: {e}"));
            return report;
        }
    };
    let pre = precheck(&service, Some(&sources), Some(&property));
    report.class = format!("{:?}", pre.class);
    if !pre.admissible() {
        flaw(
            &mut report,
            FlawKind::Inadmissible,
            pre.refusal().unwrap_or_default(),
        );
        return report;
    }

    // Symbolic base run (sequential).
    let sym_opts = SymbolicOptions {
        node_limit: opts.sym_node_limit,
        ..SymbolicOptions::default()
    };
    let base = match verify_ltl(&service, &property, &sym_opts) {
        Ok(out) => out,
        Err(e) => {
            flaw(
                &mut report,
                FlawKind::EngineError,
                format!("symbolic refused an admissible request: {e}"),
            );
            return report;
        }
    };
    report.sym = kind(&base.verdict).to_string();
    if !conclusive(&base.verdict) {
        report.inconclusive = true;
    }

    // Thread counts: byte-identical verdicts demanded, and the
    // deterministic structural counters must survive the overlapped
    // prefetch too — `force_overlap` spawns real workers even when the
    // machine has one core, so the concurrent path is always exercised.
    for &threads in &opts.threads {
        let t_opts = SymbolicOptions {
            threads,
            force_overlap: true,
            ..sym_opts.clone()
        };
        match verify_ltl(&service, &property, &t_opts) {
            Ok(out) => {
                if out.verdict != base.verdict {
                    flaw(
                        &mut report,
                        FlawKind::ThreadDivergence,
                        format!(
                            "threads={threads}: {:?} vs sequential {:?}",
                            out.verdict, base.verdict
                        ),
                    );
                }
                let structural = |s: &SearchStats| {
                    (
                        s.nodes_interned,
                        s.dedup_hits,
                        s.successors_memoized,
                        s.memo_hits,
                        s.peak_frontier,
                    )
                };
                if structural(&out.stats) != structural(&base.stats) {
                    flaw(
                        &mut report,
                        FlawKind::StatsDivergence,
                        format!(
                            "threads={threads}: structural stats {:?} vs sequential {:?}",
                            structural(&out.stats),
                            structural(&base.stats)
                        ),
                    );
                }
            }
            Err(e) => flaw(
                &mut report,
                FlawKind::EngineError,
                format!("threads={threads}: {e}"),
            ),
        }
    }

    // Slice-vs-full: the base run above slices (cone-of-influence
    // reduction is on by default), so re-running with `slice: false`
    // checks the certified-reduction claim end to end — the full,
    // unsliced service must reach the same verdict *kind* whenever both
    // runs are conclusive (witness lassos may differ textually between
    // the sliced and full state spaces, and either side may exhaust its
    // node budget first, so only conclusive-kind identity is claimed).
    // The check repeats at every diffed thread count with forced
    // overlap, and those slice-off threaded legs must also stay
    // byte-identical to the slice-off sequential run — the determinism
    // contract holds in both slicing modes.
    let full_opts = SymbolicOptions {
        slice: false,
        ..sym_opts.clone()
    };
    match verify_ltl(&service, &property, &full_opts) {
        Ok(full) => {
            if conclusive(&full.verdict)
                && conclusive(&base.verdict)
                && kind(&full.verdict) != kind(&base.verdict)
            {
                flaw(
                    &mut report,
                    FlawKind::SliceDivergence,
                    format!(
                        "sliced verdict {} vs full {} (slice dropped {} rules, {} relations)",
                        kind(&base.verdict),
                        kind(&full.verdict),
                        base.stats.sliced_rules,
                        base.stats.sliced_relations
                    ),
                );
            }
            for &threads in &opts.threads {
                let t_opts = SymbolicOptions {
                    threads,
                    force_overlap: true,
                    ..full_opts.clone()
                };
                match verify_ltl(&service, &property, &t_opts) {
                    Ok(out) if out.verdict == full.verdict => {}
                    Ok(out) => flaw(
                        &mut report,
                        FlawKind::SliceDivergence,
                        format!(
                            "slice off, threads={threads}: {:?} vs sequential {:?}",
                            out.verdict, full.verdict
                        ),
                    ),
                    Err(e) => flaw(
                        &mut report,
                        FlawKind::EngineError,
                        format!("slice off, threads={threads}: {e}"),
                    ),
                }
            }
        }
        Err(e) => flaw(
            &mut report,
            FlawKind::EngineError,
            format!("slice off: {e}"),
        ),
    }

    // Permutation metamorphosis: same fingerprint, same verdict kind.
    let mut perm_rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
    let perm = permuted(spec, &mut perm_rng);
    match perm.build() {
        Ok((perm_service, _)) => {
            let (f0, f1) = (service.fingerprint(), perm_service.fingerprint());
            if f0 != f1 {
                flaw(
                    &mut report,
                    FlawKind::PermutedFingerprint,
                    format!("fingerprint {f0} became {f1} under permutation"),
                );
            }
            match verify_ltl(&perm_service, &property, &sym_opts) {
                Ok(out) if kind(&out.verdict) == kind(&base.verdict) => {}
                Ok(out) => flaw(
                    &mut report,
                    FlawKind::PermutedVerdict,
                    format!("{} became {}", kind(&base.verdict), kind(&out.verdict)),
                ),
                Err(e) => flaw(&mut report, FlawKind::EngineError, format!("permuted: {e}")),
            }
        }
        Err(errs) => flaw(
            &mut report,
            FlawKind::PermutedVerdict,
            format!("permuted spec no longer builds: {errs:?}"),
        ),
    }

    // Renaming metamorphosis: same verdict kind (fingerprints hash
    // variable names, so no fingerprint claim).
    let ren = renamed(spec);
    match (ren.build(), parse_property(&ren.property)) {
        (Ok((ren_service, _)), Ok(ren_property)) => {
            match verify_ltl(&ren_service, &ren_property, &sym_opts) {
                Ok(out) if kind(&out.verdict) == kind(&base.verdict) => {}
                Ok(out) => flaw(
                    &mut report,
                    FlawKind::RenamedVerdict,
                    format!("{} became {}", kind(&base.verdict), kind(&out.verdict)),
                ),
                Err(e) => flaw(&mut report, FlawKind::EngineError, format!("renamed: {e}")),
            }
        }
        (Err(errs), _) => flaw(
            &mut report,
            FlawKind::RenamedVerdict,
            format!("renamed spec no longer builds: {errs:?}"),
        ),
        (_, Err(e)) => flaw(
            &mut report,
            FlawKind::RenamedVerdict,
            format!("renamed property no longer parses: {e}"),
        ),
    }

    // Enumerative sweep: the spec's own database, the empty database,
    // and the bounded enumeration.
    let enum_opts = EnumOptions {
        fresh_values: opts.fresh_values,
        node_limit: opts.enum_node_limit,
        ..EnumOptions::default()
    };
    let mut dbs = vec![Instance::new(), spec.db_instance()];
    dbs.extend(dbgen::enumerate(
        &service.schema,
        opts.db_domain,
        Some(opts.db_max),
    ));
    dbs.dedup();
    let empty_db_outcome = run_enum_sweep(
        &service,
        &property,
        &dbs,
        &enum_opts,
        &base.verdict,
        &mut report,
    );

    // Database-free exactness: when the schema declares no database
    // relations and no database constants, the empty database is the
    // *only* database, so symbolic and enumerative must agree outright,
    // not just one-sidedly. The `FullyPropositional` *class* is not
    // enough: it classifies the rules, and a property can observe a
    // declared database relation no rule touches — found by this very
    // oracle (seeds 243, 581, 1451, … of the first campaign).
    let db_free = service
        .schema
        .relations_of(wave_logic::schema::RelKind::Database)
        .next()
        .is_none()
        && !service
            .schema
            .constants()
            .any(|(_, k)| k == wave_logic::schema::ConstKind::Database);
    if db_free && conclusive(&base.verdict) {
        if let Some(enum_empty) = &empty_db_outcome {
            let (s, e) = (base.holds(), enum_empty.holds());
            if s != e {
                flaw(
                    &mut report,
                    FlawKind::FullyPropExactness,
                    format!(
                        "symbolic {} but enumerative holds={e} on the empty database",
                        kind(&base.verdict)
                    ),
                );
            }
        }
    }

    // Propositional CTL path (Theorem 4.4): `A φ` per database must
    // match the enumerative verdict there.
    let propositional = matches!(
        pre.class,
        ServiceClass::FullyPropositional | ServiceClass::Propositional
    );
    if propositional && property.vars.is_empty() && property.classify() == TemporalClass::Ltl {
        let all_paths = TFormula::Path(PathQuant::A, Box::new(property.body.clone()));
        let ctl_opts = CtlOptions {
            fresh_values: opts.fresh_values,
            ..CtlOptions::default()
        };
        for db in &dbs {
            let enum_out = match verify_ltl_on_db(&service, db, &property, &enum_opts) {
                Ok(out) => out,
                Err(_) => continue,
            };
            let enum_holds = match enum_out {
                EnumOutcome::Holds { .. } => true,
                EnumOutcome::Violated { .. } => false,
                _ => continue,
            };
            match verify_ctl_on_db(&service, db, &all_paths, &ctl_opts) {
                Ok(ctl_holds) if ctl_holds == enum_holds => {}
                Ok(ctl_holds) => flaw(
                    &mut report,
                    FlawKind::CtlPathDisagree,
                    format!("A-path says holds={ctl_holds}, enumerative says holds={enum_holds} on {db:?}"),
                ),
                Err(CtlError::StateLimit) => report.inconclusive = true,
                Err(e) => flaw(
                    &mut report,
                    FlawKind::EngineError,
                    format!("ctl path refused a propositional request: {e}"),
                ),
            }
        }
    }

    report
}

/// Runs the enumerative engine over `dbs`, replay-checking every
/// counterexample and diffing against the symbolic verdict. Returns the
/// outcome on the empty database (always `dbs[0]`) when conclusive.
fn run_enum_sweep(
    service: &wave_core::service::Service,
    property: &Property,
    dbs: &[Instance],
    enum_opts: &EnumOptions,
    sym: &Verdict,
    report: &mut CaseReport,
) -> Option<EnumOutcome> {
    let mut empty_outcome = None;
    for (i, db) in dbs.iter().enumerate() {
        report.dbs += 1;
        let out = match verify_ltl_on_db(service, db, property, enum_opts) {
            Ok(out) => out,
            Err(e) => {
                report.flaws.push(Flaw {
                    kind: FlawKind::EngineError,
                    detail: format!("enumerative failed on {db:?}: {e}"),
                });
                continue;
            }
        };
        match &out {
            EnumOutcome::Violated { .. } => {
                report.enum_violations += 1;
                match replay_outcome(service, db, property, &out) {
                    Ok(()) => report.replays += 1,
                    Err(f) => report.flaws.push(Flaw {
                        kind: FlawKind::ReplayFailed,
                        detail: format!("on {db:?}: {f}"),
                    }),
                }
                if matches!(sym, Verdict::Holds { .. }) {
                    report.flaws.push(Flaw {
                        kind: FlawKind::SymVsEnum,
                        detail: format!(
                            "symbolic holds for all databases, enumerative violates on {db:?}"
                        ),
                    });
                }
            }
            EnumOutcome::Holds { .. } => {}
            EnumOutcome::LimitReached | EnumOutcome::Cancelled => {
                report.inconclusive = true;
            }
        }
        if i == 0
            && matches!(
                out,
                EnumOutcome::Holds { .. } | EnumOutcome::Violated { .. }
            )
        {
            empty_outcome = Some(out);
        }
    }
    empty_outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::{PageSpec, RuleSpec};

    fn toggle_spec() -> ServiceSpec {
        ServiceSpec {
            home: "P0".into(),
            input_props: vec!["g0".into()],
            pages: vec![
                PageSpec {
                    name: "P0".into(),
                    solicits: vec!["g0".into()],
                    targets: vec![("P1".into(), "g0".into())],
                    ..PageSpec::default()
                },
                PageSpec {
                    name: "P1".into(),
                    solicits: vec!["g0".into()],
                    targets: vec![("P0".into(), "g0".into())],
                    ..PageSpec::default()
                },
            ],
            property: "G (P0 | P1)".into(),
            ..ServiceSpec::default()
        }
    }

    #[test]
    fn clean_case_produces_no_flaws() {
        let report = run_case(0, &toggle_spec(), &DiffOptions::default());
        assert!(report.clean(), "{:?}", report.flaws);
        assert_eq!(report.sym, "holds");
        assert!(report.dbs >= 1);
    }

    #[test]
    fn violated_case_is_replayed_not_flagged() {
        let mut spec = toggle_spec();
        spec.property = "G !P1".into();
        let report = run_case(0, &spec, &DiffOptions::default());
        assert!(report.clean(), "{:?}", report.flaws);
        assert_eq!(report.sym, "violated");
        assert!(report.enum_violations >= 1);
        assert_eq!(report.replays, report.enum_violations);
    }

    /// Shrunk repro from the first 3000-seed campaign (seed 2804; seeds
    /// 243, 581, 1451, 1811, 1889, 2445, 2509 shrank to the same core).
    /// The service's *rules* are fully propositional, but the property
    /// observes the declared-yet-unused database relation `r0` — so the
    /// symbolic engine (quantifying over all databases of the schema)
    /// legitimately finds a violating database while the enumerative
    /// engine holds on the empty one. The driver's exactness rule must
    /// key on the schema being database-free, not on the service class.
    #[test]
    fn regression_property_can_observe_unused_db_relation() {
        let spec = ServiceSpec::parse(
            "home P0\n\
             db r0 1\n\
             inputprop g0\n\
             page P0\n\
             \x20 solicit g0\n\
             \x20 goto P1 when g0\n\
             page P1\n\
             property ((!(r0(\"k\")) B r0(\"k\")) | (g0 B F (P1)))\n",
        )
        .unwrap();
        let report = run_case(2804, &spec, &DiffOptions::default());
        assert!(report.clean(), "{:?}", report.flaws);
        assert_eq!(report.sym, "violated", "needs a database with r0(\"k\")");
        assert_eq!(report.class, "FullyPropositional", "rules never touch r0");
    }

    /// A spec with deliberate dead logic — an unreachable page writing a
    /// state prop nothing reads — must slice (the base run drops rules)
    /// and still come back clean: the slice-off leg agrees in kind and
    /// in its own thread determinism.
    #[test]
    fn dead_logic_case_slices_and_stays_clean() {
        let mut spec = toggle_spec();
        spec.state_props = vec!["audit".into()];
        spec.pages.push(PageSpec {
            name: "P2".into(),
            solicits: vec!["g0".into()],
            inserts: vec![RuleSpec {
                rel: "audit".into(),
                vars: vec![],
                body: "g0".into(),
            }],
            targets: vec![("P0".into(), "g0".into())],
            ..PageSpec::default()
        });
        let opts = DiffOptions::default();
        let report = run_case(0, &spec, &opts);
        assert!(report.clean(), "{:?}", report.flaws);
        assert_eq!(report.sym, "holds");
        // The base run really sliced: P2's rules and `audit` are outside
        // the property cone, so the differential leg compared two
        // genuinely different searches.
        let (service, _) = spec.build().unwrap();
        let property = parse_property(&spec.property).unwrap();
        let out = verify_ltl(&service, &property, &SymbolicOptions::default()).unwrap();
        assert!(out.stats.sliced_rules > 0, "expected a non-identity slice");
        assert!(out.stats.sliced_relations > 0);
    }

    #[test]
    fn permutation_preserves_fingerprint_on_a_data_service() {
        let case = generate(2);
        let (s0, _) = case.spec.build().unwrap();
        let mut rng = SplitMix64::seed_from_u64(99);
        for _ in 0..5 {
            let p = permuted(&case.spec, &mut rng);
            let (s1, _) = p.build().unwrap();
            assert_eq!(s0.fingerprint(), s1.fingerprint());
        }
    }

    #[test]
    fn renaming_rewrites_heads_bodies_and_property() {
        let spec = ServiceSpec {
            home: "P0".into(),
            db_rels: vec![("r0".into(), 1)],
            input_rels: vec![("pick".into(), 1)],
            state_rels: vec![("st".into(), 1)],
            pages: vec![PageSpec {
                name: "P0".into(),
                input_rules: vec![RuleSpec {
                    rel: "pick".into(),
                    vars: vec!["y".into()],
                    body: "r0(y)".into(),
                }],
                inserts: vec![RuleSpec {
                    rel: "st".into(),
                    vars: vec!["y".into()],
                    body: "pick(y)".into(),
                }],
                ..PageSpec::default()
            }],
            property: "forall x . G (!(exists q . (pick(q) & q = x)) | r0(x))".into(),
            ..ServiceSpec::default()
        };
        let ren = renamed(&spec);
        assert_eq!(ren.pages[0].input_rules[0].vars, vec!["vy".to_string()]);
        assert_eq!(ren.pages[0].input_rules[0].body, "r0(vy)");
        assert!(ren.property.contains("vq") && ren.property.contains("vx"));
        // Both builds verify to the same verdict via the driver.
        let report = run_case(0, &spec, &DiffOptions::default());
        assert!(report.clean(), "{:?}", report.flaws);
    }
}
