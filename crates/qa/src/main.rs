//! The `wave-qa` campaign driver.
//!
//! ```text
//! wave-qa [--seeds N] [--start S] [--budget SECS] [--json] [--incremental]
//! ```
//!
//! Runs seeds `S .. S+N` through the differential oracle until the seed
//! range or the wall-clock budget is exhausted, whichever comes first.
//! Deterministic and fully offline: the same seed range always replays
//! the same cases. On any flaw the shrunk repro is printed in the
//! parseable spec syntax and the exit code is 1 — this is what the CI
//! `qa-fuzz` job gates on.
//!
//! `--incremental` switches to the warm-engine edit-sequence campaign
//! ([`wave_qa::inc`]): each seed's spec is pushed through a fresh
//! `wave-serve` engine, then mutated repeatedly, demanding every warm
//! answer match a cold run byte for byte (the CI `qa-inc` job).

use std::process::ExitCode;
use std::time::Instant;

use wave_qa::diff::DiffOptions;
use wave_qa::inc::IncOptions;
use wave_qa::{run_inc_seed, run_seed};

struct Args {
    seeds: u64,
    start: u64,
    budget_secs: u64,
    json: bool,
    incremental: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 50,
        start: 0,
        budget_secs: 60,
        json: false,
        incremental: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = num("--seeds")?,
            "--start" => args.start = num("--start")?,
            "--budget" => args.budget_secs = num("--budget")?,
            "--json" => args.json = true,
            "--incremental" => args.incremental = true,
            "--help" | "-h" => {
                println!(
                    "usage: wave-qa [--seeds N] [--start S] [--budget SECS] [--json] \
                     [--incremental]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// The `--incremental` campaign loop.
fn run_incremental(args: &Args) -> ExitCode {
    let opts = IncOptions::default();
    let t0 = Instant::now();
    let mut cases = 0u64;
    let mut edits = 0u64;
    let mut skipped = 0u64;
    let mut cache_hits = 0u64;
    let mut tier_hits = 0u64;
    let mut cold_runs = 0u64;
    let mut flawed: Vec<u64> = Vec::new();
    let mut out_of_budget = false;
    for seed in args.start..args.start.saturating_add(args.seeds) {
        if t0.elapsed().as_secs() >= args.budget_secs {
            out_of_budget = true;
            break;
        }
        let report = run_inc_seed(seed, &opts);
        cases += 1;
        edits += report.edits as u64;
        skipped += report.skipped as u64;
        cache_hits += report.cache_hits as u64;
        tier_hits += report.incremental_hits as u64;
        cold_runs += report.cold_runs as u64;
        if !report.clean() {
            flawed.push(seed);
            eprintln!(
                "== seed {seed}: {} incremental flaw(s) ==",
                report.flaws.len()
            );
            for f in &report.flaws {
                eprintln!("  [{:?}] {}", f.kind, f.detail);
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if args.json {
        println!(
            "{{\"cases\": {cases}, \"edits\": {edits}, \"skipped\": {skipped}, \
             \"cache_hits\": {cache_hits}, \"tier_hits\": {tier_hits}, \
             \"cold_runs\": {cold_runs}, \"flawed_seeds\": {flawed:?}, \
             \"out_of_budget\": {out_of_budget}, \"elapsed_s\": {elapsed:.3}}}"
        );
    } else {
        println!(
            "wave-qa --incremental: {cases} case(s), {edits} edit(s) ({skipped} skipped); \
             {cache_hits} cache / {tier_hits} tier / {cold_runs} cold; {} flaw(s); \
             {elapsed:.1}s{}",
            flawed.len(),
            if out_of_budget { " (budget hit)" } else { "" }
        );
    }
    if flawed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wave-qa: {e}");
            return ExitCode::from(2);
        }
    };
    if args.incremental {
        return run_incremental(&args);
    }
    let opts = DiffOptions::default();
    let t0 = Instant::now();
    let mut cases = 0u64;
    let mut holds = 0u64;
    let mut violated = 0u64;
    let mut inconclusive = 0u64;
    let mut enum_violations = 0u64;
    let mut replays = 0u64;
    let mut flawed: Vec<u64> = Vec::new();
    let mut out_of_budget = false;

    for seed in args.start..args.start.saturating_add(args.seeds) {
        if t0.elapsed().as_secs() >= args.budget_secs {
            out_of_budget = true;
            break;
        }
        let (report, repro) = run_seed(seed, &opts);
        cases += 1;
        match report.sym.as_str() {
            "holds" => holds += 1,
            "violated" => violated += 1,
            _ => {}
        }
        if report.inconclusive {
            inconclusive += 1;
        }
        enum_violations += report.enum_violations as u64;
        replays += report.replays as u64;
        if !report.clean() {
            flawed.push(seed);
            eprintln!("== seed {seed}: {} flaw(s) ==", report.flaws.len());
            for f in &report.flaws {
                eprintln!("  [{:?}] {}", f.kind, f.detail);
            }
            if let Some(min) = repro {
                eprintln!("-- shrunk repro (spec syntax) --");
                eprintln!("{}", min.to_source());
            }
        } else if !args.json {
            println!(
                "seed {seed}: {} [{}] dbs={} cex={} replayed={}",
                report.sym, report.class, report.dbs, report.enum_violations, report.replays
            );
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    if args.json {
        // Flat summary object; no string in it needs escaping.
        println!(
            "{{\"cases\": {cases}, \"sym_holds\": {holds}, \"sym_violated\": {violated}, \
             \"inconclusive\": {inconclusive}, \"enum_violations\": {enum_violations}, \
             \"replayed\": {replays}, \"flawed_seeds\": {flawed:?}, \
             \"out_of_budget\": {out_of_budget}, \"elapsed_s\": {elapsed:.3}}}"
        );
    } else {
        println!(
            "wave-qa: {cases} case(s), {holds} hold / {violated} violated / {inconclusive} \
             inconclusive; {enum_violations} counterexample(s), {replays} replayed; \
             {} flaw(s); {elapsed:.1}s{}",
            flawed.len(),
            if out_of_budget { " (budget hit)" } else { "" }
        );
    }
    if flawed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
