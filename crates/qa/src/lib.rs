//! # wave-qa
//!
//! The cross-engine differential oracle for the verifier stack.
//!
//! The workspace ships three independent decision procedures for
//! overlapping fragments of the PODS 2004 decidability map — the
//! symbolic LTL-FO engine (Theorem 3.5), the explicit-state enumerative
//! baseline, and the propositional CTL(\*) path (Theorem 4.4 / 4.6) —
//! plus a concrete interpreter (Definition 2.3) that all of them claim
//! to abstract. Where the fragments overlap, the engines have *no
//! excuse to disagree*; where a verdict carries a counterexample, the
//! interpreter can re-execute it. `wave-qa` turns both facts into an
//! oracle:
//!
//! * [`gen`] — seeded generation of small services and properties that
//!   are lint-clean and decidable-by-construction;
//! * [`diff`] — the differential driver: every applicable engine, three
//!   thread counts, permutation and renaming metamorphoses, and
//!   concrete replay of every counterexample;
//! * [`inc`] — the incremental leg: seeded edit sequences replayed
//!   through a warm `wave-serve` engine, demanding byte-identical
//!   verdicts against cold runs and zero search on no-op edits;
//! * [`shrink`] — greedy minimization of anything that trips;
//! * [`spec`] — the data-level service representation with a parseable
//!   text form, so shrunk repros can be checked in as regression tests.
//!
//! The `wave-qa` binary (`--seeds N --budget SECS --json`) runs a
//! campaign and exits nonzero with a shrunk repro on any flaw — it is
//! wired into CI as the `qa-fuzz` job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod inc;
pub mod shrink;
pub mod spec;

use diff::{DiffOptions, FlawKind};
use spec::ServiceSpec;

/// Generates, diffs, and (on failure) shrinks one seed. Returns the
/// report and, when flawed, the shrunk repro spec.
pub fn run_seed(seed: u64, opts: &DiffOptions) -> (diff::CaseReport, Option<ServiceSpec>) {
    let case = gen::generate(seed);
    let report = diff::run_case(seed, &case.spec, opts);
    if report.clean() {
        return (report, None);
    }
    let kinds: Vec<FlawKind> = report.flaws.iter().map(|f| f.kind).collect();
    let still_fails = |s: &ServiceSpec| {
        let r = diff::run_case(seed, s, opts);
        kinds.iter().any(|k| r.flaws.iter().any(|f| f.kind == *k))
    };
    let min = shrink::shrink(&case.spec, &still_fails);
    (report, Some(min))
}

/// Generates and runs one seed through the incremental leg (no shrink:
/// the seed itself reproduces the edit sequence exactly).
pub fn run_inc_seed(seed: u64, opts: &inc::IncOptions) -> inc::IncReport {
    let case = gen::generate(seed);
    inc::run_incremental_case(seed, &case.spec, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-tree mini-campaign: every seed in the range must come back
    /// clean. The CI `qa-fuzz` job runs the same loop at 200 seeds in
    /// release mode; this keeps a smaller always-on slice in `cargo test`.
    #[test]
    fn campaign_seeds_are_clean() {
        let opts = DiffOptions::default();
        for seed in 0..12 {
            let (report, repro) = run_seed(seed, &opts);
            assert!(
                report.clean(),
                "seed {seed} flawed: {:?}\nrepro:\n{}",
                report.flaws,
                repro.map(|s| s.to_source()).unwrap_or_default()
            );
        }
    }
}
