//! The data-level service specification the fuzzer manipulates.
//!
//! The type itself now lives in `wave_core::spec` (the wave-lint CLI
//! reads the same text format, and lint cannot depend on qa); this
//! module re-exports it so qa-internal paths keep working.

pub use wave_core::spec::{rename_idents, PageSpec, RuleSpec, ServiceSpec};
