//! Greedy minimization of failing specs.
//!
//! Given a spec and a predicate ("still fails the same way"), the
//! shrinker repeatedly tries one-element removals — a database fact, a
//! navigation target, a rule, a solicitation, a whole page, a
//! declaration — and keeps any removal under which the predicate still
//! holds, looping to a fixpoint. Candidates that break the build are
//! harmless: the predicate re-runs the differential driver, and a spec
//! that no longer builds no longer fails *the same way*, so the
//! candidate is simply rejected.
//!
//! The result is what gets printed as a repro
//! ([`ServiceSpec::to_source`]) and checked into a regression test.

use crate::spec::ServiceSpec;

/// All one-step reductions of `spec`, most aggressive first (whole
/// pages before single facts) so the greedy loop converges quickly.
fn candidates(spec: &ServiceSpec) -> Vec<ServiceSpec> {
    let mut out = Vec::new();

    // Drop a non-home page and every edge into it.
    for i in 0..spec.pages.len() {
        if spec.pages[i].name == spec.home {
            continue;
        }
        let doomed = spec.pages[i].name.clone();
        let mut s = spec.clone();
        s.pages.remove(i);
        for p in &mut s.pages {
            p.targets.retain(|(t, _)| *t != doomed);
        }
        out.push(s);
    }

    // Drop one target / rule / solicitation.
    for i in 0..spec.pages.len() {
        for j in 0..spec.pages[i].targets.len() {
            let mut s = spec.clone();
            s.pages[i].targets.remove(j);
            out.push(s);
        }
        for j in 0..spec.pages[i].inserts.len() {
            let mut s = spec.clone();
            s.pages[i].inserts.remove(j);
            out.push(s);
        }
        for j in 0..spec.pages[i].deletes.len() {
            let mut s = spec.clone();
            s.pages[i].deletes.remove(j);
            out.push(s);
        }
        for j in 0..spec.pages[i].input_rules.len() {
            let mut s = spec.clone();
            s.pages[i].input_rules.remove(j);
            out.push(s);
        }
        for j in 0..spec.pages[i].solicits.len() {
            let mut s = spec.clone();
            s.pages[i].solicits.remove(j);
            out.push(s);
        }
    }

    // Drop one fact.
    for i in 0..spec.facts.len() {
        let mut s = spec.clone();
        s.facts.remove(i);
        out.push(s);
    }

    // Drop one declaration (the build/precheck re-run rejects the
    // candidate if anything still refers to it).
    macro_rules! drop_each {
        ($field:ident) => {
            for i in 0..spec.$field.len() {
                let mut s = spec.clone();
                s.$field.remove(i);
                out.push(s);
            }
        };
    }
    drop_each!(db_rels);
    drop_each!(state_props);
    drop_each!(state_rels);
    drop_each!(input_props);
    drop_each!(input_rels);

    out
}

/// Greedily minimizes `spec` under `still_fails`, to a fixpoint. The
/// returned spec satisfies `still_fails`; the input must too.
pub fn shrink(spec: &ServiceSpec, still_fails: &dyn Fn(&ServiceSpec) -> bool) -> ServiceSpec {
    debug_assert!(still_fails(spec), "shrink needs a failing input");
    let mut current = spec.clone();
    loop {
        let mut reduced = false;
        for cand in candidates(&current) {
            if still_fails(&cand) {
                current = cand;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn shrinks_to_the_failure_core() {
        // Artificial failure: "the spec still has a fact for r0 and at
        // least two pages". The minimum satisfying that is exactly two
        // pages, one fact, and the r0 declaration the fact needs.
        let case = generate(7); // data-flow shape has facts and >= 2 pages
        let spec = {
            let mut s = case.spec.clone();
            if s.facts.is_empty() {
                s.db_rels = vec![("r0".into(), 1)];
                s.facts.push(("r0".into(), vec!["a".into()]));
            }
            s
        };
        let fails = |s: &ServiceSpec| !s.facts.is_empty() && s.pages.len() >= 2;
        assert!(fails(&spec));
        let min = shrink(&spec, &fails);
        assert_eq!(min.pages.len(), 2, "{}", min.to_source());
        assert_eq!(min.facts.len(), 1, "{}", min.to_source());
        assert!(min.pages.iter().all(|p| p.targets.is_empty()
            && p.inserts.is_empty()
            && p.deletes.is_empty()
            && p.input_rules.is_empty()
            && p.solicits.is_empty()));
    }

    #[test]
    fn shrunk_real_failure_still_fails_and_round_trips() {
        use crate::diff::{run_case, DiffOptions, FlawKind};
        // Make a real flaw: a generated case whose property is replaced
        // by one referencing an undeclared relation — the admission gate
        // refuses it, and the shrinker must keep exactly that refusal.
        let mut spec = generate(3).spec;
        spec.property = "G nosuchrel".into();
        let opts = DiffOptions::default();
        let fails = |s: &ServiceSpec| {
            run_case(0, s, &opts)
                .flaws
                .iter()
                .any(|f| f.kind == FlawKind::Inadmissible)
        };
        assert!(fails(&spec));
        let min = shrink(&spec, &fails);
        assert!(fails(&min));
        // The repro prints and parses.
        let text = min.to_source();
        assert_eq!(ServiceSpec::parse(&text).unwrap(), min);
        // And it is small: one page, no database clutter.
        assert_eq!(min.pages.len(), 1, "{text}");
        assert!(min.facts.is_empty(), "{text}");
    }
}
