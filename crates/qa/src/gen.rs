//! Seeded generation of small, decidable-by-construction fuzz cases.
//!
//! Every generated service is lint-clean and inside the paper's
//! decidable classes *by construction*: rule bodies and navigation
//! guards are quantifier-free (always input-bounded, §3), input options
//! rules guard their head variables with database atoms, and properties
//! are drawn from templates the admission gate accepts. The generator
//! still runs [`wave_verifier::precheck::precheck`] on every candidate
//! and regenerates (with a salted seed) on the rare refusal, so the
//! differential driver only ever sees admissible requests — a refusal
//! after the retry cap is itself a finding.
//!
//! Three service shapes are produced, exercising the three engine legs:
//!
//! * **fully propositional** — no database, everything arity 0
//!   (Theorem 4.6 territory; symbolic and enumerative must agree
//!   exactly, and the CTL path applies);
//! * **propositional-with-data** — a database gates navigation but
//!   states stay arity 0 (Theorem 4.4 territory; the CTL path still
//!   applies per database);
//! * **input-bounded with data flow** — positive-arity input and state
//!   relations carry database values through insertions and deletions
//!   (Theorem 3.5 territory; symbolic vs enumerative only).

use wave_rng::{Rng, SplitMix64};

use crate::spec::{PageSpec, RuleSpec, ServiceSpec};

/// One generated case.
#[derive(Clone, Debug)]
pub struct Case {
    /// The seed that produced it (reproduces the case exactly).
    pub seed: u64,
    /// The generated spec.
    pub spec: ServiceSpec,
}

/// How many salted attempts to make before declaring the generator
/// itself broken.
const MAX_ATTEMPTS: u64 = 64;

/// Generates the case for `seed`. Deterministic; panics only if
/// [`MAX_ATTEMPTS`] consecutive candidates are inadmissible, which
/// would be a generator bug worth crashing on.
pub fn generate(seed: u64) -> Case {
    for attempt in 0..MAX_ATTEMPTS {
        let mut rng = SplitMix64::seed_from_u64(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let spec = candidate(&mut rng);
        if admissible(&spec) {
            return Case { seed, spec };
        }
    }
    panic!("seed {seed}: no admissible candidate in {MAX_ATTEMPTS} attempts — generator bug");
}

/// True when the spec builds and passes the admission gate together
/// with its property.
pub fn admissible(spec: &ServiceSpec) -> bool {
    let Ok((service, sources)) = spec.build() else {
        return false;
    };
    let Ok(property) = wave_logic::parser::parse_property(&spec.property) else {
        return false;
    };
    wave_verifier::precheck::precheck(&service, Some(&sources), Some(&property)).admissible()
}

fn candidate(rng: &mut SplitMix64) -> ServiceSpec {
    let shape = rng.gen_range(0usize..3);
    let n_pages = rng.gen_range(2usize..5);
    let n_gprops = rng.gen_range(1usize..3);
    let n_sprops = rng.gen_range(0usize..3);
    let with_db = shape > 0;
    let with_data_flow = shape == 2;

    let mut spec = ServiceSpec {
        home: "P0".into(),
        ..ServiceSpec::default()
    };
    for g in 0..n_gprops {
        spec.input_props.push(format!("g{g}"));
    }
    for s in 0..n_sprops {
        spec.state_props.push(format!("s{s}"));
    }
    if with_db {
        spec.db_rels.push(("r0".into(), 1));
    }
    if with_data_flow {
        spec.input_rels.push(("pick".into(), 1));
        spec.state_rels.push(("st".into(), 1));
    }

    // Guard vocabulary: literals over input props and (previous) state
    // props — quantifier-free, hence always input-bounded.
    let mut guard_atoms: Vec<String> = (0..n_gprops).map(|g| format!("g{g}")).collect();
    for s in 0..n_sprops {
        guard_atoms.push(format!("s{s}"));
    }
    if with_db {
        // A ground database atom gates navigation through the data.
        guard_atoms.push("r0(\"k\")".to_string());
    }
    let guard = |rng: &mut SplitMix64| -> String {
        let lit = |rng: &mut SplitMix64| {
            let a = rng.choose(&guard_atoms).unwrap().clone();
            if rng.gen_bool(0.3) {
                format!("!{a}")
            } else {
                a
            }
        };
        match rng.gen_range(0usize..4) {
            0 | 1 => lit(rng),
            2 => format!("({} & {})", lit(rng), lit(rng)),
            _ => format!("({} | {})", lit(rng), lit(rng)),
        }
    };

    for i in 0..n_pages {
        let mut page = PageSpec {
            name: format!("P{i}"),
            ..PageSpec::default()
        };
        for g in 0..n_gprops {
            if g == 0 || rng.gen_bool(0.7) {
                page.solicits.push(format!("g{g}"));
            }
        }
        if with_data_flow && rng.gen_bool(0.7) {
            page.input_rules.push(RuleSpec {
                rel: "pick".into(),
                vars: vec!["y".into()],
                body: "r0(y)".into(),
            });
            if rng.gen_bool(0.6) {
                page.inserts.push(RuleSpec {
                    rel: "st".into(),
                    vars: vec!["y".into()],
                    body: "pick(y)".into(),
                });
            }
            if rng.gen_bool(0.3) {
                page.deletes.push(RuleSpec {
                    rel: "st".into(),
                    vars: vec!["y".into()],
                    body: "st(y) & pick(y)".into(),
                });
            }
        }
        for s in 0..n_sprops {
            if rng.gen_bool(0.4) {
                page.inserts.push(RuleSpec {
                    rel: format!("s{s}"),
                    vars: vec![],
                    body: guard(rng),
                });
            }
            if rng.gen_bool(0.2) {
                page.deletes.push(RuleSpec {
                    rel: format!("s{s}"),
                    vars: vec![],
                    body: guard(rng),
                });
            }
        }
        // A ring edge keeps every page reachable; extra edges (possibly
        // overlapping, which exercises the error-page semantics) are
        // layered on top.
        page.targets
            .push((format!("P{}", (i + 1) % n_pages), "g0".into()));
        if rng.gen_bool(0.5) {
            let j = rng.gen_range(0..n_pages);
            page.targets
                .push((format!("P{j}"), format!("(!g0 & {})", guard(rng))));
        }
        if rng.gen_bool(0.25) {
            let j = rng.gen_range(0..n_pages);
            page.targets.push((format!("P{j}"), guard(rng)));
        }
        spec.pages.push(page);
    }

    if with_db {
        for v in ["a", "b", "k"] {
            if rng.gen_bool(0.5) {
                spec.facts.push(("r0".into(), vec![v.to_string()]));
            }
        }
    }

    spec.property = property(rng, &spec, n_pages, n_gprops, n_sprops, with_data_flow);
    spec
}

/// A fresh random property over `spec`'s vocabulary — the mutation the
/// incremental leg ([`crate::inc`]) uses for its property-swap edit.
/// Assumes the generator's page naming (`P0..Pn`); on a hand-written
/// spec the result may be inadmissible, which callers must tolerate.
pub fn random_property(spec: &ServiceSpec, rng: &mut SplitMix64) -> String {
    property(
        rng,
        spec,
        spec.pages.len(),
        spec.input_props.len(),
        spec.state_props.len(),
        !spec.input_rels.is_empty(),
    )
}

/// A random property: mostly a small LTL tree over the propositional
/// vocabulary; occasionally a quantified data template (Example 3.4
/// style) when the service carries data flow.
fn property(
    rng: &mut SplitMix64,
    spec: &ServiceSpec,
    n_pages: usize,
    n_gprops: usize,
    n_sprops: usize,
    with_data_flow: bool,
) -> String {
    if with_data_flow && rng.gen_bool(0.3) {
        return match rng.gen_range(0usize..3) {
            0 => "G !(exists y . pick(y))".to_string(),
            1 => "forall x . G (!(exists q . (pick(q) & q = x)) | r0(x))".to_string(),
            _ => "forall x . ((!st(x)) B (exists q . (pick(q) & q = x)))".to_string(),
        };
    }
    let mut atoms: Vec<String> = (0..n_pages).map(|i| format!("P{i}")).collect();
    for g in 0..n_gprops {
        atoms.push(format!("g{g}"));
    }
    for s in 0..n_sprops {
        atoms.push(format!("s{s}"));
    }
    if !spec.db_rels.is_empty() {
        atoms.push("r0(\"k\")".to_string());
    }
    ltl(rng, &atoms, 3)
}

/// A random LTL formula of depth at most `depth`, fully parenthesized.
fn ltl(rng: &mut SplitMix64, atoms: &[String], depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.25) {
        return rng.choose(atoms).unwrap().clone();
    }
    let d = depth - 1;
    match rng.gen_range(0usize..8) {
        0 => format!("!({})", ltl(rng, atoms, d)),
        1 => format!("({} & {})", ltl(rng, atoms, d), ltl(rng, atoms, d)),
        2 => format!("({} | {})", ltl(rng, atoms, d), ltl(rng, atoms, d)),
        3 => format!("X ({})", ltl(rng, atoms, d)),
        4 => format!("F ({})", ltl(rng, atoms, d)),
        5 => format!("G ({})", ltl(rng, atoms, d)),
        6 => format!("({} U {})", ltl(rng, atoms, d), ltl(rng, atoms, d)),
        _ => format!("({} B {})", ltl(rng, atoms, d), ltl(rng, atoms, d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..10 {
            assert_eq!(generate(seed).spec, generate(seed).spec, "seed {seed}");
        }
    }

    #[test]
    fn generated_cases_are_admissible_and_round_trip() {
        for seed in 0..25 {
            let case = generate(seed);
            assert!(admissible(&case.spec), "seed {seed}");
            let text = case.spec.to_source();
            let back = ServiceSpec::parse(&text).expect("repro text parses");
            assert_eq!(back, case.spec, "seed {seed} round trip");
        }
    }

    #[test]
    fn all_three_shapes_appear() {
        let (mut fully, mut with_db, mut data_flow) = (false, false, false);
        for seed in 0..40 {
            let spec = generate(seed).spec;
            if spec.db_rels.is_empty() {
                fully = true;
            } else if spec.input_rels.is_empty() {
                with_db = true;
            } else {
                data_flow = true;
            }
        }
        assert!(
            fully && with_db && data_flow,
            "{fully} {with_db} {data_flow}"
        );
    }
}
