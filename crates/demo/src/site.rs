//! The Figure 2 e-commerce Web service.
//!
//! All nineteen pages of the WAVE demo, reconstructed from Figure 2 and
//! the rules printed in Example 2.2 (pages HP and LSP verbatim; the rest
//! from the figure's links and buttons). The whole specification is
//! **input-bounded** — the one delicate spot, the product-index page
//! whose options depend on the previous search, uses a `prev` atom
//! (`∃r h d (prev_laptopsearch(r,h,d) ∧ laptop(p,r,h,d))`) exactly as the
//! paper advertises (`prev` relations are "very useful when defining
//! tractable restrictions", §2).
//!
//! Page inventory (names as in Figure 2):
//!
//! | page | role |
//! |---|---|
//! | HP | home: login / register / clear |
//! | NP | new-user registration form |
//! | RP | successful registration |
//! | MP | error message (failed login) |
//! | CP | customer page: search links, cart, logout |
//! | AP | administrator page |
//! | DSP / LSP | desktop / laptop search forms |
//! | PIP | product index (search results) |
//! | PP | product detail: add to cart |
//! | CC | cart contents: buy / empty |
//! | UPP | payment: amount + authorize |
//! | COP | order confirmation |
//! | POP | pending orders (admin) |
//! | VOP | view order |
//! | OSP | order status |
//! | SCP | shipment confirmation |
//! | CCP | cancel confirmation |
//! | DCP | deletion confirmation |

use wave_core::builder::ServiceBuilder;
use wave_core::provenance::ServiceSources;
use wave_core::service::Service;

/// Builds the full Figure 2 site.
pub fn full_site() -> Service {
    full_site_builder()
        .build()
        .expect("the Figure 2 site must validate")
}

/// [`full_site`] plus the rule sources recorded during parsing, for
/// span-carrying diagnostics (`wave-lint`).
pub fn full_site_with_sources() -> (Service, ServiceSources) {
    full_site_builder()
        .build_with_sources()
        .expect("the Figure 2 site must validate")
}

fn full_site_builder() -> ServiceBuilder {
    let mut b = ServiceBuilder::new("HP");
    // ---- database schema (see `catalog`) ----
    b.database_relation("user", 2)
        .database_relation("criteria", 3)
        .database_relation("prod_prices", 2)
        .database_relation("prod_names", 2)
        .database_relation("laptop", 4)
        .database_relation("desktop", 4)
        // ---- input constants ----
        .input_constant("name")
        .input_constant("password")
        .input_constant("new_name")
        .input_constant("new_password")
        .input_constant("card")
        // ---- inputs ----
        .input_relation("button", 1)
        .input_relation("laptopsearch", 3)
        .input_relation("desktopsearch", 3)
        .input_relation("pickprod", 2)
        .input_relation("pay", 1)
        // ---- states ----
        .state_relation("error", 1)
        .state_prop("logged_in")
        .state_prop("registered")
        .state_relation("userchoice", 3)
        .state_relation("cart", 2)
        .state_relation("pick", 2)
        .state_relation("pick_pid", 1)
        .state_relation("pick_price", 1)
        .state_prop("paid")
        .state_prop("order_pending")
        .state_prop("order_shipped")
        .state_prop("order_cancelled")
        // ---- actions ----
        .action_relation("conf", 2)
        .action_relation("ship", 2)
        .action_relation("cancel", 2);

    // ---------------- HP — verbatim from Example 2.2 ----------------
    b.page("HP")
        .solicit_constant("name")
        .solicit_constant("password")
        .input_rule(
            "button",
            &["x"],
            r#"x = "login" | x = "register" | x = "clear""#,
        )
        .insert_rule(
            "error",
            &["e"],
            r#"e = "failed login" & !user(name, password) & button("login")"#,
        )
        .insert_rule(
            "logged_in",
            &[],
            r#"user(name, password) & button("login")"#,
        )
        .target("HP", r#"button("clear")"#)
        .target("NP", r#"button("register")"#)
        .target(
            "CP",
            r#"user(name, password) & button("login") & name != "Admin""#,
        )
        .target(
            "AP",
            r#"user(name, password) & button("login") & name = "Admin""#,
        )
        .target("MP", r#"!user(name, password) & button("login")"#);

    // ---------------- NP — new user registration ----------------
    b.page("NP")
        .solicit_constant("new_name")
        .solicit_constant("new_password")
        .input_rule("button", &["x"], r#"x = "register" | x = "cancel""#)
        .insert_rule("registered", &[], r#"button("register")"#)
        .insert_rule("logged_in", &[], r#"button("register")"#)
        .target("RP", r#"button("register")"#)
        .target("HP", r#"button("cancel")"#);

    // ---------------- RP — successful registration ----------------
    b.page("RP")
        .input_rule("button", &["x"], r#"x = "continue" | x = "logout""#)
        .target("CP", r#"button("continue")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- MP — error message page ----------------
    b.page("MP")
        .input_rule("button", &["x"], r#"x = "back""#)
        .delete_rule("error", &["e"], r#"e = "failed login" & button("back")"#)
        .target("HP", r#"button("back")"#);

    // ---------------- CP — customer page ----------------
    b.page("CP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "desktop" | x = "laptop" | x = "view cart" | x = "logout""#,
        )
        .target("DSP", r#"button("desktop")"#)
        .target("LSP", r#"button("laptop")"#)
        .target("CC", r#"button("view cart")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- AP — administrator page ----------------
    b.page("AP")
        .input_rule("button", &["x"], r#"x = "order" | x = "logout""#)
        .target("POP", r#"button("order")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- LSP — verbatim from Example 2.2 ----------------
    b.page("LSP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "search" | x = "view cart" | x = "logout""#,
        )
        .input_rule(
            "laptopsearch",
            &["r", "h", "d"],
            r#"criteria("laptop", "ram", r) & criteria("laptop", "hdd", h) & criteria("laptop", "display", d)"#,
        )
        .insert_rule(
            "userchoice",
            &["r", "h", "d"],
            r#"laptopsearch(r, h, d) & button("search")"#,
        )
        .target("HP", r#"button("logout")"#)
        .target(
            "PIP",
            r#"(exists r h d . laptopsearch(r, h, d)) & button("search")"#,
        )
        .target("CC", r#"button("view cart")"#);

    // ---------------- DSP — mirror of LSP for desktops ----------------
    b.page("DSP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "search" | x = "view cart" | x = "logout""#,
        )
        .input_rule(
            "desktopsearch",
            &["r", "h", "d"],
            r#"criteria("desktop", "ram", r) & criteria("desktop", "hdd", h) & criteria("desktop", "display", d)"#,
        )
        .insert_rule(
            "userchoice",
            &["r", "h", "d"],
            r#"desktopsearch(r, h, d) & button("search")"#,
        )
        .target("HP", r#"button("logout")"#)
        .target(
            "PIP",
            r#"(exists r h d . desktopsearch(r, h, d)) & button("search")"#,
        )
        .target("CC", r#"button("view cart")"#);

    // ---------------- PIP — product index (search results) ----------------
    // The matching products: the previous step's search parameters come in
    // through prev_laptopsearch / prev_desktopsearch — the input-bounded
    // way to thread values between pages.
    b.page("PIP")
        .input_rule(
            "pickprod",
            &["p", "pr"],
            r#"((exists r h d . (prev_laptopsearch(r, h, d) & laptop(p, r, h, d)))
               | (exists r h d . (prev_desktopsearch(r, h, d) & desktop(p, r, h, d))))
              & prod_prices(p, pr)"#,
        )
        .input_rule(
            "button",
            &["x"],
            r#"x = "view cart" | x = "continue" | x = "logout""#,
        )
        .insert_rule("pick", &["p", "pr"], "pickprod(p, pr)")
        .insert_rule("pick_pid", &["p"], "exists pr . pickprod(p, pr)")
        .insert_rule("pick_price", &["pr"], "exists p . pickprod(p, pr)")
        .target("PP", "exists p pr . pickprod(p, pr)")
        .target("CC", r#"button("view cart")"#)
        .target("CP", r#"button("continue")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- PP — product detail ----------------
    b.page("PP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "add to cart" | x = "back" | x = "view cart""#,
        )
        .insert_rule(
            "cart",
            &["p", "pr"],
            r#"pick(p, pr) & button("add to cart")"#,
        )
        .target("CC", r#"button("add to cart") | button("view cart")"#)
        .target("CP", r#"button("back")"#);

    // ---------------- CC — cart contents ----------------
    b.page("CC")
        .input_rule(
            "button",
            &["x"],
            r#"x = "buy" | x = "empty cart" | x = "continue" | x = "logout""#,
        )
        .delete_rule(
            "cart",
            &["p", "pr"],
            r#"cart(p, pr) & button("empty cart")"#,
        )
        .target("UPP", r#"button("buy")"#)
        .target("CP", r#"button("continue") | button("empty cart")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- UPP — user payment ----------------
    b.page("UPP")
        .solicit_constant("card")
        .input_rule("pay", &["a"], "exists p . prod_prices(p, a)")
        .input_rule("button", &["x"], r#"x = "authorize payment" | x = "back""#)
        .insert_rule("paid", &[], r#"button("authorize payment")"#)
        .insert_rule("order_pending", &[], r#"button("authorize payment")"#)
        .action_rule(
            "conf",
            &["u", "a"],
            r#"u = name & pay(a) & pick_price(a) & button("authorize payment")"#,
        )
        .target("COP", r#"button("authorize payment")"#)
        .target("CC", r#"button("back")"#);

    // ---------------- COP — order confirmation ----------------
    b.page("COP")
        .input_rule("button", &["x"], r#"x = "continue" | x = "logout""#)
        .target("CP", r#"button("continue")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- POP — pending orders (admin) ----------------
    b.page("POP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "ship" | x = "view" | x = "back" | x = "logout""#,
        )
        .insert_rule("order_shipped", &[], r#"order_pending & button("ship")"#)
        .action_rule(
            "ship",
            &["u", "p"],
            r#"u = name & pick_pid(p) & order_pending & button("ship")"#,
        )
        .target("SCP", r#"order_pending & button("ship")"#)
        .target("VOP", r#"button("view")"#)
        .target("AP", r#"button("back")"#)
        .target("HP", r#"button("logout")"#);

    // ---------------- VOP — view order ----------------
    b.page("VOP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "delete" | x = "status" | x = "back""#,
        )
        .target("DCP", r#"button("delete")"#)
        .target("OSP", r#"button("status")"#)
        .target("POP", r#"button("back")"#);

    // ---------------- OSP — order status ----------------
    b.page("OSP")
        .input_rule("button", &["x"], r#"x = "cancel" | x = "back""#)
        .insert_rule(
            "order_cancelled",
            &[],
            r#"order_pending & button("cancel")"#,
        )
        .delete_rule("order_pending", &[], r#"button("cancel")"#)
        .action_rule(
            "cancel",
            &["u", "p"],
            r#"u = name & pick_pid(p) & button("cancel")"#,
        )
        .target("CCP", r#"button("cancel")"#)
        .target("VOP", r#"button("back")"#);

    // ---------------- SCP / CCP / DCP — confirmations ----------------
    b.page("SCP")
        .input_rule("button", &["x"], r#"x = "back" | x = "logout""#)
        .target("POP", r#"button("back")"#)
        .target("HP", r#"button("logout")"#);
    b.page("CCP")
        .input_rule("button", &["x"], r#"x = "back" | x = "logout""#)
        .target("OSP", r#"button("back")"#)
        .target("HP", r#"button("logout")"#);
    b.page("DCP")
        .input_rule("button", &["x"], r#"x = "back" | x = "logout""#)
        .target("VOP", r#"button("back")"#)
        .target("HP", r#"button("logout")"#);

    b
}

/// A trimmed, fast-to-verify *checkout core*: CP → UPP → COP with a
/// single-slot pick state — sized for the symbolic verifier (the full
/// site is also input-bounded, but its symbol set makes the PSPACE search
/// expensive; see EXPERIMENTS.md).
pub fn checkout_core() -> Service {
    checkout_core_builder()
        .build()
        .expect("checkout core must validate")
}

/// [`checkout_core`] plus recorded rule sources.
pub fn checkout_core_with_sources() -> (Service, ServiceSources) {
    checkout_core_builder()
        .build_with_sources()
        .expect("checkout core must validate")
}

fn checkout_core_builder() -> ServiceBuilder {
    let mut b = ServiceBuilder::new("CP");
    b.database_relation("prod_prices", 2)
        .input_relation("button", 1)
        .input_relation("pickprod", 1)
        .state_relation("pick_pid", 1)
        .state_prop("paid")
        .action_relation("ship", 1);

    b.page("CP")
        .input_rule("pickprod", &["p"], "exists a . prod_prices(p, a)")
        // single-slot pick: a new choice replaces the previous one
        .insert_rule("pick_pid", &["p"], "pickprod(p)")
        .delete_rule(
            "pick_pid",
            &["p"],
            "pick_pid(p) & exists q . (pickprod(q) & q != p)",
        )
        .target("UPP", "exists p . pickprod(p)");

    b.page("UPP")
        .input_rule("button", &["x"], r#"x = "authorize payment" | x = "back""#)
        .insert_rule("paid", &[], r#"button("authorize payment")"#)
        .action_rule(
            "ship",
            &["p"],
            r#"pick_pid(p) & button("authorize payment")"#,
        )
        .target("COP", r#"button("authorize payment")"#)
        .target("CP", r#"button("back")"#);

    b.page("COP")
        .input_rule("button", &["x"], r#"x = "continue""#)
        .target("CP", r#"button("continue")"#);

    b
}

/// How many independent toggle flags [`checkout_bench`] layers on top of
/// the checkout core. Each flag doubles the reachable symbolic state
/// space, so the bench service explores ~2^k× the configurations of
/// [`checkout_core`] while keeping the same per-node successor shape.
const BENCH_TOGGLES: usize = 2;

/// A scaled-up checkout for `bench_symbolic`: the [`checkout_core`]
/// page graph plus [`BENCH_TOGGLES`] independent toggle flags flipped
/// from CP. The checkout core saturates around 3k interned
/// configurations — too small for thread-scaling measurements, where
/// per-run setup dominates the search. The flags multiply the state
/// space combinatorially without changing the service's decidable class
/// or the Fig. 2 payment-safety verdict.
pub fn checkout_bench() -> Service {
    checkout_bench_builder()
        .build()
        .expect("checkout bench must validate")
}

/// [`checkout_bench`] plus recorded rule sources.
pub fn checkout_bench_with_sources() -> (Service, ServiceSources) {
    checkout_bench_builder()
        .build_with_sources()
        .expect("checkout bench must validate")
}

fn checkout_bench_builder() -> ServiceBuilder {
    let mut b = checkout_core_builder();
    let toggles: Vec<(String, String)> = (0..BENCH_TOGGLES)
        .map(|i| (format!("tog{i}"), format!("flag{i}")))
        .collect();
    for (tog, flag) in &toggles {
        b.input_relation(tog, 0).state_prop(flag);
    }
    // Re-open CP: each visit may flip any subset of the flags, so the
    // reachable state space gains a full 2^k propositional cube.
    b.page("CP");
    for (tog, flag) in &toggles {
        b.input_prop_on_page(tog)
            .insert_rule(flag, &[], &format!("{tog} & !{flag}"))
            .delete_rule(flag, &[], &format!("{tog} & {flag}"));
    }
    b
}

/// A deliberately flawed *audit site*: a working login → dashboard flow
/// carrying intentional dead logic, hand-modeled as the slicing/lint
/// exercise (first entry of the flawed-service corpus, ROADMAP item 4).
///
/// The dead logic, all invisible to any property over the live flow:
///
/// * an `ADMIN` page no target rule reaches (W012/W023) — its rules,
///   including a `grant` action, can never fire;
/// * a write-only `audited` state relation recording logins and
///   dashboard refreshes that no rule body reads (W010/W024);
/// * a `reason` input solicited only on the dead admin page (W025).
///
/// The service is input-bounded, so the symbolic engine admits it, and
/// property-directed slicing removes all three families wholesale.
pub fn audit_site() -> Service {
    audit_site_builder()
        .build()
        .expect("audit site must validate")
}

/// [`audit_site`] plus recorded rule sources.
pub fn audit_site_with_sources() -> (Service, ServiceSources) {
    audit_site_builder()
        .build_with_sources()
        .expect("audit site must validate")
}

fn audit_site_builder() -> ServiceBuilder {
    let mut b = ServiceBuilder::new("HP");
    b.database_relation("user", 2)
        .input_relation("button", 1)
        .input_relation("reason", 1)
        .state_prop("logged_in")
        .state_prop("audited")
        .action_prop("greet")
        .action_prop("grant")
        .input_constant("name")
        .input_constant("password");

    b.page("HP")
        .solicit_constant("name")
        .solicit_constant("password")
        .input_rule("button", &["x"], r#"x = "login" | x = "clear""#)
        .insert_rule(
            "logged_in",
            &[],
            r#"user(name, password) & button("login")"#,
        )
        // Audit every login attempt — but nothing ever reads `audited`.
        .insert_rule("audited", &[], r#"button("login")"#)
        .target("DASH", r#"user(name, password) & button("login")"#)
        .target("HP", r#"!user(name, password)"#);

    b.page("DASH")
        .input_rule("button", &["x"], r#"x = "refresh" | x = "logout""#)
        .insert_rule("audited", &[], r#"button("refresh")"#)
        .delete_rule("logged_in", &[], r#"button("logout")"#)
        .action_rule("greet", &[], "logged_in")
        .target("HP", r#"button("logout")"#)
        .target("DASH", r#"button("refresh")"#);

    // The admin page exists in the spec but no target rule points at it:
    // every rule below is dead, and `reason` is never consumable.
    b.page("ADMIN")
        .input_rule("reason", &["x"], r#"x = "maintenance" | x = "ban""#)
        .delete_rule("audited", &[], r#"reason("maintenance")"#)
        .action_rule("grant", &[], "logged_in")
        .target("HP", "true");

    b
}

/// The propositional navigation abstraction of Example 4.3: the same page
/// graph with all non-input atoms abstracted away (database lookups
/// replaced by a free `lookup_ok` input proposition, so both outcomes stay
/// reachable), states propositional. Suitable for the Theorem 4.4 / 4.6
/// verifiers.
pub fn navigation_abstraction() -> Service {
    navigation_abstraction_builder()
        .build()
        .expect("navigation abstraction must validate")
}

/// [`navigation_abstraction`] plus recorded rule sources.
pub fn navigation_abstraction_with_sources() -> (Service, ServiceSources) {
    navigation_abstraction_builder()
        .build_with_sources()
        .expect("navigation abstraction must validate")
}

fn navigation_abstraction_builder() -> ServiceBuilder {
    let mut b = ServiceBuilder::new("HP");
    b.input_relation("button", 1)
        .input_relation("lookup_ok", 0)
        .input_relation("is_admin", 0)
        .state_prop("logged_in")
        .state_prop("paid");

    b.page("HP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "login" | x = "register" | x = "clear""#,
        )
        .input_prop_on_page("lookup_ok")
        .input_prop_on_page("is_admin")
        .insert_rule("logged_in", &[], r#"lookup_ok & button("login")"#)
        .target("HP", r#"button("clear")"#)
        .target("NP", r#"button("register")"#)
        .target("CP", r#"lookup_ok & button("login") & !is_admin"#)
        .target("AP", r#"lookup_ok & button("login") & is_admin"#)
        .target("MP", r#"!lookup_ok & button("login")"#);

    b.page("NP")
        .input_rule("button", &["x"], r#"x = "register" | x = "cancel""#)
        .insert_rule("logged_in", &[], r#"button("register")"#)
        .target("RP", r#"button("register")"#)
        .target("HP", r#"button("cancel")"#);

    b.page("RP")
        .input_rule("button", &["x"], r#"x = "continue" | x = "logout""#)
        .delete_rule("logged_in", &[], r#"button("logout")"#)
        .target("CP", r#"button("continue")"#)
        .target("HP", r#"button("logout")"#);

    b.page("MP")
        .input_rule("button", &["x"], r#"x = "back""#)
        .target("HP", r#"button("back")"#);

    b.page("CP")
        .input_rule(
            "button",
            &["x"],
            r#"x = "search" | x = "view cart" | x = "logout""#,
        )
        .delete_rule("logged_in", &[], r#"button("logout")"#)
        .target("LSP", r#"button("search")"#)
        .target("CC", r#"button("view cart")"#)
        .target("HP", r#"button("logout")"#);

    b.page("AP")
        .input_rule("button", &["x"], r#"x = "logout""#)
        .delete_rule("logged_in", &[], r#"button("logout")"#)
        .target("HP", r#"button("logout")"#);

    b.page("LSP")
        .input_rule("button", &["x"], r#"x = "search" | x = "logout""#)
        .target("PIP", r#"button("search")"#)
        .target("HP", r#"button("logout")"#);

    b.page("PIP")
        .input_rule("button", &["x"], r#"x = "pick" | x = "continue""#)
        .target("PP", r#"button("pick")"#)
        .target("CP", r#"button("continue")"#);

    b.page("PP")
        .input_rule("button", &["x"], r#"x = "add to cart" | x = "back""#)
        .target("CC", r#"button("add to cart")"#)
        .target("CP", r#"button("back")"#);

    b.page("CC")
        .input_rule("button", &["x"], r#"x = "buy" | x = "continue""#)
        .target("UPP", r#"button("buy")"#)
        .target("CP", r#"button("continue")"#);

    b.page("UPP")
        .input_rule("button", &["x"], r#"x = "authorize payment" | x = "back""#)
        .insert_rule("paid", &[], r#"button("authorize payment")"#)
        .target("COP", r#"button("authorize payment")"#)
        .target("CC", r#"button("back")"#);

    b.page("COP")
        .input_rule("button", &["x"], r#"x = "continue" | x = "logout""#)
        .delete_rule("logged_in", &[], r#"button("logout")"#)
        .target("CP", r#"button("continue")"#)
        .target("HP", r#"button("logout")"#);

    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use wave_core::classify;
    use wave_core::run::{InputChoice, Runner};
    use wave_logic::tuple;

    #[test]
    fn full_site_validates_and_is_input_bounded() {
        let s = full_site();
        assert_eq!(s.pages.len(), 19, "all Figure 2 pages");
        let violations = classify::input_bounded_violations(&s);
        assert!(
            violations.is_empty(),
            "the reconstruction is input-bounded: {violations:?}"
        );
    }

    #[test]
    fn checkout_bench_is_input_bounded_and_keeps_the_core_shape() {
        let s = checkout_bench();
        assert!(classify::input_bounded_violations(&s).is_empty());
        // Same page graph as the core, plus the toggle vocabulary.
        assert_eq!(s.pages.len(), checkout_core().pages.len());
    }

    #[test]
    fn checkout_core_and_abstraction_classify() {
        assert!(classify::input_bounded_violations(&checkout_core()).is_empty());
        let nav = navigation_abstraction();
        assert!(classify::is_propositional(&nav), "Theorem 4.4 class");
        // `button` stays parameterized ("inputs can still be parameterized
        // in a propositional Web service", §4), so it is not *fully*
        // propositional.
        assert!(!classify::is_fully_propositional(&nav));
    }

    /// The running example's end-to-end scenario: login, search laptops,
    /// pick one, add to cart, buy, authorize payment.
    #[test]
    fn full_purchase_scenario() {
        let s = full_site();
        let db = catalog::tiny();
        let r = Runner::new(&s, &db);

        // σ0: HP, login as alice.
        let c = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "alice")
                    .with_constant("password", "pw1")
                    .with_tuple("button", tuple!["login"]),
            )
            .unwrap();
        assert_eq!(c.page, "HP");

        // σ1: CP; go to laptop search.
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["laptop"]),
            )
            .unwrap();
        assert_eq!(c.page, "CP");
        assert!(c.state.prop("logged_in"));

        // σ2: LSP; search 8gb/1tb/13in.
        let c = r
            .step(
                &c,
                &InputChoice::empty()
                    .with_tuple("laptopsearch", tuple!["8gb", "1tb", "13in"])
                    .with_tuple("button", tuple!["search"]),
            )
            .unwrap();
        assert_eq!(c.page, "LSP");

        // σ3: PIP; the search result p1 is offered (via prev_laptopsearch).
        let core = r.transition_core(&c).unwrap();
        assert_eq!(core.page, "PIP");
        let opts = r
            .entry_options(s.page("PIP").unwrap(), &core.state, &core.prev, &c.provided)
            .unwrap();
        assert!(opts["pickprod"].contains(&tuple!["p1", 999]));
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("pickprod", tuple!["p1", 999]),
            )
            .unwrap();
        assert_eq!(c.page, "PIP");
        assert!(c
            .state
            .contains("userchoice", &tuple!["8gb", "1tb", "13in"]));

        // σ4: PP; add to cart.
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["add to cart"]),
            )
            .unwrap();
        assert_eq!(c.page, "PP");
        assert!(c.state.contains("pick", &tuple!["p1", 999]));

        // σ5: CC; buy.
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["buy"]),
            )
            .unwrap();
        assert_eq!(c.page, "CC");
        assert!(c.state.contains("cart", &tuple!["p1", 999]));

        // σ6: UPP; pay the right amount and authorize.
        let c = r
            .step(
                &c,
                &InputChoice::empty()
                    .with_constant("card", "4242")
                    .with_tuple("pay", tuple![999])
                    .with_tuple("button", tuple!["authorize payment"]),
            )
            .unwrap();
        assert_eq!(c.page, "UPP");

        // σ7: COP; the conf action fired for alice at 999.
        let c = r.step(&c, &InputChoice::empty()).unwrap();
        assert_eq!(c.page, "COP");
        assert!(c.state.prop("paid"));
        assert!(c.state.prop("order_pending"));
        assert!(c.action.contains("conf", &tuple!["alice", 999]));
    }

    #[test]
    fn failed_login_goes_to_message_page() {
        let s = full_site();
        let db = catalog::tiny();
        let r = Runner::new(&s, &db);
        let c = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "alice")
                    .with_constant("password", "nope")
                    .with_tuple("button", tuple!["login"]),
            )
            .unwrap();
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["back"]),
            )
            .unwrap();
        assert_eq!(c.page, "MP");
        assert!(c.state.contains("error", &tuple!["failed login"]));
        // back clears the error and returns home
        let c = r.step(&c, &InputChoice::empty()).unwrap();
        assert_eq!(c.page, "HP");
        assert_eq!(c.state.cardinality("error"), 0);
    }

    #[test]
    fn admin_login_reaches_admin_pages() {
        let s = full_site();
        let db = catalog::tiny();
        let r = Runner::new(&s, &db);
        let c = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "Admin")
                    .with_constant("password", "root")
                    .with_tuple("button", tuple!["login"]),
            )
            .unwrap();
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["order"]),
            )
            .unwrap();
        assert_eq!(c.page, "AP");
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["view"]),
            )
            .unwrap();
        assert_eq!(c.page, "POP");
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("button", tuple!["status"]),
            )
            .unwrap();
        assert_eq!(c.page, "VOP");
        let c = r.step(&c, &InputChoice::empty()).unwrap();
        assert_eq!(c.page, "OSP");
    }

    #[test]
    fn registration_path() {
        let s = full_site();
        let db = catalog::tiny();
        let r = Runner::new(&s, &db);
        let c = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "bob")
                    .with_constant("password", "x")
                    .with_tuple("button", tuple!["register"]),
            )
            .unwrap();
        let c = r
            .step(
                &c,
                &InputChoice::empty()
                    .with_constant("new_name", "bob")
                    .with_constant("new_password", "pw")
                    .with_tuple("button", tuple!["register"]),
            )
            .unwrap();
        assert_eq!(c.page, "NP");
        let c = r.step(&c, &InputChoice::empty()).unwrap();
        assert_eq!(c.page, "RP");
        assert!(c.state.prop("registered"));
        assert!(c.state.prop("logged_in"));
    }

    #[test]
    fn empty_cart_clears_cart() {
        let s = full_site();
        let db = catalog::tiny();
        let r = Runner::new(&s, &db);
        // Shortcut: walk to CC via view cart and check empty-cart deletion
        // on a synthetic cart entry.
        let c0 = r
            .initial(
                &InputChoice::empty()
                    .with_constant("name", "alice")
                    .with_constant("password", "pw1")
                    .with_tuple("button", tuple!["login"]),
            )
            .unwrap();
        let mut c1 = r
            .step(
                &c0,
                &InputChoice::empty().with_tuple("button", tuple!["view cart"]),
            )
            .unwrap();
        assert_eq!(c1.page, "CP");
        c1.state.insert("cart", tuple!["p1", 999]);
        let c2 = r
            .step(
                &c1,
                &InputChoice::empty().with_tuple("button", tuple!["empty cart"]),
            )
            .unwrap();
        assert_eq!(c2.page, "CC");
        let c3 = r.step(&c2, &InputChoice::empty()).unwrap();
        assert_eq!(c3.page, "CP");
        assert_eq!(c3.state.cardinality("cart"), 0, "cart emptied");
    }
}
