//! # wave-demo
//!
//! The paper's running example, reconstructed:
//!
//! * [`catalog`] — a synthetic computer-store database generator
//!   (products, search criteria, registered users), standing in for the
//!   WAVE demo's backing database (the original site is long gone; see
//!   DESIGN.md's substitution table).
//! * [`site`] — the **Figure 2** e-commerce Web service: all nineteen
//!   pages of the demo (HP, NP, RP, MP, CP, AP, DSP, LSP, PIP, PP, CC,
//!   UPP, COP, POP, VOP, OSP, SCP, CCP, DCP), with the HP and LSP rules
//!   exactly as printed in Example 2.2, the remaining pages reconstructed
//!   from the figure's links and buttons. Also: a trimmed input-bounded
//!   *checkout core* sized for the symbolic verifier, and the
//!   propositional *navigation abstraction* of Example 4.3.
//! * [`hierarchy`] — the **Figure 1** category hierarchy as a Web service
//!   with input-driven search (Example 4.8), with a scalable generator
//!   for benchmarks.
//! * [`properties`] — the paper's example properties ((1) of Example 3.2,
//!   (4) of Example 3.4, the CTL properties of Example 4.3, the CTL\*-FO
//!   property of Example 4.1) stated against these services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod hierarchy;
pub mod properties;
pub mod site;
