//! The paper's example properties, stated against the demo services.

use wave_logic::parser::{parse_property, parse_temporal};
use wave_logic::temporal::{Property, TFormula};

/// Property (1), Example 3.2: whenever page `P` is reached, page `Q` is
/// eventually reached as well — `G(¬P) ∨ F(P ∧ F Q)`.
pub fn reach_then(p: &str, q: &str) -> Property {
    parse_property(&format!("G (!{p}) | F ({p} & F {q})")).expect("property parses")
}

/// Property (4), Example 3.4 — the input-bounded rewriting of "any
/// shipped product was previously paid for":
/// `∀pid ∀price [ β'(pid, price) B (conf(name, price) ∧ ship(name, pid)) ]`
/// where `β'` = `UPP ∧ pay(price) ∧ button("authorize payment") ∧
/// pick(pid, price) ∧ prod_prices(pid, price)`.
///
/// With the paper's `φ B ψ ≡ ¬(¬φ U ψ)` ("ψ cannot happen before φ"),
/// the confirm-and-ship pair is the *second* operand: it may not occur
/// before the authorized payment `β'`. (The PODS text's typography places
/// a negation that would make the sentence vacuously false at step 0
/// under the stated `B` definition; this is the reading that matches the
/// prose "any shipped product be previously paid for".)
pub fn paid_before_ship() -> Property {
    parse_property(
        r#"forall pid price .
            (UPP & (exists a . (pay(a) & a = price))
                 & (exists x . (button(x) & x = "authorize payment"))
                 & pick(pid, price) & prod_prices(pid, price))
            B (conf(name, price) & ship(name, pid))"#,
    )
    .expect("property parses")
}

/// Example 4.3 first property: from any page it is possible to navigate
/// back to the home page — `AG EF HP`.
pub fn always_can_go_home() -> TFormula {
    parse_temporal("A G (E F HP)", &[]).expect("property parses")
}

/// Example 4.3 second property: after login, the user can reach a page
/// where payment can be authorized —
/// `AG((HP ∧ button("login")) → EF button("authorize payment"))`.
pub fn login_can_reach_payment() -> TFormula {
    parse_temporal(
        r#"A G ((HP & button("login")) -> E F button("authorize payment"))"#,
        &[],
    )
    .expect("property parses")
}

/// Example 4.1 (propositional abstraction): whenever a product is bought,
/// it eventually ships, and until then the order can still be cancelled —
/// `AG(bought → A((EF cancel) U ship))`. Stated over the propositions the
/// abstraction provides.
pub fn cancellable_until_ship(bought: &str, cancel: &str, ship: &str) -> TFormula {
    parse_temporal(
        &format!("A G ({bought} -> A ((E F {cancel}) U {ship}))"),
        &[],
    )
    .expect("property parses")
}

/// Error-freeness as a navigational LTL property: `G ¬<error page>`.
pub fn never_errors(error_page: &str) -> Property {
    parse_property(&format!("G !{error_page}")).expect("property parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_logic::temporal::TemporalClass;

    #[test]
    fn classifications_match_the_paper() {
        assert_eq!(reach_then("PP", "CC").classify(), TemporalClass::Ltl);
        assert_eq!(paid_before_ship().classify(), TemporalClass::Ltl);
        assert_eq!(always_can_go_home().classify(), TemporalClass::Ctl);
        assert_eq!(login_can_reach_payment().classify(), TemporalClass::Ctl);
        assert_eq!(
            cancellable_until_ship("paid", "cancel", "shipped").classify(),
            TemporalClass::Ctl
        );
    }

    #[test]
    fn paid_before_ship_is_input_bounded_on_the_site() {
        let s = crate::site::full_site();
        let p = paid_before_ship();
        assert_eq!(p.vars, vec!["pid".to_string(), "price".to_string()]);
        p.check_input_bounded(&s.schema)
            .expect("the Example 3.4 rewriting is input-bounded");
    }

    #[test]
    fn property_one_is_trivially_input_bounded() {
        let s = crate::site::full_site();
        reach_then("PP", "CC")
            .check_input_bounded(&s.schema)
            .expect("no quantifiers, trivially bounded");
    }
}
