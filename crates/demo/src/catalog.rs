//! Synthetic computer-store databases.
//!
//! The demo site's schema, as reconstructed from Examples 2.2/3.3/3.4:
//!
//! * `user(name, password)` — registered customers (plus `Admin`),
//! * `criteria(category, attribute, value)` — legal search parameter
//!   values (the LSP input rule of Example 2.2 reads these),
//! * `prod_prices(pid, price)` and `prod_names(pid, pname)` — the catalog
//!   in the *split* form Example 3.4 introduces to make the payment
//!   property input-bounded,
//! * `laptop(pid, ram, hdd, display)` / `desktop(pid, ram, hdd, display)`
//!   — search indexes by category.

use wave_rng::Rng;

use wave_logic::instance::Instance;
use wave_logic::tuple;
use wave_logic::value::Value;

/// Parameters of the generated store.
#[derive(Clone, Debug)]
pub struct CatalogSpec {
    /// Number of laptop products.
    pub laptops: usize,
    /// Number of desktop products.
    pub desktops: usize,
    /// Number of registered customers (besides `Admin`).
    pub customers: usize,
    /// Distinct values per search attribute.
    pub attr_values: usize,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            laptops: 3,
            desktops: 2,
            customers: 2,
            attr_values: 2,
        }
    }
}

/// Generates a store database.
pub fn generate(spec: &CatalogSpec, rng: &mut impl Rng) -> Instance {
    let mut db = Instance::new();
    db.insert("user", tuple!["Admin", "root"]);
    for i in 0..spec.customers {
        db.insert("user", tuple![format!("cust{i}"), format!("pw{i}")]);
    }
    let ram = |k: usize| format!("{}gb", 4 << k);
    let hdd = |k: usize| format!("{}tb", k + 1);
    let dsp = |k: usize| format!("{}in", 13 + k);
    for k in 0..spec.attr_values {
        for cat in ["laptop", "desktop"] {
            db.insert("criteria", tuple![cat, "ram", ram(k).as_str()]);
            db.insert("criteria", tuple![cat, "hdd", hdd(k).as_str()]);
            db.insert("criteria", tuple![cat, "display", dsp(k).as_str()]);
        }
    }
    let mut pid = 0usize;
    for (count, cat) in [(spec.laptops, "laptop"), (spec.desktops, "desktop")] {
        for _ in 0..count {
            pid += 1;
            let id = format!("p{pid}");
            let price = Value::Int(rng.gen_range(300..3000));
            db.insert("prod_prices", tuple![id.as_str(), price.clone()]);
            db.insert(
                "prod_names",
                tuple![id.as_str(), format!("{cat}-{pid}").as_str()],
            );
            let r = ram(rng.gen_range(0..spec.attr_values));
            let h = hdd(rng.gen_range(0..spec.attr_values));
            let d = dsp(rng.gen_range(0..spec.attr_values));
            db.insert(cat, tuple![id.as_str(), r.as_str(), h.as_str(), d.as_str()]);
        }
    }
    db
}

/// A tiny deterministic store for unit tests: one customer
/// (`alice`/`pw1`), one laptop `p1` at 999 matching `8gb/1tb/13in`.
pub fn tiny() -> Instance {
    let mut db = Instance::new();
    db.insert("user", tuple!["Admin", "root"]);
    db.insert("user", tuple!["alice", "pw1"]);
    db.insert("criteria", tuple!["laptop", "ram", "8gb"]);
    db.insert("criteria", tuple!["laptop", "hdd", "1tb"]);
    db.insert("criteria", tuple!["laptop", "display", "13in"]);
    db.insert("criteria", tuple!["desktop", "ram", "8gb"]);
    db.insert("criteria", tuple!["desktop", "hdd", "1tb"]);
    db.insert("criteria", tuple!["desktop", "display", "13in"]);
    db.insert("prod_prices", tuple!["p1", 999]);
    db.insert("prod_names", tuple!["p1", "swift-13"]);
    db.insert("laptop", tuple!["p1", "8gb", "1tb", "13in"]);
    db.insert("prod_prices", tuple!["p2", 1500]);
    db.insert("prod_names", tuple!["p2", "tower-x"]);
    db.insert("desktop", tuple!["p2", "8gb", "1tb", "13in"]);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn generated_catalog_is_consistent() {
        let mut rng = wave_rng::SplitMix64::seed_from_u64(7);
        let spec = CatalogSpec {
            laptops: 4,
            desktops: 3,
            customers: 2,
            attr_values: 2,
        };
        let db = generate(&spec, &mut rng);
        assert_eq!(db.cardinality("user"), 3); // Admin + 2
        assert_eq!(db.cardinality("prod_prices"), 7);
        assert_eq!(db.cardinality("prod_names"), 7);
        assert_eq!(db.cardinality("laptop"), 4);
        assert_eq!(db.cardinality("desktop"), 3);
        // criteria values cover both categories and all attributes
        assert_eq!(db.cardinality("criteria"), 2 * 3 * 2);
        // every product has a price and a name
        for t in db.tuples("laptop") {
            let pid = t[0].clone();
            assert!(db.tuples("prod_prices").any(|p| p[0] == pid));
            assert!(db.tuples("prod_names").any(|p| p[0] == pid));
        }
    }

    #[test]
    fn tiny_store_has_the_running_example_rows() {
        let db = tiny();
        assert!(db.contains("user", &tuple!["alice", "pw1"]));
        assert!(db.contains("criteria", &tuple!["laptop", "ram", "8gb"]));
        assert!(db.contains("prod_prices", &tuple!["p1", 999]));
    }
}
