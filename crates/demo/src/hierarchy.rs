//! The Figure 1 category hierarchy and input-driven search services
//! (Example 4.8).
//!
//! Figure 1's fragment: `products → {new, used}`, `new → {desktops,
//! laptops}`, `used → {desktops, laptops}` — a user navigates the category
//! graph `R_I`, seeing only in-stock categories. [`figure1`] builds that
//! exact graph; [`generate`] scales it to arbitrary depth and branching
//! for the EXP-F1 benchmarks.

use wave_core::builder::ServiceBuilder;
use wave_core::service::Service;
use wave_logic::instance::Instance;
use wave_logic::tuple;
use wave_logic::value::Value;

/// Builds the input-driven search navigator service of Example 4.8:
/// single unary input `pick`, database graph `cat_graph`, seed `i0`,
/// filter `in_stock(y)`.
pub fn navigator() -> Service {
    let mut b = ServiceBuilder::new("SP");
    b.database_relation("cat_graph", 2)
        .database_relation("in_stock", 1)
        .database_constant("i0")
        .state_prop("not_start")
        .input_relation("pick", 1)
        .page("SP")
        .input_rule(
            "pick",
            &["y"],
            "(!not_start & y = i0) | (not_start & (exists x . (prev_pick(x) & cat_graph(x, y))) & in_stock(y))",
        )
        .insert_rule("not_start", &[], "!not_start");
    b.build().expect("navigator must validate")
}

/// The exact Figure 1 database: the category fragment, everything in
/// stock, seeded at `products`.
pub fn figure1() -> Instance {
    let mut db = Instance::new();
    let edges = [
        ("products", "new"),
        ("products", "used"),
        ("new", "desktops"),
        ("new", "laptops"),
        ("used", "desktops"),
        ("used", "laptops"),
    ];
    for (a, b) in edges {
        db.insert("cat_graph", tuple![a, b]);
    }
    for n in ["products", "new", "used", "desktops", "laptops"] {
        db.insert("in_stock", tuple![n]);
    }
    db.set_constant("i0", Value::str("products"));
    db
}

/// A scalable hierarchy: a `branching`-ary tree of the given `depth`;
/// every `stock_every`-th node is in stock. Returns the database (seeded
/// at the root) and the node count.
pub fn generate(depth: usize, branching: usize, stock_every: usize) -> (Instance, usize) {
    let mut db = Instance::new();
    let mut count = 1usize;
    let mut frontier = vec!["n0".to_string()];
    db.insert("in_stock", tuple!["n0"]);
    for _ in 0..depth {
        let mut next = Vec::new();
        for parent in &frontier {
            for _ in 0..branching {
                let child = format!("n{count}");
                db.insert("cat_graph", tuple![parent.as_str(), child.as_str()]);
                if count.is_multiple_of(stock_every.max(1)) {
                    db.insert("in_stock", tuple![child.as_str()]);
                }
                next.push(child);
                count += 1;
            }
        }
        frontier = next;
    }
    db.set_constant("i0", Value::str("n0"));
    (db, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::classify::input_driven_shape;
    use wave_core::run::{InputChoice, Runner};

    #[test]
    fn navigator_matches_definition_47() {
        let s = navigator();
        let shape = input_driven_shape(&s).expect("Def. 4.7 shape");
        assert_eq!(shape.input_rel, "pick");
        assert_eq!(shape.search_rel, "cat_graph");
        assert_eq!(shape.seed_const, "i0");
    }

    #[test]
    fn figure1_navigation() {
        let s = navigator();
        let db = figure1();
        let r = Runner::new(&s, &db);
        // seed pick: products
        let c = r
            .initial(&InputChoice::empty().with_tuple("pick", tuple!["products"]))
            .unwrap();
        assert_eq!(c.page, "SP");
        // navigate products → new
        let c = r
            .step(&c, &InputChoice::empty().with_tuple("pick", tuple!["new"]))
            .unwrap();
        assert!(c.state.prop("not_start"));
        // new → laptops
        let c = r
            .step(
                &c,
                &InputChoice::empty().with_tuple("pick", tuple!["laptops"]),
            )
            .unwrap();
        assert!(c.prev.contains("prev_pick", &tuple!["new"]));
        // laptops is a leaf: only the empty pick remains
        let core = r.transition_core(&c).unwrap();
        let opts = r
            .entry_options(s.page("SP").unwrap(), &core.state, &core.prev, &c.provided)
            .unwrap();
        assert!(opts["pick"].is_empty(), "leaves have no successors");
    }

    #[test]
    fn out_of_stock_categories_hidden() {
        let s = navigator();
        let mut db = figure1();
        db.remove("in_stock", &tuple!["used"]);
        let r = Runner::new(&s, &db);
        let c = r
            .initial(&InputChoice::empty().with_tuple("pick", tuple!["products"]))
            .unwrap();
        let core = r.transition_core(&c).unwrap();
        let opts = r
            .entry_options(s.page("SP").unwrap(), &core.state, &core.prev, &c.provided)
            .unwrap();
        assert!(opts["pick"].contains(&tuple!["new"]));
        assert!(!opts["pick"].contains(&tuple!["used"]), "out of stock");
    }

    #[test]
    fn generator_counts_nodes() {
        let (db, n) = generate(3, 2, 1);
        assert_eq!(n, 1 + 2 + 4 + 8);
        assert_eq!(db.cardinality("cat_graph"), 14);
        assert_eq!(db.cardinality("in_stock"), 15);
        let (_, n2) = generate(2, 3, 2);
        assert_eq!(n2, 1 + 3 + 9);
    }
}
