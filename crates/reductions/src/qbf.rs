//! Quantified Boolean formulas and the Lemma A.6 reduction.
//!
//! Lemma A.6 proves PSPACE-hardness of error-freeness by encoding a QBF
//! `φ` as an input-bounded Web service `W_φ` that is error-free iff `φ`
//! is false: the home page solicits two inputs `I0`, `I1` over the
//! database's unary relation `R`; two target rules fire simultaneously
//! (→ ambiguity → error page) exactly when the user picks `I0 = 0`,
//! `I1 = 1` and `φ` — with `x_i` read as `x_i = 1` and `∃x` bounded by
//! `I0(x) ∨ I1(x)` — evaluates to true.
//!
//! Because the encoding is input-bounded, our own Theorem 3.5 engine
//! decides the QBF through it — the test suite cross-checks that round
//! trip against the reference evaluator below.

use wave_core::builder::ServiceBuilder;
use wave_core::service::Service;
use wave_logic::formula::{Formula, Term};

/// A quantified Boolean formula over variables `x0, x1, …` (named by
/// index). The paper's normal form uses `∨, ¬, ∃`; `∧`/`∀` are provided
/// for convenience and desugared by duality where needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Qbf {
    /// Propositional variable `x_i`.
    Var(usize),
    /// Negation.
    Not(Box<Qbf>),
    /// Disjunction.
    Or(Box<Qbf>, Box<Qbf>),
    /// Conjunction.
    And(Box<Qbf>, Box<Qbf>),
    /// Existential quantification over `x_i`.
    Exists(usize, Box<Qbf>),
    /// Universal quantification over `x_i`.
    Forall(usize, Box<Qbf>),
}

impl Qbf {
    /// Reference evaluation under an assignment (bit `i` of `env` = `x_i`).
    pub fn eval(&self, env: u64) -> bool {
        match self {
            Qbf::Var(i) => env & (1 << i) != 0,
            Qbf::Not(f) => !f.eval(env),
            Qbf::Or(a, b) => a.eval(env) || b.eval(env),
            Qbf::And(a, b) => a.eval(env) && b.eval(env),
            Qbf::Exists(i, f) => f.eval(env | (1 << i)) || f.eval(env & !(1 << i)),
            Qbf::Forall(i, f) => f.eval(env | (1 << i)) && f.eval(env & !(1 << i)),
        }
    }

    /// Truth of a closed QBF.
    pub fn truth(&self) -> bool {
        self.eval(0)
    }

    /// Largest variable index used (None when variable-free).
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Qbf::Var(i) => Some(*i),
            Qbf::Not(f) => f.max_var(),
            Qbf::Or(a, b) | Qbf::And(a, b) => a.max_var().max(b.max_var()),
            Qbf::Exists(i, f) | Qbf::Forall(i, f) => Some(*i).max(f.max_var()),
        }
    }

    /// Translates to the FO formula `φ'` of Lemma A.6: `x_i` becomes
    /// `x_i = 1`, quantifiers become input-bounded over `I0(x) ∨ I1(x)`.
    fn to_fo(&self) -> Formula {
        match self {
            Qbf::Var(i) => Formula::eq(Term::var(format!("x{i}")), Term::lit(1)),
            Qbf::Not(f) => Formula::not(f.to_fo()),
            Qbf::Or(a, b) => Formula::or([a.to_fo(), b.to_fo()]),
            Qbf::And(a, b) => Formula::and([a.to_fo(), b.to_fo()]),
            Qbf::Exists(i, f) => {
                let x = format!("x{i}");
                Formula::exists(vec![x.clone()], Formula::and([guard(&x), f.to_fo()]))
            }
            Qbf::Forall(i, f) => {
                let x = format!("x{i}");
                Formula::forall(vec![x.clone()], Formula::implies(guard(&x), f.to_fo()))
            }
        }
    }
}

/// The Lemma A.6 guard `I0(x) ∨ I1(x)` — not literally a single input
/// atom, so the strict input-bounded grammar wants the quantifier split:
/// `∃x(α ∧ ψ)` per input atom. We produce the split form directly.
fn guard(x: &str) -> Formula {
    Formula::or([
        Formula::rel("I0", vec![Term::var(x)]),
        Formula::rel("I1", vec![Term::var(x)]),
    ])
}

/// Splits `∃x((I0(x) ∨ I1(x)) ∧ ψ)` into the strictly input-bounded
/// `∃x(I0(x) ∧ ψ) ∨ ∃x(I1(x) ∧ ψ)` (and dually for `∀`).
fn strictify(f: &Formula) -> Formula {
    match f {
        Formula::Exists(vars, body) => {
            let [x] = vars.as_slice() else {
                return f.clone();
            };
            if let Formula::And(parts) = body.as_ref() {
                if let Some(Formula::Or(guards)) = parts.first() {
                    let rest: Vec<Formula> = parts[1..].iter().map(strictify).collect();
                    return Formula::or(guards.iter().map(|g| {
                        Formula::exists(
                            vec![x.clone()],
                            Formula::and(std::iter::once(g.clone()).chain(rest.iter().cloned())),
                        )
                    }));
                }
            }
            Formula::exists(vars.clone(), strictify(body))
        }
        Formula::Forall(vars, body) => {
            let [x] = vars.as_slice() else {
                return f.clone();
            };
            if let Formula::Or(parts) = body.as_ref() {
                // body = ¬(I0(x) ∨ I1(x)) ∨ ψ, built as ¬guard ∨ ψ
                if let Some(Formula::Not(inner)) = parts.first() {
                    if let Formula::Or(guards) = inner.as_ref() {
                        let rest: Vec<Formula> = parts[1..].iter().map(strictify).collect();
                        return Formula::and(guards.iter().map(|g| {
                            Formula::forall(
                                vec![x.clone()],
                                Formula::or(
                                    std::iter::once(Formula::not(g.clone()))
                                        .chain(rest.iter().cloned()),
                                ),
                            )
                        }));
                    }
                }
            }
            Formula::forall(vars.clone(), strictify(body))
        }
        Formula::Not(g) => Formula::not(strictify(g)),
        Formula::And(fs) => Formula::and(fs.iter().map(strictify)),
        Formula::Or(fs) => Formula::or(fs.iter().map(strictify)),
        other => other.clone(),
    }
}

/// Builds the Lemma A.6 service `W_φ`: error-free iff `φ` is false.
pub fn encode(phi: &Qbf) -> Service {
    let mut b = ServiceBuilder::new("W0");
    b.database_relation("R", 1)
        .input_relation("I0", 1)
        .input_relation("I1", 1)
        .page("W0")
        .input_rule("I0", &["x"], "R(x)")
        .input_rule("I1", &["x"], "R(x)");
    let mut service = b.build().expect("scaffold is valid");

    // Target rules Wi ← I0(0) ∧ I1(1) ∧ 0 ≠ 1 ∧ φ', for two distinct
    // targets, so φ' true ⇒ ambiguity ⇒ error page.
    let phi_fo = strictify(&phi.to_fo());
    let body = Formula::and([
        Formula::rel("I0", vec![Term::lit(0)]),
        Formula::rel("I1", vec![Term::lit(1)]),
        Formula::neq(Term::lit(0), Term::lit(1)),
        phi_fo,
    ]);
    // Define the target pages W1, W2 (arbitrary, per the proof); pages
    // are added on the existing service directly.
    for name in ["W1", "W2"] {
        service
            .schema
            .add_relation(name, 0, wave_logic::schema::RelKind::Page)
            .expect("fresh page name");
        service
            .pages
            .insert(name.to_string(), wave_core::page::Page::new(name));
    }
    let w0 = service.pages.get_mut("W0").expect("home exists");
    for name in ["W1", "W2"] {
        w0.target_rules.push(wave_core::rules::TargetRule {
            target: name.to_string(),
            body: body.clone(),
        });
    }
    service.validate().expect("encoding is a valid service");
    service
}

/// Deterministic pseudo-random closed QBF generator (for tests/benches):
/// `n_vars` quantified variables, alternating `∃`/`∀`, with a random
/// matrix of about `n_ops` connectives.
pub fn random_qbf(n_vars: usize, n_ops: usize, seed: u64) -> Qbf {
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    fn matrix(rnd: &mut impl FnMut() -> usize, n_vars: usize, budget: usize) -> Qbf {
        if budget == 0 || n_vars == 0 {
            return Qbf::Var(if n_vars == 0 { 0 } else { rnd() % n_vars });
        }
        match rnd() % 3 {
            0 => Qbf::Not(Box::new(matrix(rnd, n_vars, budget - 1))),
            1 => Qbf::Or(
                Box::new(matrix(rnd, n_vars, budget / 2)),
                Box::new(matrix(rnd, n_vars, budget / 2)),
            ),
            _ => Qbf::And(
                Box::new(matrix(rnd, n_vars, budget / 2)),
                Box::new(matrix(rnd, n_vars, budget / 2)),
            ),
        }
    }
    let mut f = matrix(&mut rnd, n_vars.max(1), n_ops);
    for i in (0..n_vars).rev() {
        f = if i % 2 == 0 {
            Qbf::Exists(i, Box::new(f))
        } else {
            Qbf::Forall(i, Box::new(f))
        };
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::classify;
    use wave_verifier::symbolic::{is_error_free, SymbolicOptions};

    fn x(i: usize) -> Qbf {
        Qbf::Var(i)
    }

    #[test]
    fn evaluator_basics() {
        // ∃x0 (x0) — true
        assert!(Qbf::Exists(0, Box::new(x(0))).truth());
        // ∀x0 (x0) — false
        assert!(!Qbf::Forall(0, Box::new(x(0))).truth());
        // ∀x0 (x0 ∨ ¬x0) — true
        let taut = Qbf::Forall(
            0,
            Box::new(Qbf::Or(Box::new(x(0)), Box::new(Qbf::Not(Box::new(x(0)))))),
        );
        assert!(taut.truth());
        // ∀x0 ∃x1 (x0 ≠ x1 shape): ∀x0 ∃x1 ((x0 ∧ ¬x1) ∨ (¬x0 ∧ x1)) — true
        let xor = Qbf::Or(
            Box::new(Qbf::And(Box::new(x(0)), Box::new(Qbf::Not(Box::new(x(1)))))),
            Box::new(Qbf::And(Box::new(Qbf::Not(Box::new(x(0)))), Box::new(x(1)))),
        );
        assert!(Qbf::Forall(0, Box::new(Qbf::Exists(1, Box::new(xor)))).truth());
    }

    #[test]
    fn encoding_is_input_bounded() {
        let phi = random_qbf(3, 4, 7);
        let w = encode(&phi);
        assert!(
            classify::input_bounded_violations(&w).is_empty(),
            "Lemma A.6 encodings are input-bounded"
        );
    }

    #[test]
    fn error_freeness_decides_qbf() {
        // The paper's reduction, round-tripped through our Theorem 3.5
        // engine: W_φ error-free ⟺ φ false.
        let cases = [
            Qbf::Exists(0, Box::new(x(0))), // true
            Qbf::Forall(0, Box::new(x(0))), // false
            Qbf::Forall(
                0,
                Box::new(Qbf::Or(Box::new(x(0)), Box::new(Qbf::Not(Box::new(x(0)))))),
            ), // true
            Qbf::Exists(
                0,
                Box::new(Qbf::And(Box::new(x(0)), Box::new(Qbf::Not(Box::new(x(0)))))),
            ), // false
        ];
        for phi in &cases {
            let w = encode(phi);
            let out = is_error_free(&w, &SymbolicOptions::default()).unwrap();
            assert_eq!(
                !out.holds(),
                phi.truth(),
                "error-freeness must mirror QBF truth for {phi:?}"
            );
        }
    }

    #[test]
    fn random_round_trip() {
        for seed in 0..6 {
            let phi = random_qbf(2, 3, seed);
            let w = encode(&phi);
            let out = is_error_free(&w, &SymbolicOptions::default()).unwrap();
            assert_eq!(!out.holds(), phi.truth(), "{phi:?}");
        }
    }

    #[test]
    fn strictify_produces_guarded_quantifiers() {
        let phi = Qbf::Exists(0, Box::new(x(0)));
        let f = strictify(&phi.to_fo());
        // must be a disjunction of two guarded existentials
        match f {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected split form, got {other}"),
        }
    }
}
