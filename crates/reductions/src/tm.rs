//! Turing machines and the Theorem 3.7 encoding.
//!
//! Theorem 3.7 shows that relaxing just one requirement — letting input
//! *options* be defined by quantifier-free formulas over database **and
//! state** relations (state atoms with variables) — makes verification
//! undecidable, by simulating a Turing machine:
//!
//! * an initialization phase lets the user lay out a tape (a successor
//!   chain over fresh database elements, tracked by the state relations
//!   `Cell`/`Max`),
//! * a simulation phase drives the machine: the 4-ary state relation `T`
//!   stores `T(x, y, u, v)` — "cell `x` has content `u`, its successor is
//!   `y`, and `v` is the machine state if the head is on `x` (else `#`)";
//!   the options of the 4-ary input `H` expose exactly the current head
//!   tuple, and the state rules apply the machine's move to it.
//!
//! The machine halts on the empty input iff some run of the encoded
//! service reaches `T(·,·,·,h)` — so `∀x y u G ¬T(x,y,u,h)` is violated
//! iff the machine halts, and verification decides halting.
//!
//! The simulator substrate below cross-checks the encoding step by step.

use std::collections::BTreeMap;

use wave_core::builder::ServiceBuilder;
use wave_core::rules::StateRule;
use wave_core::service::Service;
use wave_logic::formula::{Formula, Term};

/// Tape move direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// Left (bounded by the first cell).
    L,
    /// Right (the tape is right-infinite).
    R,
}

/// A deterministic Turing machine with a left-bounded tape. States and
/// symbols are short strings; `#` and the relation names of the encoding
/// are reserved.
#[derive(Clone, Debug)]
pub struct Tm {
    /// Start state.
    pub start: String,
    /// Halting state (reaching it stops the machine).
    pub halt: String,
    /// Blank symbol.
    pub blank: String,
    /// `(state, symbol) → (state', symbol', move)`.
    pub delta: BTreeMap<(String, String), (String, String, Move)>,
}

/// Outcome of a bounded simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimOutcome {
    /// The machine reached the halting state.
    Halted {
        /// Steps taken.
        steps: usize,
        /// Number of tape cells visited.
        cells: usize,
    },
    /// The machine was still running after the step budget.
    Running,
    /// No transition was defined (the machine hangs).
    Stuck,
}

impl Tm {
    /// Simulates the machine on the empty input for at most `max_steps`.
    pub fn simulate(&self, max_steps: usize) -> SimOutcome {
        let mut tape: Vec<String> = vec![self.blank.clone()];
        let mut head = 0usize;
        let mut state = self.start.clone();
        let mut max_head = 0usize;
        for step in 0..max_steps {
            if state == self.halt {
                return SimOutcome::Halted {
                    steps: step,
                    cells: max_head + 1,
                };
            }
            let key = (state.clone(), tape[head].clone());
            let Some((q, s, m)) = self.delta.get(&key) else {
                return SimOutcome::Stuck;
            };
            tape[head] = s.clone();
            state = q.clone();
            match m {
                Move::L => {
                    if head == 0 {
                        return SimOutcome::Stuck; // falls off the left edge
                    }
                    head -= 1;
                }
                Move::R => {
                    head += 1;
                    if head >= tape.len() {
                        tape.push(self.blank.clone());
                    }
                }
            }
            max_head = max_head.max(head);
        }
        if state == self.halt {
            SimOutcome::Halted {
                steps: max_steps,
                cells: max_head + 1,
            }
        } else {
            SimOutcome::Running
        }
    }

    /// The set of machine states (from `delta` plus start/halt).
    pub fn states(&self) -> Vec<String> {
        let mut out = vec![self.start.clone(), self.halt.clone()];
        for ((p, _), (q, _, _)) in &self.delta {
            out.push(p.clone());
            out.push(q.clone());
        }
        out.sort();
        out.dedup();
        out
    }
}

const MARK: &str = "#"; // "head is elsewhere" marker

fn v(s: &str) -> Term {
    Term::var(s)
}

fn lit(s: &str) -> Term {
    Term::lit(s)
}

/// Encodes a machine as the Theorem 3.7 Web service. The result is a
/// valid Definition 2.1 service but **not** input-bounded: the `Options_I`
/// rule reads the state relation `Cell` with a variable — exactly the
/// relaxation the theorem shows undecidable.
pub fn encode(tm: &Tm) -> Service {
    let mut b = ServiceBuilder::new("W");
    b.database_relation("D", 1)
        .database_constant("min")
        .state_relation("T", 4)
        .state_relation("Cell", 1)
        .state_relation("Max", 1)
        .state_relation("Head", 1)
        .state_prop("initialized")
        .state_prop("simul")
        .input_relation("I", 1)
        .input_relation("H", 4)
        .page("W")
        // Initialization: pick unused domain elements as new tape cells.
        .input_rule("I", &["y"], "D(y) & y != min & !Cell(y) & !simul")
        // Simulation: the head tuple is the only option.
        .input_rule(
            "H",
            &["x", "y", "u", "p"],
            "simul & Head(x) & T(x, y, u, p)",
        );
    let mut service = b.build().expect("scaffold valid");
    let page = service.pages.get_mut("W").expect("page exists");

    // ---- initialization-phase state rules ----
    let picked = Formula::exists(vec!["y".into()], Formula::rel("I", vec![v("y")]));
    let not_init = Formula::not(Formula::prop("initialized"));

    // T(min, y, b, q0) ← I(y) ∧ ¬initialized  — plus the chain extension
    // T(x, y, b, #) ← I(y) ∧ Max(x); both merge into one insert body on
    // canonical head variables (v0, v1, v2, v3).
    let t_init = Formula::and([
        Formula::eq(v("v0"), Term::cst("min")),
        Formula::rel("I", vec![v("v1")]),
        Formula::eq(v("v2"), lit(&tm.blank)),
        Formula::eq(v("v3"), lit(&tm.start)),
        not_init.clone(),
    ]);
    let t_extend = Formula::and([
        Formula::rel("I", vec![v("v1")]),
        Formula::rel("Max", vec![v("v0")]),
        Formula::eq(v("v2"), lit(&tm.blank)),
        Formula::eq(v("v3"), lit(MARK)),
        Formula::prop("initialized"),
    ]);

    // ---- simulation-phase T updates, one pair of disjuncts per move ----
    let mut t_inserts = vec![t_init, t_extend];
    let mut t_deletes = Vec::new();
    // Deleting the picked head tuple is move-independent:
    // ¬T(v̄) ← simul ∧ H(v0, v1, v2, v3).
    t_deletes.push(Formula::and([
        Formula::prop("simul"),
        Formula::rel("H", vec![v("v0"), v("v1"), v("v2"), v("v3")]),
    ]));

    let mut head_inserts = Vec::new();
    let mut head_deletes = Vec::new();

    for ((p, s), (q, s2, m)) in &tm.delta {
        // Rewrite the head cell: T(x, y, s', ?) with the state marker
        // moving according to the move direction.
        match m {
            Move::R => {
                // T(x, y, s2, #) ← H(x, y, s, p)
                t_inserts.push(Formula::and([
                    Formula::rel("H", vec![v("v0"), v("v1"), lit(s), lit(p)]),
                    Formula::eq(v("v2"), lit(s2)),
                    Formula::eq(v("v3"), lit(MARK)),
                ]));
                // T(y, z, u, q) ← H(x, y, s, p) ∧ T(y, z, u, #)
                t_inserts.push(Formula::and([
                    Formula::exists(
                        vec!["a".into()],
                        Formula::rel("H", vec![v("a"), v("v0"), lit(s), lit(p)]),
                    ),
                    Formula::rel("T", vec![v("v0"), v("v1"), v("v2"), lit(MARK)]),
                    Formula::eq(v("v3"), lit(q)),
                ]));
                // ¬T(y, z, u, #) ← same premise
                t_deletes.push(Formula::and([
                    Formula::exists(
                        vec!["a".into()],
                        Formula::rel("H", vec![v("a"), v("v0"), lit(s), lit(p)]),
                    ),
                    Formula::rel("T", vec![v("v0"), v("v1"), v("v2"), v("v3")]),
                    Formula::eq(v("v3"), lit(MARK)),
                ]));
                // Head moves right: ¬Head(x), Head(y).
                head_deletes.push(Formula::exists(
                    vec!["y".into()],
                    Formula::rel("H", vec![v("v0"), v("y"), lit(s), lit(p)]),
                ));
                head_inserts.push(Formula::exists(
                    vec!["a".into()],
                    Formula::rel("H", vec![v("a"), v("v0"), lit(s), lit(p)]),
                ));
            }
            Move::L => {
                // T(x, y, s2, #) ← H(x, y, s, p): the head cell is
                // rewritten and loses the marker...
                t_inserts.push(Formula::and([
                    Formula::rel("H", vec![v("v0"), v("v1"), lit(s), lit(p)]),
                    Formula::eq(v("v2"), lit(s2)),
                    Formula::eq(v("v3"), lit(MARK)),
                ]));
                // ...and the predecessor cell w (T(w, x, u, #)) receives
                // the state: T(w, x, u, q).
                t_inserts.push(Formula::and([
                    Formula::exists(
                        vec!["b".into()],
                        Formula::rel("H", vec![v("v1"), v("b"), lit(s), lit(p)]),
                    ),
                    Formula::rel("T", vec![v("v0"), v("v1"), v("v2"), lit(MARK)]),
                    Formula::eq(v("v3"), lit(q)),
                ]));
                t_deletes.push(Formula::and([
                    Formula::exists(
                        vec!["b".into()],
                        Formula::rel("H", vec![v("v1"), v("b"), lit(s), lit(p)]),
                    ),
                    Formula::rel("T", vec![v("v0"), v("v1"), v("v2"), v("v3")]),
                    Formula::eq(v("v3"), lit(MARK)),
                ]));
                head_deletes.push(Formula::exists(
                    vec!["y".into()],
                    Formula::rel("H", vec![v("v0"), v("y"), lit(s), lit(p)]),
                ));
                head_inserts.push(Formula::and([Formula::exists(
                    vec!["a".into(), "b".into(), "u".into()],
                    Formula::and([
                        Formula::rel("H", vec![v("a"), v("b"), lit(s), lit(p)]),
                        Formula::rel("T", vec![v("v0"), v("a"), v("u"), lit(MARK)]),
                    ]),
                )]));
            }
        }
    }

    page.state_rules.push(StateRule {
        relation: "T".into(),
        vars: vec!["v0".into(), "v1".into(), "v2".into(), "v3".into()],
        insert: Some(Formula::or(t_inserts)),
        delete: Some(Formula::or(t_deletes)),
    });
    page.state_rules.push(StateRule {
        relation: "Cell".into(),
        vars: vec!["v0".into()],
        insert: Some(Formula::or([
            Formula::and([Formula::eq(v("v0"), Term::cst("min")), not_init.clone()]),
            Formula::rel("I", vec![v("v0")]),
        ])),
        delete: None,
    });
    page.state_rules.push(StateRule {
        relation: "Max".into(),
        vars: vec!["v0".into()],
        insert: Some(Formula::rel("I", vec![v("v0")])),
        delete: Some(Formula::and([
            picked.clone(),
            Formula::rel("Max", vec![v("v0")]),
        ])),
    });
    page.state_rules.push(StateRule {
        relation: "Head".into(),
        vars: vec!["v0".into()],
        insert: Some(Formula::or(
            std::iter::once(Formula::and([
                Formula::eq(v("v0"), Term::cst("min")),
                not_init.clone(),
            ]))
            .chain(head_inserts)
            .collect::<Vec<_>>(),
        )),
        delete: Some(Formula::or(head_deletes)),
    });
    page.state_rules.push(StateRule {
        relation: "initialized".into(),
        vars: vec![],
        insert: Some(Formula::True),
        delete: None,
    });
    page.state_rules.push(StateRule {
        relation: "simul".into(),
        vars: vec![],
        insert: Some(Formula::and([
            Formula::prop("initialized"),
            Formula::not(picked),
        ])),
        delete: None,
    });

    service.validate().expect("encoding is a valid service");
    service
}

/// The LTL-FO property "the machine never halts":
/// `∀x y u G ¬T(x, y, u, h)`. (Not input-bounded — by design: Theorem 3.7
/// is about the undecidable side of the frontier.)
pub fn never_halts_property(tm: &Tm) -> wave_logic::temporal::Property {
    use wave_logic::temporal::TFormula;
    let body = TFormula::always(TFormula::not(TFormula::fo(Formula::exists(
        vec!["x".into(), "y".into(), "u".into()],
        Formula::rel("T", vec![v("x"), v("y"), v("u"), lit(&tm.halt)]),
    ))));
    wave_logic::temporal::Property::close(body)
}

/// A tiny halting machine: writes two 1s then halts. Needs 3 tape cells.
pub fn sample_halting() -> Tm {
    let mut delta = BTreeMap::new();
    delta.insert(
        ("q0".into(), "b".into()),
        ("q1".into(), "1".into(), Move::R),
    );
    delta.insert(("q1".into(), "b".into()), ("h".into(), "1".into(), Move::R));
    Tm {
        start: "q0".into(),
        halt: "h".into(),
        blank: "b".into(),
        delta,
    }
}

/// A machine that loops forever in place (never halts): bounces between
/// two cells.
pub fn sample_looping() -> Tm {
    let mut delta = BTreeMap::new();
    delta.insert(
        ("q0".into(), "b".into()),
        ("q1".into(), "b".into(), Move::R),
    );
    delta.insert(
        ("q1".into(), "b".into()),
        ("q0".into(), "b".into(), Move::L),
    );
    Tm {
        start: "q0".into(),
        halt: "h".into(),
        blank: "b".into(),
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::classify;
    use wave_core::run::{InputChoice, Runner};
    use wave_logic::value::Tuple;
    use wave_logic::{inst, tuple};

    #[test]
    fn simulator_halting_and_looping() {
        assert_eq!(
            sample_halting().simulate(100),
            SimOutcome::Halted { steps: 2, cells: 3 }
        );
        assert_eq!(sample_looping().simulate(100), SimOutcome::Running);
    }

    #[test]
    fn encoding_is_valid_but_not_input_bounded() {
        let w = encode(&sample_halting());
        assert!(w.validate().is_ok());
        let violations = classify::input_bounded_violations(&w);
        assert!(
            !violations.is_empty(),
            "Theorem 3.7 encodings sit outside the decidable class"
        );
        // specifically, the Options_I rule uses a non-ground state atom
        assert!(violations
            .iter()
            .any(|(_, rule, _)| rule.contains("Options")));
    }

    /// Drives the encoded service: lay out `cells` tape cells, then follow
    /// the (singleton) head options until the machine halts or `max_steps`
    /// pass. Returns whether `T(·,·,·,h)` was reached.
    fn drive(tm: &Tm, cells: usize, max_steps: usize) -> bool {
        let w = encode(tm);
        let db = inst! {
            "D" => [tuple![0], tuple![1], tuple![2], tuple![3], tuple![4]],
            const "min" => 0,
        };
        let runner = Runner::new(&w, &db);
        // Initialization: first entry picks cell 1, etc.
        let mut cfg = runner
            .initial(&InputChoice::empty().with_tuple("I", tuple![1]))
            .unwrap();
        for c in 2..=cells as i64 {
            cfg = runner
                .step(
                    &cfg,
                    &InputChoice::empty().with_tuple("I", Tuple::from_iter([c])),
                )
                .unwrap();
        }
        // Switch to simulation by picking nothing once; `simul` is set by
        // the *next* transition (state rules read the previous step).
        cfg = runner.step(&cfg, &InputChoice::empty()).unwrap();
        // Follow the head: options at the next entry are computed from the
        // next state, so peek at the transition core first.
        for i in 0..max_steps {
            if cfg
                .state
                .tuples("T")
                .any(|t| t.get(3) == Some(&wave_logic::value::Value::str(&tm.halt)))
            {
                return true;
            }
            let core = runner.transition_core(&cfg).unwrap();
            if i == 0 {
                assert!(core.state.prop("simul"), "empty pick flips to simulation");
            }
            let h = {
                let opts = runner
                    .entry_options(w.page("W").unwrap(), &core.state, &core.prev, &cfg.provided)
                    .unwrap();
                opts.get("H").cloned().unwrap_or_default()
            };
            assert!(
                h.len() <= 1,
                "deterministic machine: at most one head option"
            );
            let choice = match h.into_iter().next() {
                Some(t) => InputChoice::empty().with_tuple("H", t),
                None => InputChoice::empty(),
            };
            cfg = runner.step(&cfg, &choice).unwrap();
        }
        let halted = cfg
            .state
            .tuples("T")
            .any(|t| t.get(3) == Some(&wave_logic::value::Value::str(&tm.halt)));
        halted
    }

    #[test]
    fn encoded_halting_machine_reaches_halt_state() {
        let tm = sample_halting();
        assert!(drive(&tm, 3, 10), "the encoded run must reach T(·,·,·,h)");
    }

    #[test]
    fn encoded_looping_machine_never_halts() {
        let tm = sample_looping();
        assert!(!drive(&tm, 3, 30));
    }

    #[test]
    fn encoding_tracks_simulator_step_count() {
        // The simulator says the halting machine needs 2 steps and 3
        // cells; the encoded service reaches the halt marker after the
        // same number of simulation steps.
        let tm = sample_halting();
        let SimOutcome::Halted { cells, .. } = tm.simulate(100) else {
            panic!("sample machine halts");
        };
        assert!(drive(&tm, cells, 5));
        // With too little tape the machine cannot finish.
        assert!(!drive(&tm, 1, 5));
    }

    #[test]
    fn never_halts_property_shape() {
        let p = never_halts_property(&sample_halting());
        assert!(p.vars.is_empty(), "closed via explicit existential");
        assert_eq!(p.classify(), wave_logic::temporal::TemporalClass::Ltl);
    }
}
