//! # wave-reductions
//!
//! The paper's boundary results as *executable* constructions:
//!
//! * [`qbf`] — Lemma A.6: QBF → error-freeness of an input-bounded
//!   service. Shows PSPACE-hardness; doubles as a stress test, since our
//!   symbolic engine then decides QBF through the encoding.
//! * [`tm`] — Theorem 3.7: a Turing machine encoded as a Web service
//!   whose input options use state atoms *with variables* (the minimal
//!   relaxation of input-boundedness), making verification undecidable.
//!   The TM simulator substrate cross-checks the encoding step by step.
//! * [`deps`] — Theorem 3.8 / Theorem 4.2: functional and inclusion
//!   dependencies, a bounded chase for their (undecidable in general)
//!   implication problem, and the state-projection service encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deps;
pub mod qbf;
pub mod tm;
