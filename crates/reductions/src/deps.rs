//! Functional and inclusion dependencies, the chase, and the
//! Theorem 3.8 / Theorem 4.2 encodings.
//!
//! The implication problem for FDs + INDs is undecidable (Chandra–Vardi);
//! Theorem 3.8 transfers that to Web services whose state rules allow
//! *projections* (`S(x̄) ← ∃ȳ S'(x̄, ȳ)`), and Theorem 4.2's variant uses
//! parameterized actions. The encoding below builds the Theorem 3.8
//! service: the user feeds tuples of a relation `S` through an input;
//! projection rules maintain `π_X(S)` state relations; violation flags go
//! up when a fed instance breaks a dependency.
//!
//! The substrate is a bounded **chase**: sound for implication (a chase
//! counterexample refutes it) and complete when it terminates within the
//! budget — enough to test the encoding on decidable instances.

use std::collections::{BTreeMap, BTreeSet};

use wave_core::builder::ServiceBuilder;
use wave_core::rules::StateRule;
use wave_core::service::Service;
use wave_logic::formula::{Formula, Term};
use wave_logic::value::{Tuple, Value};

/// A dependency over a single relation of arity `arity` (columns are
/// 0-based indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Dep {
    /// Functional dependency `X → A`.
    Fd {
        /// Determinant columns.
        lhs: Vec<usize>,
        /// Determined column.
        rhs: usize,
    },
    /// Inclusion dependency `R[X] ⊆ R[Y]` (unary or wider projections).
    Ind {
        /// Source columns.
        lhs: Vec<usize>,
        /// Target columns (same length).
        rhs: Vec<usize>,
    },
}

impl Dep {
    /// Whether a set of tuples satisfies this dependency.
    pub fn holds(&self, tuples: &BTreeSet<Tuple>) -> bool {
        match self {
            Dep::Fd { lhs, rhs } => {
                let mut seen: BTreeMap<Vec<&Value>, &Value> = BTreeMap::new();
                for t in tuples {
                    let key: Vec<&Value> = lhs.iter().map(|&i| &t[i]).collect();
                    if let Some(prev) = seen.insert(key, &t[*rhs]) {
                        if prev != &t[*rhs] {
                            return false;
                        }
                    }
                }
                true
            }
            Dep::Ind { lhs, rhs } => {
                let targets: BTreeSet<Vec<&Value>> = tuples
                    .iter()
                    .map(|t| rhs.iter().map(|&i| &t[i]).collect())
                    .collect();
                tuples.iter().all(|t| {
                    let key: Vec<&Value> = lhs.iter().map(|&i| &t[i]).collect();
                    targets.contains(&key)
                })
            }
        }
    }
}

/// Bounded chase: does `sigma` follow from `deps` on instances of the
/// given arity? Starts from the canonical tableau of `sigma` and applies
/// the dependencies; `Some(true)` = implied, `Some(false)` = a
/// counterexample instance was found, `None` = budget exhausted
/// (undecidability showing its teeth).
pub fn chase_implies(deps: &[Dep], sigma: &Dep, arity: usize, max_steps: usize) -> Option<bool> {
    // Syntactic membership: σ ∈ Σ is trivially implied (the chase itself
    // may diverge on such instances — see the divergence test).
    if deps.contains(sigma) {
        return Some(true);
    }
    // Canonical instance for the premise of sigma.
    let mut next_null = 0i64;
    let mut fresh = || {
        next_null += 1;
        Value::Int(next_null)
    };
    let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
    match sigma {
        Dep::Fd { lhs, .. } => {
            // Two tuples agreeing on lhs, fresh elsewhere.
            let shared: Vec<Value> = (0..arity).map(|_| fresh()).collect();
            let mut t1 = Vec::with_capacity(arity);
            let mut t2 = Vec::with_capacity(arity);
            for (i, shared_val) in shared.iter().enumerate() {
                if lhs.contains(&i) {
                    t1.push(shared_val.clone());
                    t2.push(shared_val.clone());
                } else {
                    t1.push(fresh());
                    t2.push(fresh());
                }
            }
            tuples.insert(Tuple(t1));
            tuples.insert(Tuple(t2));
        }
        Dep::Ind { .. } => {
            tuples.insert(Tuple((0..arity).map(|_| fresh()).collect()));
        }
    }

    for _ in 0..max_steps {
        // Check the goal first.
        if let Dep::Fd { lhs, rhs } = sigma {
            // σ implied iff the two canonical tuples were equated on rhs.
            let mut iter = tuples.iter();
            if let (Some(a), Some(b)) = (iter.next(), iter.next()) {
                let agree_lhs = lhs.iter().all(|&i| a[i] == b[i]);
                if agree_lhs && a[*rhs] == b[*rhs] {
                    return Some(true);
                }
            } else {
                return Some(true); // tuples merged entirely
            }
        }
        if sigma.holds(&tuples) {
            if let Dep::Ind { .. } = sigma {
                return Some(true);
            }
        }
        // Apply one violated dependency.
        let mut changed = false;
        for d in deps {
            match d {
                Dep::Fd { lhs, rhs } => {
                    let mut merge: Option<(Value, Value)> = None;
                    'outer: for a in &tuples {
                        for b in &tuples {
                            if a != b && lhs.iter().all(|&i| a[i] == b[i]) && a[*rhs] != b[*rhs] {
                                merge = Some((a[*rhs].clone(), b[*rhs].clone()));
                                break 'outer;
                            }
                        }
                    }
                    if let Some((x, y)) = merge {
                        // Equate y := x everywhere.
                        let old = std::mem::take(&mut tuples);
                        for t in old {
                            tuples.insert(Tuple(
                                t.iter()
                                    .map(|val| if *val == y { x.clone() } else { val.clone() })
                                    .collect(),
                            ));
                        }
                        changed = true;
                        break;
                    }
                }
                Dep::Ind { lhs, rhs } => {
                    let targets: BTreeSet<Vec<Value>> = tuples
                        .iter()
                        .map(|t| rhs.iter().map(|&i| t[i].clone()).collect())
                        .collect();
                    let missing: Option<Vec<Value>> = tuples
                        .iter()
                        .map(|t| lhs.iter().map(|&i| t[i].clone()).collect::<Vec<_>>())
                        .find(|key| !targets.contains(key));
                    if let Some(key) = missing {
                        let mut t = Vec::with_capacity(arity);
                        for i in 0..arity {
                            if let Some(pos) = rhs.iter().position(|&r| r == i) {
                                t.push(key[pos].clone());
                            } else {
                                t.push(fresh());
                            }
                        }
                        tuples.insert(Tuple(t));
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            // Chase terminated: sigma holds in the chased instance or not.
            return Some(match sigma {
                Dep::Fd { lhs, rhs } => {
                    let mut iter = tuples.iter();
                    match (iter.next(), iter.next()) {
                        (Some(a), Some(b)) => {
                            !lhs.iter().all(|&i| a[i] == b[i]) || a[*rhs] == b[*rhs]
                        }
                        _ => true,
                    }
                }
                Dep::Ind { .. } => sigma.holds(&tuples),
            });
        }
    }
    None
}

/// Builds the Theorem 3.8 service: the user feeds `S`-tuples via the
/// input `feed`; state projections maintain the column projections the
/// dependency checks need; `viol_k` flags go up when dependency `k` of
/// `deps` is violated by the accumulated instance, and `goal_viol` when
/// `sigma` is. Verifying `G(done → (∨_k viol_k) ∨ ¬goal_viol)`-style
/// properties over the encoding is exactly implication — undecidable, so
/// the encoding is *not* input-bounded (it uses state projections).
pub fn encode(deps: &[Dep], sigma: &Dep, arity: usize) -> Service {
    let vars: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();

    let mut b = ServiceBuilder::new("Feed");
    b.database_relation("dom", 1)
        .state_relation("S", arity)
        .state_prop("done")
        .input_relation("feed", arity)
        .input_relation("stop", 0);
    // Projection state relations for every dependency's column sets.
    let mut proj_cols: BTreeSet<Vec<usize>> = BTreeSet::new();
    for d in deps.iter().chain(std::iter::once(sigma)) {
        match d {
            Dep::Fd { lhs, rhs } => {
                let mut both = lhs.clone();
                both.push(*rhs);
                proj_cols.insert(both);
            }
            Dep::Ind { lhs, rhs } => {
                proj_cols.insert(lhs.clone());
                proj_cols.insert(rhs.clone());
            }
        }
    }
    for cols in &proj_cols {
        b.state_relation(&proj_name(cols), cols.len());
    }
    for k in 0..deps.len() {
        b.state_prop(&format!("viol_{k}"));
    }
    b.state_prop("goal_viol");

    // Feed page: options are arbitrary domain tuples.
    let feed_body = (0..arity)
        .map(|i| format!("dom(c{i})"))
        .collect::<Vec<_>>()
        .join(" & ");
    b.page("Feed")
        .input_rule("feed", &var_refs, &feed_body)
        .input_prop_on_page("stop")
        .insert_rule("done", &[], "stop");
    let mut service = b.build().expect("scaffold valid");
    let page = service.pages.get_mut("Feed").expect("page exists");

    // S accumulates fed tuples.
    page.state_rules.push(StateRule {
        relation: "S".into(),
        vars: vars.clone(),
        insert: Some(Formula::rel(
            "feed",
            vars.iter().map(|x| Term::var(x.clone())).collect(),
        )),
        delete: None,
    });

    // Projections: S_cols(x̄) ← ∃ȳ S(...) — the state projections of
    // Theorem 3.8 (this is what breaks input-boundedness).
    for cols in &proj_cols {
        let head: Vec<String> = (0..cols.len()).map(|i| format!("p{i}")).collect();
        let mut args = Vec::with_capacity(arity);
        let mut bound = Vec::new();
        for i in 0..arity {
            if let Some(pos) = cols.iter().position(|&c| c == i) {
                args.push(Term::var(head[pos].clone()));
            } else {
                let y = format!("y{i}");
                bound.push(y.clone());
                args.push(Term::var(y));
            }
        }
        page.state_rules.push(StateRule {
            relation: proj_name(cols),
            vars: head,
            insert: Some(Formula::exists(bound, Formula::rel("S", args))),
            delete: None,
        });
    }

    // Violation flags: quantified checks over S (again projections in
    // spirit; undecidable fragment).
    for (k, d) in deps.iter().enumerate() {
        page.state_rules.push(StateRule {
            relation: format!("viol_{k}"),
            vars: vec![],
            insert: Some(violation_formula(d, arity)),
            delete: None,
        });
    }
    page.state_rules.push(StateRule {
        relation: "goal_viol".into(),
        vars: vec![],
        insert: Some(violation_formula(sigma, arity)),
        delete: None,
    });

    service.validate().expect("encoding is a valid service");
    service
}

fn proj_name(cols: &[usize]) -> String {
    format!(
        "S_{}",
        cols.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("_")
    )
}

/// `∃ tuples of S violating d` as an FO sentence over `S`.
fn violation_formula(d: &Dep, arity: usize) -> Formula {
    let t1: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
    let t2: Vec<String> = (0..arity).map(|i| format!("b{i}")).collect();
    let s_atom =
        |vs: &[String]| Formula::rel("S", vs.iter().map(|x| Term::var(x.clone())).collect());
    match d {
        Dep::Fd { lhs, rhs } => {
            let mut parts = vec![s_atom(&t1), s_atom(&t2)];
            for &i in lhs {
                parts.push(Formula::eq(
                    Term::var(t1[i].clone()),
                    Term::var(t2[i].clone()),
                ));
            }
            parts.push(Formula::neq(
                Term::var(t1[*rhs].clone()),
                Term::var(t2[*rhs].clone()),
            ));
            Formula::exists(
                t1.iter().chain(t2.iter()).cloned().collect(),
                Formula::and(parts),
            )
        }
        Dep::Ind { lhs, rhs } => {
            // ∃t1 (S(t1) ∧ ∀t2 (S(t2) → t1[lhs] ≠ t2[rhs]))
            let mut neq_parts = Vec::new();
            for (l, r) in lhs.iter().zip(rhs.iter()) {
                neq_parts.push(Formula::neq(
                    Term::var(t1[*l].clone()),
                    Term::var(t2[*r].clone()),
                ));
            }
            Formula::exists(
                t1.clone(),
                Formula::and([
                    s_atom(&t1),
                    Formula::forall(
                        t2.clone(),
                        Formula::implies(s_atom(&t2), Formula::or(neq_parts)),
                    ),
                ]),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_core::classify;
    use wave_core::run::{InputChoice, Runner};
    use wave_logic::{inst, tuple};

    #[test]
    fn dependency_satisfaction() {
        let fd = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        let mut ts = BTreeSet::from([tuple![1, 2], tuple![3, 4]]);
        assert!(fd.holds(&ts));
        ts.insert(tuple![1, 5]);
        assert!(!fd.holds(&ts));

        let ind = Dep::Ind {
            lhs: vec![1],
            rhs: vec![0],
        };
        let ok = BTreeSet::from([tuple![1, 1], tuple![2, 1]]);
        assert!(ind.holds(&ok));
        let bad = BTreeSet::from([tuple![1, 2]]);
        assert!(!bad.is_empty() && !ind.holds(&bad));
    }

    #[test]
    fn chase_trivial_implication() {
        // X→A implies X→A.
        let fd = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        assert_eq!(
            chase_implies(std::slice::from_ref(&fd), &fd, 2, 50),
            Some(true)
        );
        // ∅ does not imply X→A.
        assert_eq!(chase_implies(&[], &fd, 2, 50), Some(false));
    }

    #[test]
    fn chase_transitivity_via_pseudo() {
        // {0→1, 1→2} implies 0→2 on arity-3 relations.
        let d1 = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        let d2 = Dep::Fd {
            lhs: vec![1],
            rhs: 2,
        };
        let goal = Dep::Fd {
            lhs: vec![0],
            rhs: 2,
        };
        assert_eq!(chase_implies(&[d1, d2], &goal, 3, 50), Some(true));
        // {0→1} does not imply 0→2.
        let d1 = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        assert_eq!(chase_implies(&[d1], &goal, 3, 50), Some(false));
    }

    #[test]
    fn chase_ind_reflexivity() {
        let ind = Dep::Ind {
            lhs: vec![0],
            rhs: vec![0],
        };
        assert_eq!(chase_implies(&[], &ind, 2, 50), Some(true));
        let ind2 = Dep::Ind {
            lhs: vec![0],
            rhs: vec![1],
        };
        assert_eq!(chase_implies(&[], &ind2, 2, 50), Some(false));
        // implied by itself
        assert_eq!(
            chase_implies(std::slice::from_ref(&ind2), &ind2, 2, 50),
            Some(true)
        );
    }

    #[test]
    fn chase_can_diverge_within_budget() {
        // R[0] ⊆ R[1] on arity 2 keeps generating fresh tuples from the
        // canonical seed; the budget runs out (the undecidability omen).
        let ind = Dep::Ind {
            lhs: vec![0],
            rhs: vec![1],
        };
        let goal = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        assert_eq!(chase_implies(&[ind], &goal, 2, 10), None);
    }

    #[test]
    fn encoding_validates_and_uses_projections() {
        let deps = vec![Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        }];
        let sigma = Dep::Ind {
            lhs: vec![1],
            rhs: vec![0],
        };
        let w = encode(&deps, &sigma, 2);
        assert!(w.validate().is_ok());
        // State projections break input-boundedness (Theorem 3.8's point).
        assert!(!classify::input_bounded_violations(&w).is_empty());
        assert!(w.schema.relation("S_0_1").is_some() || w.schema.relation("S_1").is_some());
    }

    #[test]
    fn encoded_violation_flags_track_reference_checks() {
        let fd = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        let deps = vec![fd.clone()];
        let sigma = Dep::Ind {
            lhs: vec![1],
            rhs: vec![0],
        };
        let w = encode(&deps, &sigma, 2);
        let db = inst! { "dom" => [tuple![1], tuple![2], tuple![3]] };
        let runner = Runner::new(&w, &db);

        // Feed (1,2) then (1,3): violates the FD.
        let c0 = runner
            .initial(&InputChoice::empty().with_tuple("feed", tuple![1, 2]))
            .unwrap();
        let c1 = runner
            .step(&c0, &InputChoice::empty().with_tuple("feed", tuple![1, 3]))
            .unwrap();
        let c2 = runner.step(&c1, &InputChoice::empty()).unwrap();
        assert!(c2.state.contains("S", &tuple![1, 2]));
        assert!(c2.state.contains("S", &tuple![1, 3]));
        // Flags lag one step behind S (rules read the previous state).
        let c2 = runner.step(&c2, &InputChoice::empty()).unwrap();
        assert!(c2.state.prop("viol_0"), "FD violation must be flagged");
        // Reference check agrees.
        let s: BTreeSet<Tuple> = c2.state.tuples("S").cloned().collect();
        assert!(!fd.holds(&s));
        // σ = S[1] ⊆ S[0]: values {2,3} not ⊆ {1}: goal violated too.
        assert!(c2.state.prop("goal_viol"));
        assert!(!sigma.holds(&s));
    }

    #[test]
    fn clean_instance_raises_no_flags() {
        let fd = Dep::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        let sigma = Dep::Ind {
            lhs: vec![0],
            rhs: vec![0],
        };
        let w = encode(&[fd], &sigma, 2);
        let db = inst! { "dom" => [tuple![1], tuple![2]] };
        let runner = Runner::new(&w, &db);
        let c0 = runner
            .initial(&InputChoice::empty().with_tuple("feed", tuple![1, 2]))
            .unwrap();
        let c1 = runner.step(&c0, &InputChoice::empty()).unwrap();
        assert!(!c1.state.prop("viol_0"));
        assert!(!c1.state.prop("goal_viol"));
    }
}
