//! Crash-safety regression: a compaction killed at **every byte
//! offset** of the rewrite must leave the journal exactly as it was.
//!
//! The cache compacts by writing a temp sibling, fsyncing, then
//! renaming over the journal. The injected `Torn { keep }` fault at the
//! `journal.compact` hook truncates the temp write at byte `keep` and
//! "crashes" (skips the rename) — the moral equivalent of `kill -9` at
//! that instant. For every offset from 0 to the full rewrite length,
//! reloading must recover every entry verbatim.

use std::path::PathBuf;
use std::sync::Arc;

use wave_logic::fingerprint::Fingerprint;
use wave_serve::cache::ResultCache;
use wave_serve::faults::{Fault, FaultInjector, Faults, Hook};

/// Tears every journal compaction at byte `keep` and crashes before the
/// rename.
struct TearCompactAt {
    keep: usize,
}

impl FaultInjector for TearCompactAt {
    fn decide(&self, hook: Hook, _len: usize) -> Fault {
        if hook == Hook::JournalCompact {
            Fault::Torn { keep: self.keep }
        } else {
            Fault::None
        }
    }
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "wave-journal-crash-{}-{tag}.ndjson",
        std::process::id()
    ))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path.with_extension("ndjson.tmp"));
}

/// Entry payloads must be canonical JSON (the journal stores outcome
/// bytes verbatim and re-encodes through the parser on load).
fn entry(i: u32) -> (Fingerprint, Vec<u8>) {
    (
        Fingerprint(0x1000 + i as u128),
        format!("{{\"verdict\":{i},\"pad\":\"{:04x}\"}}", i * 7).into_bytes(),
    )
}

#[test]
fn compaction_killed_at_every_byte_offset_loses_nothing() {
    let path = tmp_path("every-offset");
    cleanup(&path);

    // Seed a clean journal with five entries.
    let entries: Vec<_> = (0..5).map(entry).collect();
    {
        let mut cache = ResultCache::new(1 << 20).with_persistence(path.clone());
        for (fp, bytes) in &entries {
            cache.insert(*fp, bytes.clone());
        }
    }
    let original = std::fs::read(&path).expect("journal exists");
    assert!(!original.is_empty());

    // The compacted rewrite has the same length as the journal content
    // (same entries, same framing); kill it at every offset, inclusive
    // of 0 (nothing written) and the full length (written but never
    // renamed).
    for keep in 0..=original.len() {
        let faults = Faults::new(Arc::new(TearCompactAt { keep }));
        {
            // Load (the on-load compaction is torn at `keep`) and then
            // force another compaction, torn the same way.
            let mut cache = ResultCache::new(1 << 20)
                .with_faults(faults)
                .with_persistence(path.clone());
            assert_eq!(
                cache.recovered_records(),
                entries.len() as u64,
                "keep={keep}: load must recover everything"
            );
            assert_eq!(cache.dropped_records(), 0, "keep={keep}");
            cache.compact_now();
        }
        // The journal file was never touched: byte-identical.
        let after = std::fs::read(&path).expect("journal still exists");
        assert_eq!(
            after, original,
            "keep={keep}: a killed compaction must leave the journal intact"
        );
        // And a clean reload still serves every entry verbatim.
        let mut clean = ResultCache::new(1 << 20).with_persistence(path.clone());
        for (fp, bytes) in &entries {
            assert_eq!(
                clean.get(*fp).as_deref(),
                Some(bytes.as_slice()),
                "keep={keep}: entry {fp:?} must survive verbatim"
            );
        }
    }
    cleanup(&path);
}

#[test]
fn successful_compaction_still_replays_identically() {
    // Control: without faults, compaction rewrites the journal and a
    // reload reproduces the same entries (the crash test above would be
    // vacuous if compaction itself lost data).
    let path = tmp_path("control");
    cleanup(&path);
    let entries: Vec<_> = (0..5).map(entry).collect();
    {
        let mut cache = ResultCache::new(1 << 20).with_persistence(path.clone());
        for (fp, bytes) in &entries {
            cache.insert(*fp, bytes.clone());
        }
        cache.compact_now();
    }
    let mut clean = ResultCache::new(1 << 20).with_persistence(path.clone());
    assert_eq!(clean.recovered_records(), entries.len() as u64);
    assert_eq!(clean.dropped_records(), 0);
    for (fp, bytes) in &entries {
        assert_eq!(clean.get(*fp).as_deref(), Some(bytes.as_slice()));
    }
    cleanup(&path);
}
