//! Graceful-drain end-to-end: jobs in flight finish correctly, late
//! submits get the typed `draining` refusal, the drain reports idle.

use std::sync::Arc;
use std::time::Duration;

use wave_serve::client::{ClientError, TcpClient};
use wave_serve::codec::{Mode, VerifyRequest};
use wave_serve::engine::{Engine, EngineOptions};
use wave_serve::faults::{Fault, FaultInjector, Faults, Hook};
use wave_serve::server::Server;
use wave_verifier::symbolic::Verdict;

/// Slows every worker job by a fixed delay, so submissions are reliably
/// in flight when the drain starts.
struct SlowWorkers(Duration);

impl FaultInjector for SlowWorkers {
    fn decide(&self, hook: Hook, _len: usize) -> Fault {
        if hook == Hook::WorkerRun {
            Fault::Delay(self.0)
        } else {
            Fault::None
        }
    }
}

fn spawn_server(engine: Arc<Engine>) -> std::net::SocketAddr {
    let server = Server::bind("127.0.0.1:0", engine).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = server.run();
    });
    addr
}

fn toggle_request(node_limit: usize) -> VerifyRequest {
    VerifyRequest {
        service: "toggle".into(),
        property: "G (P | Q)".into(),
        mode: Mode::Ltl,
        // Distinct node limits give distinct fingerprints, so every job
        // is a genuine cache miss occupying a worker.
        node_limit,
        threads: 1,
        deadline_us: 0,
        check_owner: false,
    }
}

#[test]
fn drain_finishes_in_flight_work_and_refuses_late_submits() {
    const JOBS: usize = 4;
    let engine = Arc::new(Engine::new(EngineOptions {
        workers: 2,
        faults: Faults::new(Arc::new(SlowWorkers(Duration::from_millis(400)))),
        ..EngineOptions::default()
    }));
    let addr = spawn_server(Arc::clone(&engine));

    // N concurrent submissions, each slowed 400 ms on the worker.
    let mut handles = Vec::new();
    for i in 0..JOBS {
        handles.push(std::thread::spawn(move || {
            let mut client = TcpClient::connect(addr).expect("connect");
            client.verify(&toggle_request(1_000 + i))
        }));
    }

    // Wait until all N passed the drain gate (counted as cache misses),
    // then drain mid-flight. The 400 ms worker delay guarantees work is
    // still running when the gate flips.
    use std::sync::atomic::Ordering;
    for _ in 0..400 {
        if engine.counters.cache_misses.load(Ordering::Relaxed) >= JOBS as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        engine.counters.cache_misses.load(Ordering::Relaxed),
        JOBS as u64,
        "all jobs must be accepted before the drain starts"
    );
    assert!(engine.in_flight() >= 1, "drain must start mid-flight");

    let mut drainer = TcpClient::connect(addr).expect("connect drainer");
    let drained = drainer.drain(Duration::from_secs(20)).expect("drain rpc");
    assert!(drained, "drain must reach idle within its deadline");
    assert_eq!(engine.in_flight(), 0);

    // Every accepted job completed with the correct verdict — a drain
    // finishes promised work, it never aborts it.
    for h in handles {
        let reply = h.join().unwrap().expect("accepted job must complete");
        assert!(
            matches!(reply.outcome.verdict, Verdict::Holds { .. }),
            "verdict: {:?}",
            reply.outcome.verdict
        );
        assert!(!reply.cache_hit);
    }

    // Late submits: the typed draining refusal, over the wire.
    let mut late = TcpClient::connect(addr).expect("connect late");
    let err = late.verify(&toggle_request(9_999)).unwrap_err();
    assert!(matches!(err, ClientError::Draining), "{err:?}");

    // Stats reflect the drained state.
    let stats = late.stats().expect("stats");
    assert_eq!(
        stats.get("draining").and_then(wave_serve::Json::as_bool),
        Some(true)
    );
    assert_eq!(
        stats.get("in_flight").and_then(wave_serve::Json::as_int),
        Some(0)
    );
    assert!(
        stats
            .get("drain_rejections")
            .and_then(wave_serve::Json::as_int)
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn drain_with_zero_deadline_just_flips_the_gate() {
    let engine = Arc::new(Engine::new(EngineOptions::default()));
    let addr = spawn_server(Arc::clone(&engine));
    let mut client = TcpClient::connect(addr).expect("connect");
    // Nothing in flight: even a zero deadline reports idle.
    let drained = client.drain(Duration::ZERO).expect("drain rpc");
    assert!(drained);
    let err = client.verify(&toggle_request(0)).unwrap_err();
    assert!(matches!(err, ClientError::Draining), "{err:?}");
}
